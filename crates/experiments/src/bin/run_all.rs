//! Run every experiment in sequence — regenerates every table/figure
//! artifact of the paper. Pass `--quick` for reduced grids.
//!
//! Each experiment runs under `catch_unwind`, so one panicking experiment
//! does not take the sweep down; the process exits nonzero if *any*
//! experiment panicked or failed to write its table. A per-experiment
//! timing/outcome summary is printed at the end and persisted to
//! `results/manifest.json`.

use dbp_experiments as exp;

use dbp_obs::{ExperimentManifest, ExperimentRecord, ExperimentStatus};
use exp::harness::Table;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;
use std::time::Instant;

/// One experiment: its CSV stem and a quick-flag-taking runner.
type Experiment = (&'static str, fn(bool) -> Table);

/// Every experiment, in execution order.
const EXPERIMENTS: &[Experiment] = &[
    ("fig1_span", |q| exp::fig1_span::run(q).0),
    ("fig2_anyfit_lb", |q| exp::fig2_anyfit_lb::run(q).0),
    ("fig3_bestfit_unbounded", |q| {
        exp::fig3_bestfit_unbounded::run(q).0
    }),
    ("thm3_large_items", |q| exp::thm3_large_items::run(q).0),
    ("thm4_small_items", |q| exp::thm4_small_items::run(q).0),
    ("thm5_general_ff", |q| exp::thm5_general_ff::run(q).0),
    ("tab2_case_classification", |q| {
        exp::tab2_case_classification::run(q).0
    }),
    ("mff_ratio", |q| exp::mff_ratio::run(q).0),
    ("mff_k_ablation", |q| exp::mff_k_ablation::run(q).0),
    ("cloud_gaming_costs", |q| exp::cloud_gaming_costs::run(q).0),
    ("mu_sensitivity", |q| exp::mu_sensitivity::run(q).0),
    ("billing_granularity", |q| {
        exp::billing_granularity::run(q).0
    }),
    ("constrained_dbp", |q| exp::constrained_dbp::run(q).0),
    ("footnote1_adaptive", |q| exp::footnote1_adaptive::run(q).0),
    ("flash_crowd", |q| exp::flash_crowd::run(q).0),
    ("mff_decomposition", |q| exp::mff_decomposition::run(q).0),
    ("unit_fractions", |q| exp::unit_fractions::run(q).0),
    ("value_of_clairvoyance", |q| {
        exp::value_of_clairvoyance::run(q).0
    }),
    ("migration_gap", |q| exp::migration_gap::run(q).0),
    ("server_churn", |q| exp::server_churn::run(q).0),
    ("fault_tolerance", |q| exp::fault_tolerance::run(q).0),
    ("ff_gap_search", |q| exp::ff_gap_search::run(q).0),
    ("hff_class_ablation", |q| exp::hff_class_ablation::run(q).0),
];

fn main() -> ExitCode {
    let q = exp::quick_flag();
    let t0 = Instant::now();
    let mut records = Vec::with_capacity(EXPERIMENTS.len());
    for &(name, run) in EXPERIMENTS {
        let started = Instant::now();
        let status = match catch_unwind(AssertUnwindSafe(|| run(q))) {
            Ok(table) => {
                table.print();
                match table.try_write_csv(name) {
                    Ok(path) => {
                        println!("[csv] {}", path.display());
                        ExperimentStatus::Ok
                    }
                    Err(e) => {
                        eprintln!("[error] {name}: cannot write table: {e}");
                        ExperimentStatus::WriteFailed
                    }
                }
            }
            Err(_) => {
                eprintln!("[error] {name}: panicked (see message above); continuing");
                ExperimentStatus::Panicked
            }
        };
        records.push(ExperimentRecord {
            name: name.to_string(),
            status,
            wall_time_ms: started.elapsed().as_millis() as u64,
        });
    }

    let manifest = ExperimentManifest {
        experiments: records,
        total_wall_time_ms: t0.elapsed().as_millis() as u64,
        peak_rss_bytes: dbp_obs::manifest::peak_rss_bytes(),
    };

    let mut summary = Table::new("run_all timing", &["experiment", "status", "wall ms"]);
    for r in &manifest.experiments {
        summary.push(vec![
            r.name.clone(),
            format!("{:?}", r.status),
            r.wall_time_ms.to_string(),
        ]);
    }
    summary.print();

    let manifest_path = exp::harness::results_dir().join("manifest.json");
    let mut failed = manifest.failures();
    match dbp_obs::export::write_json(&manifest_path, &manifest) {
        Ok(()) => println!("[manifest] {}", manifest_path.display()),
        Err(e) => {
            eprintln!("[error] cannot write {}: {e}", manifest_path.display());
            failed += 1;
        }
    }

    println!(
        "\nall experiments done in {:.1}s ({} ok, {} failed)",
        t0.elapsed().as_secs_f64(),
        manifest.experiments.len() - manifest.failures(),
        manifest.failures()
    );
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
