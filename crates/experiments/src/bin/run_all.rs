//! Run every experiment in sequence — regenerates every table/figure
//! artifact of the paper. Pass `--quick` for reduced grids.
use dbp_experiments as exp;

fn main() {
    let q = exp::quick_flag();
    let t0 = std::time::Instant::now();
    exp::harness::finish(&exp::fig1_span::run(q).0, "fig1_span");
    exp::harness::finish(&exp::fig2_anyfit_lb::run(q).0, "fig2_anyfit_lb");
    exp::harness::finish(
        &exp::fig3_bestfit_unbounded::run(q).0,
        "fig3_bestfit_unbounded",
    );
    exp::harness::finish(&exp::thm3_large_items::run(q).0, "thm3_large_items");
    exp::harness::finish(&exp::thm4_small_items::run(q).0, "thm4_small_items");
    exp::harness::finish(&exp::thm5_general_ff::run(q).0, "thm5_general_ff");
    exp::harness::finish(
        &exp::tab2_case_classification::run(q).0,
        "tab2_case_classification",
    );
    exp::harness::finish(&exp::mff_ratio::run(q).0, "mff_ratio");
    exp::harness::finish(&exp::mff_k_ablation::run(q).0, "mff_k_ablation");
    exp::harness::finish(&exp::cloud_gaming_costs::run(q).0, "cloud_gaming_costs");
    exp::harness::finish(&exp::mu_sensitivity::run(q).0, "mu_sensitivity");
    exp::harness::finish(&exp::billing_granularity::run(q).0, "billing_granularity");
    exp::harness::finish(&exp::constrained_dbp::run(q).0, "constrained_dbp");
    exp::harness::finish(&exp::footnote1_adaptive::run(q).0, "footnote1_adaptive");
    exp::harness::finish(&exp::flash_crowd::run(q).0, "flash_crowd");
    exp::harness::finish(&exp::mff_decomposition::run(q).0, "mff_decomposition");
    exp::harness::finish(&exp::unit_fractions::run(q).0, "unit_fractions");
    exp::harness::finish(
        &exp::value_of_clairvoyance::run(q).0,
        "value_of_clairvoyance",
    );
    exp::harness::finish(&exp::migration_gap::run(q).0, "migration_gap");
    exp::harness::finish(&exp::server_churn::run(q).0, "server_churn");
    exp::harness::finish(&exp::ff_gap_search::run(q).0, "ff_gap_search");
    exp::harness::finish(&exp::hff_class_ablation::run(q).0, "hff_class_ablation");
    println!(
        "\nall experiments done in {:.1}s",
        t0.elapsed().as_secs_f64()
    );
}
