//! Run every experiment — regenerates every table/figure artifact of the
//! paper. Pass `--quick` for reduced grids and `--jobs N` to bound the
//! worker pool (default: available parallelism, capped at the experiment
//! count).
//!
//! Experiments run concurrently on a bounded worker pool, but all output is
//! buffered per experiment and printed in registration order, and the
//! manifest records experiments in that same order — so two runs of the
//! same build produce identical stdout and an identical
//! `results/manifest.json` (modulo timings) regardless of scheduling.
//!
//! Each experiment runs under `catch_unwind`, so one panicking experiment
//! does not take the sweep down; the process exits nonzero if *any*
//! experiment panicked or failed to write its table. Panic messages are
//! captured into the manifest's `detail` field and echoed in the final
//! timing table.

use dbp_experiments as exp;

use dbp_obs::{ExperimentManifest, ExperimentRecord, ExperimentStatus};
use exp::harness::Table;
use std::any::Any;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Instant;

/// One experiment: its CSV stem and a quick-flag-taking runner.
type Experiment = (&'static str, fn(bool) -> Table);

/// Every experiment, in registration order (the order output and manifest
/// records appear in, independent of scheduling).
const EXPERIMENTS: &[Experiment] = &[
    ("fig1_span", |q| exp::fig1_span::run(q).0),
    ("fig2_anyfit_lb", |q| exp::fig2_anyfit_lb::run(q).0),
    ("fig3_bestfit_unbounded", |q| {
        exp::fig3_bestfit_unbounded::run(q).0
    }),
    ("thm3_large_items", |q| exp::thm3_large_items::run(q).0),
    ("thm4_small_items", |q| exp::thm4_small_items::run(q).0),
    ("thm5_general_ff", |q| exp::thm5_general_ff::run(q).0),
    ("tab2_case_classification", |q| {
        exp::tab2_case_classification::run(q).0
    }),
    ("mff_ratio", |q| exp::mff_ratio::run(q).0),
    ("mff_k_ablation", |q| exp::mff_k_ablation::run(q).0),
    ("cloud_gaming_costs", |q| exp::cloud_gaming_costs::run(q).0),
    ("mu_sensitivity", |q| exp::mu_sensitivity::run(q).0),
    ("billing_granularity", |q| {
        exp::billing_granularity::run(q).0
    }),
    ("constrained_dbp", |q| exp::constrained_dbp::run(q).0),
    ("footnote1_adaptive", |q| exp::footnote1_adaptive::run(q).0),
    ("flash_crowd", |q| exp::flash_crowd::run(q).0),
    ("mff_decomposition", |q| exp::mff_decomposition::run(q).0),
    ("unit_fractions", |q| exp::unit_fractions::run(q).0),
    ("value_of_clairvoyance", |q| {
        exp::value_of_clairvoyance::run(q).0
    }),
    ("migration_gap", |q| exp::migration_gap::run(q).0),
    ("server_churn", |q| exp::server_churn::run(q).0),
    ("fault_tolerance", |q| exp::fault_tolerance::run(q).0),
    ("ff_gap_search", |q| exp::ff_gap_search::run(q).0),
    ("hff_class_ablation", |q| exp::hff_class_ablation::run(q).0),
];

/// Worker count: `--jobs N` if given, else available parallelism; always in
/// `1..=EXPERIMENTS.len()`.
fn jobs() -> usize {
    let mut args = std::env::args();
    let mut requested = None;
    while let Some(a) = args.next() {
        if a == "--jobs" {
            requested = args.next().and_then(|v| v.parse::<usize>().ok());
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            requested = v.parse::<usize>().ok();
        }
    }
    let n = requested.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    });
    n.clamp(1, EXPERIMENTS.len())
}

/// Render a panic payload the way the default hook would: the `&str` or
/// `String` message when there is one.
fn panic_message(payload: Box<dyn Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(payload) => match payload.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "non-string panic payload".to_string(),
        },
    }
}

/// Run one experiment, buffering its output. Returns the printable block
/// and the manifest record (without timing — the caller owns the clock).
fn run_one(
    name: &'static str,
    run: fn(bool) -> Table,
    quick: bool,
) -> (String, ExperimentStatus, Option<String>) {
    let mut out = String::new();
    match catch_unwind(AssertUnwindSafe(|| run(quick))) {
        Ok(table) => {
            out.push_str(&table.render());
            out.push('\n');
            match table.try_write_csv(name) {
                Ok(path) => {
                    out.push_str(&format!("[csv] {}\n", path.display()));
                    (out, ExperimentStatus::Ok, None)
                }
                Err(e) => {
                    let detail = format!("cannot write table: {e}");
                    out.push_str(&format!("[error] {name}: {detail}\n"));
                    (out, ExperimentStatus::WriteFailed, Some(detail))
                }
            }
        }
        Err(payload) => {
            let detail = panic_message(payload);
            out.push_str(&format!("[error] {name}: panicked: {detail}\n"));
            (out, ExperimentStatus::Panicked, Some(detail))
        }
    }
}

fn main() -> ExitCode {
    let quick = exp::quick_flag();
    let workers = jobs();
    let t0 = Instant::now();

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, String, ExperimentRecord)>();

    let mut by_index: BTreeMap<usize, (String, ExperimentRecord)> = BTreeMap::new();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(name, run)) = EXPERIMENTS.get(i) else {
                    return;
                };
                let started = Instant::now();
                let (out, status, detail) = run_one(name, run, quick);
                let record = ExperimentRecord {
                    name: name.to_string(),
                    status,
                    wall_time_ms: started.elapsed().as_millis() as u64,
                    detail,
                };
                if tx.send((i, out, record)).is_err() {
                    return;
                }
            });
        }
        drop(tx);

        // Print completed experiments in registration order, holding back
        // any that finish ahead of a still-running predecessor.
        let mut next_to_print = 0;
        for (i, out, record) in rx {
            by_index.insert(i, (out, record));
            while let Some((out, _)) = by_index.get(&next_to_print) {
                print!("{out}");
                next_to_print += 1;
            }
        }
    });

    let records: Vec<ExperimentRecord> = by_index.into_values().map(|(_, record)| record).collect();
    assert_eq!(records.len(), EXPERIMENTS.len(), "lost experiment results");

    let manifest = ExperimentManifest {
        experiments: records,
        total_wall_time_ms: t0.elapsed().as_millis() as u64,
        peak_rss_bytes: dbp_obs::manifest::peak_rss_bytes(),
    };

    let mut summary = Table::new(
        "run_all timing",
        &["experiment", "status", "wall ms", "detail"],
    );
    for r in &manifest.experiments {
        summary.push(vec![
            r.name.clone(),
            format!("{:?}", r.status),
            r.wall_time_ms.to_string(),
            r.detail.clone().unwrap_or_default(),
        ]);
    }
    summary.print();

    let manifest_path = exp::harness::results_dir().join("manifest.json");
    let mut failed = manifest.failures();
    match dbp_obs::export::write_json(&manifest_path, &manifest) {
        Ok(()) => println!("[manifest] {}", manifest_path.display()),
        Err(e) => {
            eprintln!("[error] cannot write {}: {e}", manifest_path.display());
            failed += 1;
        }
    }

    println!(
        "\nall experiments done in {:.1}s on {} worker(s) ({} ok, {} failed)",
        t0.elapsed().as_secs_f64(),
        workers,
        manifest.experiments.len() - manifest.failures(),
        manifest.failures()
    );
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn capture(f: impl FnOnce() + std::panic::UnwindSafe) -> String {
        panic_message(catch_unwind(f).unwrap_err())
    }

    #[test]
    fn panic_message_downcasts_str_and_string() {
        // Silence the default hook's stderr spew for the two induced panics.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let from_str = capture(|| panic!("plain str payload"));
        let from_string = capture(|| panic!("formatted {} payload", 42));
        std::panic::set_hook(hook);
        assert_eq!(from_str, "plain str payload");
        assert_eq!(from_string, "formatted 42 payload");
    }
}
