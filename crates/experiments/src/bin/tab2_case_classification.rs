//! Binary for the `tab2_case_classification` experiment (see the library module of the same
//! name). Pass `--quick` for a reduced grid.
fn main() {
    let (table, _) = dbp_experiments::tab2_case_classification::run(dbp_experiments::quick_flag());
    dbp_experiments::harness::finish(&table, "tab2_case_classification");
}
