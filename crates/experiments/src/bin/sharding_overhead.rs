//! Binary for the `sharding_overhead` experiment (see the library module of
//! the same name). Pass `--quick` for a reduced grid.
fn main() {
    let (table, _) = dbp_experiments::sharding_overhead::run(dbp_experiments::quick_flag());
    dbp_experiments::harness::finish(&table, "sharding_overhead");
}
