//! Binary for the `mu_sensitivity` experiment (see the library module of the same
//! name). Pass `--quick` for a reduced grid.
fn main() {
    let (table, _) = dbp_experiments::mu_sensitivity::run(dbp_experiments::quick_flag());
    dbp_experiments::harness::finish(&table, "mu_sensitivity");
}
