//! Binary for the `thm4_small_items` experiment (see the library module of the same
//! name). Pass `--quick` for a reduced grid.
fn main() {
    let (table, _) = dbp_experiments::thm4_small_items::run(dbp_experiments::quick_flag());
    dbp_experiments::harness::finish(&table, "thm4_small_items");
}
