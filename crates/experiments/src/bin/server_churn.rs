//! Binary for the `server_churn` experiment (see the library module of the same
//! name). Pass `--quick` for a reduced grid.
fn main() {
    let (table, _) = dbp_experiments::server_churn::run(dbp_experiments::quick_flag());
    dbp_experiments::harness::finish(&table, "server_churn");
}
