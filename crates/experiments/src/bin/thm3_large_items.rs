//! Binary for the `thm3_large_items` experiment (see the library module of the same
//! name). Pass `--quick` for a reduced grid.
fn main() {
    let (table, _) = dbp_experiments::thm3_large_items::run(dbp_experiments::quick_flag());
    dbp_experiments::harness::finish(&table, "thm3_large_items");
}
