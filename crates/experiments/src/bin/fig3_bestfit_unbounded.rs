//! Binary for the `fig3_bestfit_unbounded` experiment (see the library module of the same
//! name). Pass `--quick` for a reduced grid.
fn main() {
    let (table, _) = dbp_experiments::fig3_bestfit_unbounded::run(dbp_experiments::quick_flag());
    dbp_experiments::harness::finish(&table, "fig3_bestfit_unbounded");
}
