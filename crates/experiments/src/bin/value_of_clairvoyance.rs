//! Binary for the `value_of_clairvoyance` experiment (see the library module of the same
//! name). Pass `--quick` for a reduced grid.
fn main() {
    let (table, _) = dbp_experiments::value_of_clairvoyance::run(dbp_experiments::quick_flag());
    dbp_experiments::harness::finish(&table, "value_of_clairvoyance");
}
