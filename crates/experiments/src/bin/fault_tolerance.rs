//! Binary wrapper: `cargo run -p dbp-experiments --bin fault_tolerance`.

use dbp_experiments::{fault_tolerance, harness, quick_flag};

fn main() {
    let (table, _) = fault_tolerance::run(quick_flag());
    harness::finish(&table, "fault_tolerance");
}
