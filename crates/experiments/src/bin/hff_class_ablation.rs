//! Binary for the `hff_class_ablation` experiment (see the library module of the same
//! name). Pass `--quick` for a reduced grid.
fn main() {
    let (table, _) = dbp_experiments::hff_class_ablation::run(dbp_experiments::quick_flag());
    dbp_experiments::harness::finish(&table, "hff_class_ablation");
}
