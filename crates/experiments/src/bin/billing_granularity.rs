//! Binary for the `billing_granularity` experiment (see the library module of the same
//! name). Pass `--quick` for a reduced grid.
fn main() {
    let (table, _) = dbp_experiments::billing_granularity::run(dbp_experiments::quick_flag());
    dbp_experiments::harness::finish(&table, "billing_granularity");
}
