//! Binary for the `ff_gap_search` experiment (see the library module of the same
//! name). Pass `--quick` for a reduced grid.
fn main() {
    let (table, _) = dbp_experiments::ff_gap_search::run(dbp_experiments::quick_flag());
    dbp_experiments::harness::finish(&table, "ff_gap_search");
}
