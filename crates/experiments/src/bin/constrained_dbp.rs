//! Binary for the `constrained_dbp` experiment (see the library module of the same
//! name). Pass `--quick` for a reduced grid.
fn main() {
    let (table, _) = dbp_experiments::constrained_dbp::run(dbp_experiments::quick_flag());
    dbp_experiments::harness::finish(&table, "constrained_dbp");
}
