//! Binary for the `fig1_span` experiment (see the library module of the same
//! name). Pass `--quick` for a reduced grid.
fn main() {
    let (table, _) = dbp_experiments::fig1_span::run(dbp_experiments::quick_flag());
    dbp_experiments::harness::finish(&table, "fig1_span");
}
