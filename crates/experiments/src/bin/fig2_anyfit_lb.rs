//! Binary for the `fig2_anyfit_lb` experiment (see the library module of the same
//! name). Pass `--quick` for a reduced grid.
fn main() {
    let (table, _) = dbp_experiments::fig2_anyfit_lb::run(dbp_experiments::quick_flag());
    dbp_experiments::harness::finish(&table, "fig2_anyfit_lb");
}
