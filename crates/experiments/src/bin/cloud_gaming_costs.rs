//! Binary for the `cloud_gaming_costs` experiment (see the library module of the same
//! name). Pass `--quick` for a reduced grid.
fn main() {
    let (table, _) = dbp_experiments::cloud_gaming_costs::run(dbp_experiments::quick_flag());
    dbp_experiments::harness::finish(&table, "cloud_gaming_costs");
}
