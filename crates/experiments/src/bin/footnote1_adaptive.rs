//! Binary for the `footnote1_adaptive` experiment (see the library module of the same
//! name). Pass `--quick` for a reduced grid.
fn main() {
    let (table, _) = dbp_experiments::footnote1_adaptive::run(dbp_experiments::quick_flag());
    dbp_experiments::harness::finish(&table, "footnote1_adaptive");
}
