//! Binary for the `migration_gap` experiment (see the library module of the same
//! name). Pass `--quick` for a reduced grid.
fn main() {
    let (table, _) = dbp_experiments::migration_gap::run(dbp_experiments::quick_flag());
    dbp_experiments::harness::finish(&table, "migration_gap");
}
