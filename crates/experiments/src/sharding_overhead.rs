//! **sharding_overhead** — what fragmenting one dispatcher into K shards
//! costs.
//!
//! Sharding buys throughput (each shard scans only its own open bins) and
//! fault isolation, but loses packing opportunities: an arrival that would
//! have topped up a half-full server in the global view may open a fresh
//! server in its shard's pool. Against OPT the aggregate can only grow;
//! against an Any Fit dispatcher the overhead is typically ≥ 1 too, though
//! packing anomalies can occasionally let a partition beat the global
//! heuristic. This experiment measures the overhead exactly: for each
//! scenario × router × algorithm, the ratio of the K-shard cluster's
//! `busy_ticks` to the single-dispatcher bill, in exact integers until the
//! final display division.

use crate::harness::{cell, f3, Table};
use dbp_cloudsim::GamingSystem;
use dbp_cluster::{ClusterConfig, ClusterEngine, Router};
use dbp_core::algorithms::indexed_factories;
use dbp_workloads::{generate, CloudGamingConfig, Scenario};

/// One (scenario, router, algorithm, shards) outcome.
#[derive(Debug, Clone)]
pub struct ShardRow {
    /// Scenario name.
    pub scenario: String,
    /// Router name.
    pub router: String,
    /// Algorithm name.
    pub algorithm: String,
    /// Shard count.
    pub shards: usize,
    /// The cluster's exact aggregate busy time, in bin-ticks.
    pub busy_ticks: u128,
    /// The 1-shard (plain dispatcher) busy time, in bin-ticks.
    pub baseline_ticks: u128,
    /// `busy_ticks / baseline_ticks` (display only; ≥ 1 up to routing
    /// noise, exactly 1 for one shard).
    pub overhead: f64,
}

/// The algorithms the sweep covers: the indexed FF/BF/MFF(8) roster — the
/// engines the repo ships. Costs are decision-identical to the naive
/// selectors of the same names, so switching the sweep to the indexed
/// family changed its wall time, not its numbers.
const ALGOS: [&str; 3] = ["FF", "BF", "MFF(8)"];

/// Run the sweep: scenarios × routers × {FF, BF, MFF} × shard counts.
pub fn run(quick: bool) -> (Table, Vec<ShardRow>) {
    let scenarios: &[Scenario] = if quick {
        &[Scenario::Steady, Scenario::LaunchDay]
    } else {
        &Scenario::ALL
    };
    let shard_counts: &[usize] = if quick { &[2, 4] } else { &[2, 4, 8] };

    let mut rows = Vec::new();
    for scenario in scenarios {
        let cfg = CloudGamingConfig {
            seed: 17,
            ..scenario.config()
        };
        let inst = generate(&cfg);
        for factory in indexed_factories()
            .into_iter()
            .filter(|f| ALGOS.contains(&f.name()))
        {
            // K = 1 is the plain dispatcher (proved byte-identical in the
            // conservation suite), so it serves as the exact baseline.
            let one = ClusterEngine::new(
                GamingSystem::paper_model(),
                ClusterConfig::new(1, Router::HashByItem).unwrap(),
            );
            let baseline = one
                .run(&inst, &factory)
                .expect("scenario workloads match the paper system capacity")
                .report
                .busy_ticks;
            for router in Router::ALL {
                for &shards in shard_counts {
                    let engine = ClusterEngine::new(
                        GamingSystem::paper_model(),
                        ClusterConfig::new(shards, router).unwrap(),
                    );
                    let run = engine
                        .run(&inst, &factory)
                        .expect("scenario workloads match the paper system capacity");
                    rows.push(ShardRow {
                        scenario: scenario.name().to_string(),
                        router: router.name().to_string(),
                        algorithm: factory.name().to_string(),
                        shards,
                        busy_ticks: run.report.busy_ticks,
                        baseline_ticks: baseline,
                        overhead: run.report.busy_ticks as f64 / baseline as f64,
                    });
                }
            }
        }
    }

    let mut table = Table::new(
        "Sharding overhead: K-shard cluster cost vs one global dispatcher",
        &[
            "scenario",
            "router",
            "algo",
            "shards",
            "busy ticks",
            "baseline",
            "overhead",
        ],
    );
    for r in &rows {
        table.push(vec![
            r.scenario.clone(),
            r.router.clone(),
            r.algorithm.clone(),
            cell(r.shards),
            cell(r.busy_ticks),
            cell(r.baseline_ticks),
            f3(r.overhead),
        ]);
    }
    (table, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_grid_has_the_expected_shape() {
        let (table, rows) = run(true);
        // 2 scenarios × 3 algorithms × 3 routers × 2 shard counts.
        assert_eq!(rows.len(), 2 * 3 * 3 * 2);
        assert_eq!(table.rows.len(), rows.len());
    }

    #[test]
    fn rows_are_internally_consistent() {
        // The baseline is shared per (scenario, algorithm), every cost is
        // nonzero, and the displayed overhead is exactly the tick ratio.
        let (_, rows) = run(true);
        for r in &rows {
            assert!(r.busy_ticks > 0 && r.baseline_ticks > 0);
            let ratio = r.busy_ticks as f64 / r.baseline_ticks as f64;
            assert_eq!(
                r.overhead, ratio,
                "{}/{}/{}",
                r.scenario, r.router, r.algorithm
            );
        }
    }
}
