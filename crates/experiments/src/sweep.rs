//! Shared sweep helpers for the theorem-verification experiments.

use dbp_core::instance::Instance;
use dbp_core::ratio::Ratio;
use dbp_opt::{opt_total, OptTotal, SolveMode};

/// Measured-ratio bracket of an algorithm's cost against `OPT_total`.
#[derive(Debug, Clone, Copy)]
pub struct RatioBracket {
    /// `cost / OPT_ub` — a lower bound on the true ratio.
    pub lo: Ratio,
    /// `cost / OPT_lb` — an upper bound on the true ratio. Checking a
    /// theorem bound against `hi` is conservative: `hi ≤ bound` implies the
    /// true ratio satisfies the bound.
    pub hi: Ratio,
    /// Whether OPT_total was computed exactly (`lo == hi`).
    pub exact: bool,
}

impl RatioBracket {
    /// Build from a cost and an OPT_total result.
    ///
    /// # Panics
    /// Panics if `OPT_total` is zero (empty instance).
    pub fn new(cost_ticks: u128, opt: &OptTotal) -> RatioBracket {
        assert!(opt.lb_ticks > 0, "OPT_total is zero");
        RatioBracket {
            lo: Ratio::new(cost_ticks, opt.ub_ticks),
            hi: Ratio::new(cost_ticks, opt.lb_ticks),
            exact: opt.is_exact(),
        }
    }
}

/// Run OPT_total and bracket an algorithm's measured competitive ratio.
pub fn ratio_vs_opt(instance: &Instance, cost_ticks: u128, mode: SolveMode) -> RatioBracket {
    let opt = opt_total(instance, mode);
    RatioBracket::new(cost_ticks, &opt)
}

/// Geometric-ish µ grid: 1, 2, 4, 8, … up to `max`, always including `max`.
pub fn mu_grid(max: u64) -> Vec<u64> {
    let mut grid = Vec::new();
    let mut m = 1u64;
    while m < max {
        grid.push(m);
        m *= 2;
    }
    grid.push(max);
    grid
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mu_grid_covers_and_ends_at_max() {
        assert_eq!(mu_grid(32), vec![1, 2, 4, 8, 16, 32]);
        assert_eq!(mu_grid(20), vec![1, 2, 4, 8, 16, 20]);
        assert_eq!(mu_grid(1), vec![1]);
    }

    #[test]
    fn bracket_orders_lo_hi() {
        let opt = OptTotal {
            lb_ticks: 10,
            ub_ticks: 12,
            segments: 1,
            distinct_sets: 1,
        };
        let b = RatioBracket::new(24, &opt);
        assert_eq!(b.lo, Ratio::from_int(2));
        assert_eq!(b.hi, Ratio::new(12, 5));
        assert!(!b.exact);
    }
}
