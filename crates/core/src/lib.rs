//! # MinTotal Dynamic Bin Packing — core library
//!
//! Implementation of the model and algorithms of **"On Dynamic Bin Packing
//! for Resource Allocation in the Cloud"** (Li, Tang, Cai — SPAA 2014).
//!
//! In the MinTotal DBP problem, items (cloud-gaming play requests) arrive
//! and depart over time, each with a size; bins (rented servers) have
//! capacity `W` and cost proportional to the duration they stay open. The
//! objective is the **total bin-time cost** `∫ n(t) dt` — not the classical
//! "maximum bins ever open". Items are packed online, without knowledge of
//! departure times, and never migrate.
//!
//! ## Table 1 notation map
//!
//! | Paper | Here |
//! |---|---|
//! | `a(r)`, `d(r)`, `s(r)` | [`Item::arrival`], [`Item::departure`], [`Item::size`] |
//! | `I(r)`, `len(I(r))` | [`Item::interval`], [`Item::interval_len`] |
//! | `u(r) = s(r)·len(I(r))` | [`Item::demand`] |
//! | `span(R)` | [`Instance::span`] |
//! | `u(R)` | [`Instance::total_demand`] |
//! | `W`, `C` | [`Instance::capacity`]; cost rate `C` cancels in every ratio and is applied by `dbp-cloudsim` billing |
//! | µ | [`Instance::mu`] |
//! | `A(R,t)` | [`PackingTrace::open_bins_at`] |
//! | `A_total(R)` | [`PackingTrace::total_cost_ticks`] |
//! | `OPT(R,t)`, `OPT_total(R)` | `dbp-opt::{opt_at, opt_total}` |
//! | bin configurations `⟨x₁|y₁, …⟩` | [`trace::BinRecord`] + instance sizes |
//!
//! ## Crate layout
//!
//! * [`time`], [`ratio`] — exact tick/rational arithmetic (no floats in any
//!   measured quantity);
//! * [`item`], [`instance`] — the problem model;
//! * [`events`], [`engine`], [`trace`] — the online simulation engine;
//! * [`algorithms`] — First/Best/Worst/Next/Last/Random/Most-Items Fit,
//!   Modified First Fit (§4.4) and Constrained First Fit (§5 extension);
//! * [`bounds`] — bounds (b.1)–(b.3) and every theorem's closed form;
//! * [`clairvoyant`] — departure-aware baselines bridging to the
//!   interval-scheduling related work;
//! * [`analysis`] — the §4.3 proof machinery, executable and checkable;
//! * [`metrics`] — run summaries for experiment tables.
//!
//! ## Quickstart
//!
//! ```
//! use dbp_core::prelude::*;
//!
//! // Three play requests on servers of capacity 10.
//! let mut b = InstanceBuilder::new(10);
//! b.add(0, 40, 6); // arrival, departure, size
//! b.add(5, 25, 6);
//! b.add(10, 35, 4);
//! let instance = b.build().unwrap();
//!
//! let trace = simulate_validated(&instance, &mut FirstFit::new());
//! assert_eq!(trace.bins_used(), 2);
//! let cost = trace.total_cost_ticks(); // exact ∫ n(t) dt
//! assert!(cost >= instance.span().raw() as u128); // bound (b.2)
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod algorithms;
pub mod analysis;
pub mod bin;
pub mod bounds;
pub mod clairvoyant;
pub mod demand;
pub mod engine;
pub mod events;
pub mod gantt;
pub mod instance;
pub mod item;
pub mod metrics;
pub mod packer;
pub mod probe;
#[cfg(test)]
mod proptests;
pub mod ratio;
pub mod snapshot;
pub mod span;
pub mod streaming;
pub mod svg;
pub mod time;
pub mod trace;

pub use bin::{BinId, BinTag, GOpenBinView, OpenBinView};
pub use demand::{scalar_of, vec1_of, Demand, VSize};
pub use engine::{
    any_fit_violations, rebuild_snapshot, simulate, simulate_probed, simulate_resumed_probed,
    simulate_traced, simulate_validated, simulate_validated_probed, EngineRun,
};
pub use instance::{
    GInstance, GInstanceBuilder, GInstanceError, GInstanceStats, Instance, InstanceBuilder,
    InstanceError, InstanceStats,
};
pub use item::{ArrivingItem, GArrivingItem, GItem, Item, ItemId, RegionId, Size};
pub use packer::{BinSelector, Decision, SelectorFactory};
pub use probe::{DropReason, GProbeEvent, NoProbe, Probe, ProbeEvent};
pub use ratio::Ratio;
pub use snapshot::{GSnapshot, Snapshot};
pub use span::{NoSpans, SpanEvent, SpanRecorder};
pub use streaming::{Clock, GStreamError, ManualClock, StreamError, StreamingEngine, WallClock};
pub use time::{Dur, Interval, Tick};
pub use trace::{BinRecord, GPackingTrace, PackingTrace};

/// Everything most users need, in one import.
pub mod prelude {
    pub use crate::algorithms::{
        BestFit, ConstrainedFirstFit, DominanceFit, FirstFit, HarmonicFit, LastFit,
        ModifiedFirstFit, MostItemsFit, NextFit, RandomFit, WorstFit,
    };
    pub use crate::bin::{BinId, BinTag, GOpenBinView, OpenBinView};
    pub use crate::bounds;
    pub use crate::demand::{scalar_of, vec1_of, Demand, VSize};
    pub use crate::engine::{
        any_fit_violations, rebuild_snapshot, simulate, simulate_probed, simulate_resumed_probed,
        simulate_traced, simulate_validated, simulate_validated_probed, EngineRun,
    };
    pub use crate::instance::{GInstance, GInstanceBuilder, Instance, InstanceBuilder};
    pub use crate::item::{ArrivingItem, GArrivingItem, GItem, Item, ItemId, RegionId, Size};
    pub use crate::metrics::{summarize, RunSummary};
    pub use crate::packer::{BinSelector, Decision, SelectorFactory};
    pub use crate::probe::{DropReason, NoProbe, Probe, ProbeEvent};
    pub use crate::ratio::Ratio;
    pub use crate::snapshot::Snapshot;
    pub use crate::span::{NoSpans, SpanEvent, SpanRecorder};
    pub use crate::streaming::{Clock, ManualClock, StreamError, StreamingEngine, WallClock};
    pub use crate::time::{Dur, Interval, Tick};
    pub use crate::trace::PackingTrace;
}
