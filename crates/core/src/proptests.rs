//! Cross-module property tests of the exact-arithmetic substrate: `Ratio`
//! field laws and `Interval` union against brute force — everything else in
//! the reproduction leans on these being right.

#![cfg(test)]

use crate::algorithms::indexed::{IndexedBestFit, IndexedFirstFit, IndexedMff};
use crate::algorithms::{BestFit, FirstFit, ModifiedFirstFit, NextFit, RandomFit};
use crate::engine::EngineRun;
use crate::instance::{Instance, InstanceBuilder};
use crate::item::Item;
use crate::packer::SelectorFactory;
use crate::probe::{FnProbe, NoProbe};
use crate::ratio::Ratio;
use crate::streaming::StreamingEngine;
use crate::time::{union_intervals, union_length, Interval, Tick};
use proptest::prelude::*;
use proptest::TestCaseError;

fn ratios() -> impl Strategy<Value = Ratio> {
    (0u128..2_000, 1u128..2_000).prop_map(|(n, d)| Ratio::new(n, d))
}

proptest! {
    #[test]
    fn ratio_add_commutes_and_associates(a in ratios(), b in ratios(), c in ratios()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn ratio_mul_commutes_distributes(a in ratios(), b in ratios(), c in ratios()) {
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn ratio_sub_then_add_round_trips(a in ratios(), b in ratios()) {
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        prop_assert_eq!(hi - lo + lo, hi);
        prop_assert_eq!(hi.checked_sub(lo), Some(hi - lo));
        if hi != lo {
            prop_assert_eq!(lo.checked_sub(hi), None);
        }
    }

    #[test]
    fn ratio_div_inverts_mul(a in ratios(), b in ratios()) {
        prop_assume!(!b.is_zero());
        prop_assert_eq!(a * b / b, a);
    }

    #[test]
    fn ratio_ordering_is_total_and_consistent_with_f64(a in ratios(), b in ratios()) {
        // Exact ordering must agree with floats whenever floats can tell
        // them apart comfortably.
        let (af, bf) = (a.to_f64(), b.to_f64());
        if (af - bf).abs() > 1e-9 {
            prop_assert_eq!(a < b, af < bf);
        }
        prop_assert_eq!(a.max(b), b.max(a));
        prop_assert_eq!(a.min(b), b.min(a));
        prop_assert!(a.min(b) <= a.max(b));
    }

    #[test]
    fn ratio_floor_ceil_bracket(a in ratios()) {
        prop_assert!(Ratio::from_int(a.floor()) <= a);
        prop_assert!(a <= Ratio::from_int(a.ceil()));
        prop_assert!(a.ceil() - a.floor() <= 1);
        if a.is_integer() {
            prop_assert_eq!(a.floor(), a.ceil());
        }
    }

    #[test]
    fn snapshot_resume_at_every_prefix_is_exact(
        raw in proptest::collection::vec((0u64..40, 1u64..25, 1u64..10), 1..12),
        seed in 0u64..1_000,
    ) {
        let mut b = InstanceBuilder::new(10);
        for &(a, len, size) in &raw {
            b.add(a, a + len, size);
        }
        let inst: Instance = b.build().unwrap();
        let selectors = [
            SelectorFactory::new("FF", || Box::new(FirstFit::new())),
            SelectorFactory::new("BF", || Box::new(BestFit::new())),
            SelectorFactory::new("NF", || Box::new(NextFit::new())),
            SelectorFactory::new("MFF", || Box::new(ModifiedFirstFit::new(4))),
            SelectorFactory::new("IFF", || Box::new(IndexedFirstFit::new())),
            SelectorFactory::new("IBF", || Box::new(IndexedBestFit::new())),
            SelectorFactory::new("RF", move || Box::new(RandomFit::seeded(seed))),
        ];
        for factory in &selectors {
            let mut full_sel = factory.build();
            let full = crate::engine::simulate(&inst, &mut *full_sel);
            // Resume from a snapshot taken after *every* event prefix; the
            // final trace (hence cost) must be identical each time.
            for k in 0..=2 * inst.len() {
                let mut sel = factory.build();
                let mut probe = NoProbe;
                let mut run = EngineRun::new(&inst, &mut *sel, &mut probe);
                for _ in 0..k {
                    prop_assert!(run.step());
                }
                let snap = run.snapshot();
                let mut sel2 = factory.build();
                let mut probe2 = NoProbe;
                let resumed = EngineRun::resume(&inst, &mut *sel2, &mut probe2, &snap)
                    .map_err(|e| {
                        TestCaseError::Fail(format!("{}: resume at {k}: {e}", factory.name()))
                    })?
                    .finish();
                prop_assert_eq!(&resumed, &full, "{} diverged at prefix {}", factory.name(), k);
            }
        }
    }

    #[test]
    fn streaming_engine_is_byte_identical_to_batch(
        raw in proptest::collection::vec((0u64..40, 1u64..25, 1u64..10), 1..14),
        seed in 0u64..1_000,
    ) {
        let mut b = InstanceBuilder::new(10);
        for &(a, len, size) in &raw {
            b.add(a, a + len, size);
        }
        let inst: Instance = b.build().unwrap();
        // The valid interleaving a streaming caller can feed: arrivals in
        // event-time order (the batch schedule's arrival order at equal
        // ticks is instance order = id order).
        let mut stream: Vec<Item> = inst.items().to_vec();
        stream.sort_by_key(|it| (it.arrival, it.id));
        let selectors = [
            SelectorFactory::new("FF", || Box::new(FirstFit::new())),
            SelectorFactory::new("BF", || Box::new(BestFit::new())),
            SelectorFactory::new("MFF", || Box::new(ModifiedFirstFit::new(4))),
            SelectorFactory::new("IFF", || Box::new(IndexedFirstFit::new())),
            SelectorFactory::new("IBF", || Box::new(IndexedBestFit::new())),
            SelectorFactory::new("IMFF", || Box::new(IndexedMff::new(4))),
            SelectorFactory::new("RF", move || Box::new(RandomFit::seeded(seed))),
        ];
        for factory in &selectors {
            let mut batch_events = Vec::new();
            let mut batch_sel = factory.build();
            let batch = crate::engine::simulate_probed(
                &inst,
                &mut *batch_sel,
                &mut FnProbe::new(|ev| batch_events.push(ev)),
            );

            let mut stream_events = Vec::new();
            let mut eng = StreamingEngine::new(
                inst.capacity(),
                factory.build(),
                FnProbe::new(|ev| stream_events.push(ev)),
            );
            for it in &stream {
                eng.push_arrival(*it, it.arrival).map_err(|e| {
                    TestCaseError::Fail(format!("{}: push {}: {e}", factory.name(), it.id))
                })?;
            }
            let trace = eng.finish().map_err(|e| {
                TestCaseError::Fail(format!("{}: finish: {e}", factory.name()))
            })?;
            prop_assert_eq!(&trace, &batch, "{} trace diverged", factory.name());
            prop_assert_eq!(
                &stream_events, &batch_events,
                "{} probe stream diverged", factory.name()
            );
        }
    }

    #[test]
    fn union_length_matches_brute_force(
        raw in proptest::collection::vec((0u64..200, 1u64..40), 0..20)
    ) {
        let ivs: Vec<Interval> = raw
            .iter()
            .map(|&(a, len)| Interval::new(Tick(a), Tick(a + len)))
            .collect();
        let brute = (0..250u64)
            .filter(|&t| ivs.iter().any(|iv| iv.contains(Tick(t))))
            .count() as u64;
        prop_assert_eq!(union_length(&ivs).raw(), brute);

        // The merged list is sorted, disjoint, and covers the same set.
        let merged = union_intervals(&ivs);
        for w in merged.windows(2) {
            prop_assert!(w[0].end < w[1].start);
        }
        let merged_len: u64 = merged.iter().map(|iv| iv.len().raw()).sum();
        prop_assert_eq!(merged_len, brute);
    }
}
