//! Cross-module property tests of the exact-arithmetic substrate: `Ratio`
//! field laws and `Interval` union against brute force — everything else in
//! the reproduction leans on these being right.

#![cfg(test)]

use crate::ratio::Ratio;
use crate::time::{union_intervals, union_length, Interval, Tick};
use proptest::prelude::*;

fn ratios() -> impl Strategy<Value = Ratio> {
    (0u128..2_000, 1u128..2_000).prop_map(|(n, d)| Ratio::new(n, d))
}

proptest! {
    #[test]
    fn ratio_add_commutes_and_associates(a in ratios(), b in ratios(), c in ratios()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn ratio_mul_commutes_distributes(a in ratios(), b in ratios(), c in ratios()) {
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn ratio_sub_then_add_round_trips(a in ratios(), b in ratios()) {
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        prop_assert_eq!(hi - lo + lo, hi);
        prop_assert_eq!(hi.checked_sub(lo), Some(hi - lo));
        if hi != lo {
            prop_assert_eq!(lo.checked_sub(hi), None);
        }
    }

    #[test]
    fn ratio_div_inverts_mul(a in ratios(), b in ratios()) {
        prop_assume!(!b.is_zero());
        prop_assert_eq!(a * b / b, a);
    }

    #[test]
    fn ratio_ordering_is_total_and_consistent_with_f64(a in ratios(), b in ratios()) {
        // Exact ordering must agree with floats whenever floats can tell
        // them apart comfortably.
        let (af, bf) = (a.to_f64(), b.to_f64());
        if (af - bf).abs() > 1e-9 {
            prop_assert_eq!(a < b, af < bf);
        }
        prop_assert_eq!(a.max(b), b.max(a));
        prop_assert_eq!(a.min(b), b.min(a));
        prop_assert!(a.min(b) <= a.max(b));
    }

    #[test]
    fn ratio_floor_ceil_bracket(a in ratios()) {
        prop_assert!(Ratio::from_int(a.floor()) <= a);
        prop_assert!(a <= Ratio::from_int(a.ceil()));
        prop_assert!(a.ceil() - a.floor() <= 1);
        if a.is_integer() {
            prop_assert_eq!(a.floor(), a.ceil());
        }
    }

    #[test]
    fn union_length_matches_brute_force(
        raw in proptest::collection::vec((0u64..200, 1u64..40), 0..20)
    ) {
        let ivs: Vec<Interval> = raw
            .iter()
            .map(|&(a, len)| Interval::new(Tick(a), Tick(a + len)))
            .collect();
        let brute = (0..250u64)
            .filter(|&t| ivs.iter().any(|iv| iv.contains(Tick(t))))
            .count() as u64;
        prop_assert_eq!(union_length(&ivs).raw(), brute);

        // The merged list is sorted, disjoint, and covers the same set.
        let merged = union_intervals(&ivs);
        for w in merged.windows(2) {
            prop_assert!(w[0].end < w[1].start);
        }
        let merged_len: u64 = merged.iter().map(|iv| iv.len().raw()).sum();
        prop_assert_eq!(merged_len, brute);
    }
}
