//! Items: the play requests of the cloud-gaming model.
//!
//! Each item `r` is the 3-tuple `(a(r), d(r), s(r))` of the paper — arrival
//! time, departure time, and size — plus an identifier and an optional
//! region tag used by the constrained-DBP extension (§5 future work).

use crate::demand::Demand;
use crate::ratio::Ratio;
use crate::time::{Dur, Interval, Tick};
use core::fmt;
use serde::{Deserialize, Serialize};

/// Identifier of an item, equal to its index in its [`Instance`].
///
/// [`Instance`]: crate::instance::Instance
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ItemId(pub u32);

impl ItemId {
    #[inline]
    /// The id as a zero-based index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A resource size (GPU units in the motivating application), measured in
/// the same integer units as the bin capacity `W`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Size(pub u64);

impl Size {
    /// The zero size.
    pub const ZERO: Size = Size(0);

    #[inline]
    /// Raw size value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    #[inline]
    /// Overflow-checked addition.
    pub fn checked_add(self, other: Size) -> Option<Size> {
        self.0.checked_add(other.0).map(Size)
    }

    /// # Panics
    /// Panics on underflow.
    #[inline]
    pub fn saturating_sub(self, other: Size) -> Size {
        Size(self.0.saturating_sub(other.0))
    }
}

impl core::ops::Add for Size {
    type Output = Size;
    #[inline]
    fn add(self, rhs: Size) -> Size {
        Size(self.0.checked_add(rhs.0).expect("Size + Size overflow"))
    }
}

impl core::ops::AddAssign for Size {
    #[inline]
    fn add_assign(&mut self, rhs: Size) {
        *self = *self + rhs;
    }
}

impl core::ops::Sub for Size {
    type Output = Size;
    #[inline]
    fn sub(self, rhs: Size) -> Size {
        Size(self.0.checked_sub(rhs.0).expect("Size - Size underflow"))
    }
}

impl core::ops::SubAssign for Size {
    #[inline]
    fn sub_assign(&mut self, rhs: Size) {
        *self = *self - rhs;
    }
}

impl fmt::Display for Size {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Region tag for the constrained-DBP extension. Plain DBP uses a single
/// region (`RegionId::GLOBAL`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct RegionId(pub u16);

impl RegionId {
    /// The single region of unconstrained DBP.
    pub const GLOBAL: RegionId = RegionId(0);
}

/// An item of the MinTotal DBP instance, generic over its demand type:
/// scalar [`Size`] (the paper's model, via the [`Item`] alias) or a
/// const-generic vector [`VSize<D>`](crate::demand::VSize).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GItem<Sz> {
    /// Item id (index into the instance).
    pub id: ItemId,
    /// `a(r)`: arrival time.
    pub arrival: Tick,
    /// `d(r)`: departure time. Known to the *instance* (and thus to offline
    /// baselines) but deliberately hidden from online algorithms, which only
    /// see an [`ArrivingItem`].
    pub departure: Tick,
    /// `s(r)`: size.
    pub size: Sz,
    /// Region constraint (extension); `RegionId::GLOBAL` for plain DBP.
    pub region: RegionId,
}

/// The scalar item of the source paper: demand is a single [`Size`].
pub type Item = GItem<Size>;

impl Item {
    /// Convenience constructor for the unconstrained problem.
    pub fn new(id: u32, arrival: u64, departure: u64, size: u64) -> Item {
        Item {
            id: ItemId(id),
            arrival: Tick(arrival),
            departure: Tick(departure),
            size: Size(size),
            region: RegionId::GLOBAL,
        }
    }
}

impl<Sz: Demand> GItem<Sz> {
    /// The interval `I(r) = [a(r), d(r))` during which the item is active.
    #[inline]
    pub fn interval(&self) -> Interval {
        Interval::new(self.arrival, self.departure)
    }

    /// `len(I(r)) = d(r) − a(r)`.
    #[inline]
    pub fn interval_len(&self) -> Dur {
        self.departure - self.arrival
    }

    /// The resource demand `u(r) = s(r) · len(I(r))`, in size·ticks —
    /// summed over dimensions (`Σ_d s_d` is exactly `s` at `D = 1`).
    #[inline]
    pub fn demand(&self) -> u128 {
        self.size.total() * self.interval_len().0 as u128
    }

    /// Whether the item is active at time `t` (arrival inclusive, departure
    /// exclusive, matching the engine's departures-before-arrivals rule).
    #[inline]
    pub fn is_active_at(&self, t: Tick) -> bool {
        self.interval().contains(t)
    }

    /// The same item with its demand mapped through `f` — how the D=1
    /// equivalence suite lifts scalar instances into vector space and back.
    pub fn map_demand<T: Demand>(&self, f: impl FnOnce(Sz) -> T) -> GItem<T> {
        GItem {
            id: self.id,
            arrival: self.arrival,
            departure: self.departure,
            size: f(self.size),
            region: self.region,
        }
    }
}

/// The online view of an item: what a packing algorithm is allowed to see at
/// assignment time. Per the paper's model the departure time is unknown when
/// the item arrives, so it is simply absent from this type — online
/// algorithms cannot cheat even by accident.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GArrivingItem<Sz> {
    /// Item id.
    pub id: ItemId,
    /// `a(r)`: arrival time.
    pub arrival: Tick,
    /// `s(r)`: size.
    pub size: Sz,
    /// Region constraint tag.
    pub region: RegionId,
}

/// The scalar arriving item of the source paper.
pub type ArrivingItem = GArrivingItem<Size>;

impl<Sz: Demand> GArrivingItem<Sz> {
    pub(crate) fn of(item: &GItem<Sz>) -> GArrivingItem<Sz> {
        GArrivingItem {
            id: item.id,
            arrival: item.arrival,
            size: item.size,
            region: item.region,
        }
    }
}

/// Exact fraction `size / capacity` — handy for reasoning about the `W/k`
/// thresholds of Theorems 3–4.
pub fn size_fraction(size: Size, capacity: Size) -> Ratio {
    Ratio::new(size.0 as u128, capacity.0 as u128)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_basic_quantities() {
        let r = Item::new(0, 10, 25, 4);
        assert_eq!(r.interval_len(), Dur(15));
        assert_eq!(r.demand(), 60);
        assert!(r.is_active_at(Tick(10)));
        assert!(r.is_active_at(Tick(24)));
        assert!(!r.is_active_at(Tick(25)));
        assert!(!r.is_active_at(Tick(9)));
    }

    #[test]
    fn arriving_item_hides_departure() {
        let r = Item::new(7, 0, 100, 3);
        let v = ArrivingItem::of(&r);
        assert_eq!(v.id, ItemId(7));
        assert_eq!(v.size, Size(3));
        // No departure field exists on ArrivingItem; this is a compile-time
        // guarantee, the assertions above just pin the copied fields.
    }

    #[test]
    fn size_arithmetic() {
        assert_eq!(Size(3) + Size(4), Size(7));
        assert_eq!(Size(7) - Size(4), Size(3));
        assert_eq!(Size(3).saturating_sub(Size(10)), Size::ZERO);
        assert_eq!(Size(u64::MAX).checked_add(Size(1)), None);
    }

    #[test]
    fn size_fraction_is_exact() {
        assert_eq!(size_fraction(Size(25), Size(100)), Ratio::new(1, 4));
    }
}
