//! Text Gantt rendering of packing traces — one row per bin, a compressed
//! time axis, and per-cell fill levels. Used by `dbp run --gantt` and handy
//! when staring at adversarial constructions.

use crate::instance::Instance;
use crate::time::Tick;
use crate::trace::PackingTrace;

/// Render `trace` as a text Gantt chart with `width` columns.
///
/// Cell glyphs encode the bin's fill level over that time slice:
/// `·` closed, `░` ≤ 25%, `▒` ≤ 50%, `▓` ≤ 75%, `█` > 75% (max level within
/// the slice).
///
/// # Panics
/// Panics if `width == 0`.
pub fn render_gantt(instance: &Instance, trace: &PackingTrace, width: usize) -> String {
    assert!(width > 0, "gantt width must be positive");
    let Some(period) = instance.packing_period() else {
        return String::from("(empty instance)\n");
    };
    let start = period.start.raw();
    let end = period.end.raw().max(start + 1);
    let span = end - start;
    let capacity = trace.capacity.raw().max(1);

    let col_of = |t: u64| -> usize {
        (((t.saturating_sub(start)) as u128 * width as u128) / span as u128) as usize
    };

    let mut out = String::new();
    out.push_str(&format!(
        "time [{start}, {end}) -> {width} cols, {} bins, cost {} bin-ticks\n",
        trace.bins.len(),
        trace.total_cost_ticks()
    ));
    for bin in &trace.bins {
        // Max level per column while the bin is open.
        let mut level_per_col = vec![None::<u64>; width];
        // Walk the bin's item intervals: level changes only at arrivals and
        // departures of its own items.
        let mut events: Vec<(u64, i64)> = Vec::new();
        for &id in &bin.items {
            let it = instance.item(id);
            events.push((it.arrival.raw(), it.size.raw() as i64));
            events.push((it.departure.raw(), -(it.size.raw() as i64)));
        }
        events.sort_unstable();
        let mut level: i64 = 0;
        let mut i = 0;
        while i < events.len() {
            let t = events[i].0;
            while i < events.len() && events[i].0 == t {
                level += events[i].1;
                i += 1;
            }
            let until = events.get(i).map(|e| e.0).unwrap_or(t);
            if level > 0 {
                let (c0, c1) = (col_of(t), col_of(until.max(t + 1)).min(width - 1));
                for cell in level_per_col.iter_mut().take(c1.max(c0) + 1).skip(c0) {
                    let lv = cell.unwrap_or(0).max(level as u64);
                    *cell = Some(lv);
                }
            }
        }
        out.push_str(&format!("{:>5} |", bin.id.to_string()));
        for cell in &level_per_col {
            out.push(match cell {
                None => '·',
                Some(lv) => {
                    let q = lv * 4 / capacity;
                    match q {
                        0 => '░',
                        1 => '▒',
                        2 | 3 => '▓',
                        _ => '█',
                    }
                }
            });
        }
        out.push('\n');
    }
    out
}

/// The open-bin count over time as a sparkline (one char per step change).
pub fn sparkline(trace: &PackingTrace) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = trace.max_open_bins().max(1);
    trace
        .open_bins_steps
        .iter()
        .map(|&(_, n)| {
            let idx = (n as usize * (GLYPHS.len() - 1)) / max as usize;
            GLYPHS[idx]
        })
        .collect()
}

/// Number of open bins at evenly spaced sample ticks — a plottable series.
pub fn open_bins_series(trace: &PackingTrace, samples: usize) -> Vec<(Tick, u32)> {
    let Some(&(first, _)) = trace.open_bins_steps.first() else {
        return Vec::new();
    };
    let &(last, _) = trace.open_bins_steps.last().unwrap();
    let span = (last.raw().saturating_sub(first.raw())).max(1);
    (0..samples)
        .map(|i| {
            let t = Tick(first.raw() + span * i as u64 / samples.max(1) as u64);
            (t, trace.open_bins_at(t))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::FirstFit;
    use crate::engine::simulate_validated;
    use crate::instance::InstanceBuilder;

    fn demo() -> (Instance, PackingTrace) {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 100, 6);
        b.add(0, 40, 6);
        b.add(50, 100, 9);
        let inst = b.build().unwrap();
        let trace = simulate_validated(&inst, &mut FirstFit::new());
        (inst, trace)
    }

    #[test]
    fn gantt_has_one_row_per_bin() {
        let (inst, trace) = demo();
        let g = render_gantt(&inst, &trace, 40);
        let rows: Vec<&str> = g.lines().collect();
        assert_eq!(rows.len(), 1 + trace.bins.len());
        assert!(rows[0].contains("cost"));
        // Every bin row has exactly width glyph cells after the label.
        for row in &rows[1..] {
            let cells = row.split('|').nth(1).unwrap();
            assert_eq!(cells.chars().count(), 40);
        }
    }

    #[test]
    fn closed_periods_render_as_dots() {
        let (inst, trace) = demo();
        let g = render_gantt(&inst, &trace, 50);
        // Bin 1 (the size-6 item departing at 40) must be dotted in the
        // second half of the axis.
        let row_b1 = g.lines().nth(2).unwrap();
        let cells: Vec<char> = row_b1.split('|').nth(1).unwrap().chars().collect();
        assert_eq!(cells[45], '·');
        assert_ne!(cells[5], '·');
    }

    #[test]
    fn sparkline_length_matches_steps() {
        let (_, trace) = demo();
        assert_eq!(
            sparkline(&trace).chars().count(),
            trace.open_bins_steps.len()
        );
    }

    #[test]
    fn series_samples_are_monotone_in_time() {
        let (_, trace) = demo();
        let series = open_bins_series(&trace, 20);
        assert_eq!(series.len(), 20);
        assert!(series.windows(2).all(|w| w[0].0 <= w[1].0));
        // Values agree with direct queries.
        for (t, n) in series {
            assert_eq!(trace.open_bins_at(t), n);
        }
    }

    #[test]
    fn empty_instance_renders_placeholder() {
        let inst = Instance::new(crate::item::Size(5), vec![]).unwrap();
        let trace = simulate_validated(&inst, &mut FirstFit::new());
        assert_eq!(render_gantt(&inst, &trace, 10), "(empty instance)\n");
        assert!(open_bins_series(&trace, 5).is_empty());
    }
}
