//! Multi-resource demands: the vector generalization of [`Size`].
//!
//! The source paper models each request as one scalar demand. Real cloud
//! sessions are constrained by GPU *and* CPU *and* RAM simultaneously — the
//! Dynamic Vector Bin Packing setting (Murhekar et al., arXiv:2304.08648).
//! This module makes the whole engine stack generic over a [`Demand`]
//! trait with two implementors:
//!
//! * [`Size`] — the scalar demand of the paper, unchanged in layout,
//!   arithmetic and serde format;
//! * [`VSize<D>`] — a const-generic demand vector `[u64; D]`, one
//!   component per resource dimension.
//!
//! ## The D=1 degeneracy guarantee
//!
//! Every generalized operation reduces *exactly* to its scalar meaning at
//! `D = 1`:
//!
//! * feasibility is the **intersection** of per-dimension feasibility
//!   ([`Demand::fits_within`] is componentwise `≤`), which at one
//!   dimension is the scalar `level + size ≤ W` test;
//! * Best-Fit-style fullness comparisons use the exact L1 norm
//!   ([`Demand::total`], a `u128` so no overflow), which at one dimension
//!   *is* the level;
//! * Modified First Fit's large/small threshold is "large in **some**
//!   dimension" via the exact rational test `s_d·k_num ≥ W_d·k_den`, which
//!   at one dimension is the paper's `s ≥ W/k`;
//! * index structures order on componentwise maxima ([`Demand::join`]),
//!   which at one dimension is the plain max.
//!
//! The `vector_equivalence` differential suite pins this down: a `VSize<1>`
//! run is byte-identical — traces, probe streams, digests, bills — to the
//! scalar run on the same seed.

use crate::item::Size;
use core::fmt;
use core::hash::Hash;
use serde::{de::DeserializeOwned, Deserialize, Serialize};

/// A packable demand: scalar [`Size`] or vector [`VSize<D>`].
///
/// All arithmetic is exact-integer and componentwise; comparisons that
/// drive packing decisions go through the explicit methods below (never
/// through `Ord`, which is lexicographic on vectors and only used for
/// stable container keys).
pub trait Demand:
    Copy
    + Clone
    + PartialEq
    + Eq
    + PartialOrd
    + Ord
    + Hash
    + fmt::Debug
    + fmt::Display
    + Default
    + Serialize
    + DeserializeOwned
    + Send
    + Sync
    + 'static
{
    /// Number of resource dimensions.
    const DIMS: usize;

    /// The all-zero demand.
    const ZERO: Self;

    /// Whether every component is zero (the "no demand at all" test used
    /// by instance validation; a *mixed* demand with some zero components
    /// is legal — a CPU-only job has zero GPU demand).
    fn is_zero(&self) -> bool;

    /// Whether any component is zero (used to reject degenerate
    /// capacities: a bin must have positive capacity in every dimension).
    fn has_zero_component(&self) -> bool;

    /// Componentwise overflow-checked addition; `None` if any dimension
    /// overflows.
    fn checked_add(self, other: Self) -> Option<Self>;

    /// Componentwise subtraction.
    ///
    /// # Panics
    /// Panics on underflow in any dimension.
    fn sub(self, other: Self) -> Self;

    /// Componentwise saturating subtraction.
    fn saturating_sub(self, other: Self) -> Self;

    /// Componentwise `self ≤ cap` — vector feasibility as the
    /// **intersection** of per-dimension feasibility.
    fn fits_within(self, cap: Self) -> bool;

    /// Componentwise maximum — the lattice join used by the indexed
    /// selectors' residual trees.
    fn join(self, other: Self) -> Self;

    /// Exact L1 norm `Σ_d self_d`, widened to `u128` so `D · u64::MAX`
    /// cannot overflow.
    fn total(&self) -> u128;

    /// The largest component.
    fn max_component(&self) -> u64;

    /// Component `d` (`d < DIMS`).
    ///
    /// # Panics
    /// Panics if `d ≥ DIMS`.
    fn component(&self, d: usize) -> u64;

    /// Build a demand from a component slice; `None` when
    /// `components.len() != DIMS` (the serve-protocol arity check).
    fn from_components(components: &[u64]) -> Option<Self>;

    /// The components as a vec (for metrics labels and wire encodings).
    fn components(&self) -> Vec<u64> {
        (0..Self::DIMS).map(|d| self.component(d)).collect()
    }

    /// A demand with every component equal to `v` — how scalar-shaped
    /// workloads and capacities broadcast into vector space.
    fn splat(v: u64) -> Self;

    /// Exact-rational threshold test of Modified First Fit, generalized:
    /// whether `self ≥ cap·(den/num)` **in some dimension**, i.e.
    /// `∃d: self_d · num ≥ cap_d · den`. At `D = 1` this is the paper's
    /// scalar `s ≥ W/k` test with `num = k_den·k`, exactly.
    fn any_component_ge_frac(&self, cap: &Self, num: u128, den: u128) -> bool {
        (0..Self::DIMS).any(|d| self.component(d) as u128 * num >= cap.component(d) as u128 * den)
    }
}

impl Demand for Size {
    const DIMS: usize = 1;
    const ZERO: Size = Size(0);

    #[inline]
    fn is_zero(&self) -> bool {
        self.0 == 0
    }

    #[inline]
    fn has_zero_component(&self) -> bool {
        self.0 == 0
    }

    #[inline]
    fn checked_add(self, other: Size) -> Option<Size> {
        Size::checked_add(self, other)
    }

    #[inline]
    fn sub(self, other: Size) -> Size {
        self - other
    }

    #[inline]
    fn saturating_sub(self, other: Size) -> Size {
        Size::saturating_sub(self, other)
    }

    #[inline]
    fn fits_within(self, cap: Size) -> bool {
        self <= cap
    }

    #[inline]
    fn join(self, other: Size) -> Size {
        Size(self.0.max(other.0))
    }

    #[inline]
    fn total(&self) -> u128 {
        self.0 as u128
    }

    #[inline]
    fn max_component(&self) -> u64 {
        self.0
    }

    #[inline]
    fn component(&self, d: usize) -> u64 {
        assert!(d < 1, "scalar Size has one dimension, asked for {d}");
        self.0
    }

    fn from_components(components: &[u64]) -> Option<Size> {
        match components {
            [v] => Some(Size(*v)),
            _ => None,
        }
    }

    #[inline]
    fn splat(v: u64) -> Size {
        Size(v)
    }
}

/// A const-generic demand vector: one `u64` per resource dimension
/// (e.g. `VSize<3>` for GPU/CPU/RAM). Serializes as a plain JSON array
/// `[g, c, m]` — except at `D = 1`, where it serializes as the bare
/// number so a one-dimensional run is byte-identical to the scalar
/// [`Size`] format (and v1 scalar payloads deserialize unchanged).
///
/// The derived `Ord` is lexicographic and exists only so `VSize` can key
/// ordered containers; packing decisions use [`Demand`] methods, which
/// are componentwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VSize<const D: usize>(pub [u64; D]);

impl<const D: usize> Serialize for VSize<D> {
    fn to_value(&self) -> serde::Value {
        if D == 1 {
            serde::Value::UInt(self.0[0] as u128)
        } else {
            serde::Value::Seq(
                self.0
                    .iter()
                    .map(|&c| serde::Value::UInt(c as u128))
                    .collect(),
            )
        }
    }
}

impl<const D: usize> Deserialize for VSize<D> {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::Seq(items) if items.len() == D => {
                let mut out = [0u64; D];
                for (slot, item) in out.iter_mut().zip(items) {
                    *slot = u64::from_value(item)?;
                }
                Ok(VSize(out))
            }
            serde::Value::Seq(items) => Err(serde::Error::custom(format!(
                "demand vector has {} dimension(s), expected {D}",
                items.len()
            ))),
            // Scalar back-compat: a bare number is a 1-vector.
            other if D == 1 => {
                let mut out = [0u64; D];
                out[0] = u64::from_value(other)?;
                Ok(VSize(out))
            }
            other => Err(serde::Error::custom(format!(
                "expected demand vector of {D} dimension(s), got {}",
                other.kind()
            ))),
        }
    }
}

impl<const D: usize> VSize<D> {
    /// The raw component array.
    #[inline]
    pub const fn raw(self) -> [u64; D] {
        self.0
    }
}

impl<const D: usize> Default for VSize<D> {
    fn default() -> VSize<D> {
        VSize([0; D])
    }
}

impl<const D: usize> fmt::Display for VSize<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

impl<const D: usize> Demand for VSize<D> {
    const DIMS: usize = D;
    const ZERO: VSize<D> = VSize([0; D]);

    #[inline]
    fn is_zero(&self) -> bool {
        self.0.iter().all(|&v| v == 0)
    }

    #[inline]
    fn has_zero_component(&self) -> bool {
        self.0.contains(&0)
    }

    #[inline]
    fn checked_add(self, other: VSize<D>) -> Option<VSize<D>> {
        let mut out = [0u64; D];
        for ((o, &a), &b) in out.iter_mut().zip(&self.0).zip(&other.0) {
            *o = a.checked_add(b)?;
        }
        Some(VSize(out))
    }

    #[inline]
    fn sub(self, other: VSize<D>) -> VSize<D> {
        let mut out = [0u64; D];
        for ((o, &a), &b) in out.iter_mut().zip(&self.0).zip(&other.0) {
            *o = a.checked_sub(b).expect("VSize - VSize underflow");
        }
        VSize(out)
    }

    #[inline]
    fn saturating_sub(self, other: VSize<D>) -> VSize<D> {
        let mut out = [0u64; D];
        for ((o, &a), &b) in out.iter_mut().zip(&self.0).zip(&other.0) {
            *o = a.saturating_sub(b);
        }
        VSize(out)
    }

    #[inline]
    fn fits_within(self, cap: VSize<D>) -> bool {
        (0..D).all(|d| self.0[d] <= cap.0[d])
    }

    #[inline]
    fn join(self, other: VSize<D>) -> VSize<D> {
        let mut out = [0u64; D];
        for ((o, &a), &b) in out.iter_mut().zip(&self.0).zip(&other.0) {
            *o = a.max(b);
        }
        VSize(out)
    }

    #[inline]
    fn total(&self) -> u128 {
        self.0.iter().map(|&v| v as u128).sum()
    }

    #[inline]
    fn max_component(&self) -> u64 {
        self.0.iter().copied().max().unwrap_or(0)
    }

    #[inline]
    fn component(&self, d: usize) -> u64 {
        self.0[d]
    }

    fn from_components(components: &[u64]) -> Option<VSize<D>> {
        <[u64; D]>::try_from(components).ok().map(VSize)
    }

    #[inline]
    fn splat(v: u64) -> VSize<D> {
        VSize([v; D])
    }
}

/// The scalar value of a one-dimensional vector demand.
#[inline]
pub fn scalar_of(v: VSize<1>) -> Size {
    Size(v.0[0])
}

/// Lift a scalar demand into one-dimensional vector space.
#[inline]
pub fn vec1_of(s: Size) -> VSize<1> {
    VSize([s.0])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_demand_matches_size_semantics() {
        assert_eq!(<Size as Demand>::DIMS, 1);
        assert!(Demand::is_zero(&Size(0)));
        assert!(!Demand::is_zero(&Size(3)));
        assert!(Size(3).fits_within(Size(3)));
        assert!(!Size(4).fits_within(Size(3)));
        assert_eq!(Size(3).join(Size(7)), Size(7));
        assert_eq!(Size(5).total(), 5);
        assert_eq!(Size::from_components(&[9]), Some(Size(9)));
        assert_eq!(Size::from_components(&[9, 9]), None);
    }

    #[test]
    fn vector_componentwise_ops() {
        let a = VSize([3, 0, 7]);
        let b = VSize([1, 2, 7]);
        assert!(!a.is_zero());
        assert!(a.has_zero_component());
        assert!(VSize::<3>::ZERO.is_zero());
        assert_eq!(a.checked_add(b), Some(VSize([4, 2, 14])));
        assert_eq!(VSize([u64::MAX, 0]).checked_add(VSize([1, 0])), None);
        assert_eq!(a.join(b), VSize([3, 2, 7]));
        assert_eq!(a.total(), 10);
        assert_eq!(a.max_component(), 7);
        assert!(b.fits_within(VSize([1, 2, 7])));
        assert!(!a.fits_within(b));
        assert_eq!(a.sub(VSize([1, 0, 7])), VSize([2, 0, 0]));
        assert_eq!(VSize([1, 5]).saturating_sub(VSize([3, 1])), VSize([0, 4]));
        assert_eq!(VSize::<2>::splat(4), VSize([4, 4]));
    }

    #[test]
    fn vector_serde_is_a_plain_array() {
        let v = VSize([6, 2]);
        assert_eq!(serde_json::to_string(&v).unwrap(), "[6,2]");
        let back: VSize<2> = serde_json::from_str("[6,2]").unwrap();
        assert_eq!(back, v);
        assert!(serde_json::from_str::<VSize<2>>("[6,2,1]").is_err());
        // Scalar Size keeps its transparent format.
        assert_eq!(serde_json::to_string(&Size(6)).unwrap(), "6");
    }

    #[test]
    fn mff_threshold_reduces_to_scalar_at_d1() {
        // s ≥ W/k with W=100, k=8 → threshold 12.5: 13 is large, 12 small.
        let cap = Size(100);
        assert!(Size(13).any_component_ge_frac(&cap, 8, 1));
        assert!(!Size(12).any_component_ge_frac(&cap, 8, 1));
        // Vector: large in *some* dimension suffices.
        let vcap = VSize([100, 10]);
        assert!(VSize([1, 9]).any_component_ge_frac(&vcap, 8, 1));
        assert!(!VSize([12, 1]).any_component_ge_frac(&vcap, 8, 1));
    }

    #[test]
    fn d1_conversions_round_trip() {
        assert_eq!(scalar_of(vec1_of(Size(42))), Size(42));
        assert_eq!(vec1_of(Size(7)).total(), Size(7).total());
    }
}
