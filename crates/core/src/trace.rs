//! The complete record of one packing run.
//!
//! A [`PackingTrace`] holds everything needed to (a) compute the MinTotal
//! objective exactly, (b) drive the §4.3 proof machinery, and (c)
//! cross-check the engine: the per-bin usage periods and the open-bin step
//! function are recorded independently and must integrate to the same cost.

use crate::bin::{BinId, BinTag};
use crate::demand::Demand;
use crate::instance::GInstance;
use crate::item::{ItemId, Size};
use crate::ratio::Ratio;
use crate::time::{Dur, Interval, Tick};
use serde::{Deserialize, Serialize};

/// Lifetime record of one bin.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinRecord {
    /// Bin id (opening order).
    pub id: BinId,
    /// Tag assigned by the opening algorithm.
    pub tag: BinTag,
    /// When the bin was opened (first item packed).
    pub opened_at: Tick,
    /// When the bin closed (last item departed).
    pub closed_at: Tick,
    /// Items ever assigned to this bin, in assignment order.
    pub items: Vec<ItemId>,
}

impl BinRecord {
    /// The usage period `I_i = [opened_at, closed_at)`.
    #[inline]
    pub fn usage_period(&self) -> Interval {
        Interval::new(self.opened_at, self.closed_at)
    }

    /// `len(I_i)`.
    #[inline]
    pub fn usage_len(&self) -> Dur {
        self.closed_at - self.opened_at
    }
}

/// The result of simulating one algorithm on one instance, generic over
/// the demand type (scalar via the [`PackingTrace`] alias).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GPackingTrace<Sz> {
    /// Algorithm name as reported by the selector.
    pub algorithm: String,
    /// Bin capacity `W`.
    pub capacity: Sz,
    /// Bins in opening order (`bins[i].id == BinId(i)`).
    pub bins: Vec<BinRecord>,
    /// `assignment[item.index()]` is the bin the item was packed into.
    pub assignment: Vec<BinId>,
    /// Step function of the number of open bins: `(t, n)` means the count
    /// became `n` at tick `t` and stays until the next entry. Starts at the
    /// first event tick; ends with a final `(t, 0)`.
    pub open_bins_steps: Vec<(Tick, u32)>,
}

/// The scalar packing trace of the source paper.
pub type PackingTrace = GPackingTrace<Size>;

impl<Sz> GPackingTrace<Sz> {
    /// The same trace with its capacity mapped through `f`. Bin records
    /// and step functions carry no demand values, so this is the complete
    /// demand-type conversion — the D=1 equivalence suite uses it to
    /// compare a `VSize<1>` trace byte-for-byte against the scalar trace.
    pub fn map_demand<T>(self, f: impl FnOnce(Sz) -> T) -> GPackingTrace<T> {
        GPackingTrace {
            algorithm: self.algorithm,
            capacity: f(self.capacity),
            bins: self.bins,
            assignment: self.assignment,
            open_bins_steps: self.open_bins_steps,
        }
    }
}

impl<Sz: Demand> GPackingTrace<Sz> {
    /// Number of bins ever used (the classical DBP objective counts the
    /// maximum simultaneously open; this is the total distinct count).
    #[inline]
    pub fn bins_used(&self) -> usize {
        self.bins.len()
    }

    /// `A_total(R)` in bin-ticks: `Σ_i len(I_i)` — exact, no integration
    /// error. Multiply by a cost rate to get money.
    pub fn total_cost_ticks(&self) -> u128 {
        self.bins.iter().map(|b| b.usage_len().0 as u128).sum()
    }

    /// Independent computation of the cost from the open-bin step function:
    /// `∫ n(t) dt`. Must equal [`Self::total_cost_ticks`]; used as an engine
    /// self-check in tests.
    pub fn cost_from_step_function(&self) -> u128 {
        let mut total: u128 = 0;
        for w in self.open_bins_steps.windows(2) {
            let (t0, n) = w[0];
            let (t1, _) = w[1];
            total += (t1 - t0).0 as u128 * n as u128;
        }
        total
    }

    /// Maximum number of simultaneously open bins (the classical DBP
    /// objective, reported for comparison).
    pub fn max_open_bins(&self) -> u32 {
        self.open_bins_steps
            .iter()
            .map(|&(_, n)| n)
            .max()
            .unwrap_or(0)
    }

    /// Number of open bins at time `t` (`A(R, t)` in the paper).
    pub fn open_bins_at(&self, t: Tick) -> u32 {
        match self.open_bins_steps.binary_search_by_key(&t, |&(tt, _)| tt) {
            Ok(i) => self.open_bins_steps[i].1,
            Err(0) => 0,
            Err(i) => self.open_bins_steps[i - 1].1,
        }
    }

    /// The bin an item was assigned to.
    #[inline]
    pub fn bin_of(&self, item: ItemId) -> BinId {
        self.assignment[item.index()]
    }

    /// Bins carrying a given tag.
    pub fn bins_with_tag(&self, tag: BinTag) -> impl Iterator<Item = &BinRecord> {
        self.bins.iter().filter(move |b| b.tag == tag)
    }

    /// Cost restricted to bins with a given tag, in bin-ticks.
    pub fn cost_ticks_for_tag(&self, tag: BinTag) -> u128 {
        self.bins_with_tag(tag)
            .map(|b| b.usage_len().0 as u128)
            .sum()
    }

    /// Exact ratio of this trace's cost to a baseline cost in bin-ticks.
    ///
    /// # Panics
    /// Panics if `baseline_ticks` is zero.
    pub fn cost_ratio_to(&self, baseline_ticks: u128) -> Ratio {
        Ratio::new(self.total_cost_ticks(), baseline_ticks)
    }

    /// Validate internal consistency against the instance that produced the
    /// trace. Returns a list of human-readable violations (empty = valid).
    /// Checked invariants:
    ///
    /// 1. Every item is assigned to a bin that lists it.
    /// 2. Bin levels never exceed capacity at any event tick.
    /// 3. Bin usage periods exactly cover their items' activity
    ///    (`I_i = ∪_{r ∈ R_i} I(r)`).
    /// 4. The two independent cost computations agree.
    pub fn validate(&self, instance: &GInstance<Sz>) -> Vec<String> {
        let mut errs = Vec::new();
        if self.assignment.len() != instance.len() {
            errs.push(format!(
                "assignment covers {} items, instance has {}",
                self.assignment.len(),
                instance.len()
            ));
            return errs;
        }
        for (i, bin) in self.bins.iter().enumerate() {
            if bin.id.index() != i {
                errs.push(format!("bin at index {i} has id {}", bin.id));
            }
        }
        for it in instance.items() {
            let b = self.assignment[it.id.index()];
            match self.bins.get(b.index()) {
                None => errs.push(format!("item {} assigned to unknown bin {b}", it.id)),
                Some(rec) => {
                    if !rec.items.contains(&it.id) {
                        errs.push(format!("bin {b} does not list its item {}", it.id));
                    }
                }
            }
        }
        // Level check at every event tick, per bin.
        for bin in &self.bins {
            let iv = bin.usage_period();
            // Usage period must be the union of member intervals.
            let member_ivs: Vec<Interval> = bin
                .items
                .iter()
                .map(|&id| instance.item(id).interval())
                .collect();
            let union = crate::time::union_intervals(&member_ivs);
            if union.len() != 1 || union[0] != iv {
                errs.push(format!(
                    "bin {} usage {iv} does not equal the union of its items' intervals",
                    bin.id
                ));
            }
            let mut ticks: Vec<Tick> = member_ivs.iter().map(|i| i.start).collect();
            ticks.sort_unstable();
            ticks.dedup();
            for t in ticks {
                // Exact per-dimension level audit: u128 accumulators per
                // dimension, so the sum cannot overflow and feasibility is
                // checked as the intersection over dimensions.
                for d in 0..Sz::DIMS {
                    let level: u128 = bin
                        .items
                        .iter()
                        .map(|&id| instance.item(id))
                        .filter(|r| r.is_active_at(t))
                        .map(|r| r.size.component(d) as u128)
                        .sum();
                    if level > self.capacity.component(d) as u128 {
                        errs.push(format!(
                            "bin {} over capacity at {t} in dim {d}: level {level} > {}",
                            bin.id,
                            self.capacity.component(d)
                        ));
                    }
                }
            }
        }
        let a = self.total_cost_ticks();
        let b = self.cost_from_step_function();
        if a != b {
            errs.push(format!(
                "cost mismatch: usage periods give {a}, step function gives {b}"
            ));
        }
        errs
    }

    /// Cheap O(n + B) conservation check for hot paths. A strict subset of
    /// [`validate`](Self::validate): it drops the quadratic per-tick level
    /// audit (the engine already asserts fit on every placement) and the
    /// interval-union reconstruction, keeping the structural invariants
    /// that catch routing or fan-in corruption in cluster runs:
    ///
    /// 1. The assignment covers exactly the instance's items.
    /// 2. Bin ids are dense and indexed (`bins[i].id == i`).
    /// 3. Items and bin member lists agree in both directions — every item
    ///    is listed exactly once, by the bin it is assigned to.
    /// 4. Each bin's usage period spans exactly its members' activity
    ///    (earliest arrival to latest departure).
    /// 5. The two independent cost computations agree.
    pub fn check_conservation(&self, instance: &GInstance<Sz>) -> Vec<String> {
        let mut errs = Vec::new();
        if self.assignment.len() != instance.len() {
            errs.push(format!(
                "assignment covers {} items, instance has {}",
                self.assignment.len(),
                instance.len()
            ));
            return errs;
        }
        let mut listed = vec![false; instance.len()];
        for (i, bin) in self.bins.iter().enumerate() {
            if bin.id.index() != i {
                errs.push(format!("bin at index {i} has id {}", bin.id));
                continue;
            }
            if bin.items.is_empty() {
                errs.push(format!("bin {} has no items", bin.id));
                continue;
            }
            let mut first_arrival = Tick(u64::MAX);
            let mut last_departure = Tick(0);
            for &id in &bin.items {
                match listed.get_mut(id.index()) {
                    None => {
                        errs.push(format!("bin {} lists unknown item {id}", bin.id));
                        continue;
                    }
                    Some(seen @ false) => *seen = true,
                    Some(_) => {
                        errs.push(format!("item {id} listed more than once"));
                        continue;
                    }
                }
                if self.assignment[id.index()] != bin.id {
                    errs.push(format!(
                        "item {id} listed by bin {} but assigned to {}",
                        bin.id,
                        self.assignment[id.index()]
                    ));
                }
                let iv = instance.item(id).interval();
                first_arrival = first_arrival.min(iv.start);
                last_departure = last_departure.max(iv.end);
            }
            if bin.opened_at != first_arrival || bin.closed_at != last_departure {
                errs.push(format!(
                    "bin {} usage {} does not span its items' activity [{first_arrival}, {last_departure})",
                    bin.id,
                    bin.usage_period()
                ));
            }
        }
        if let Some(i) = listed.iter().position(|&seen| !seen) {
            errs.push(format!(
                "item {} is assigned but listed by no bin",
                ItemId(i as u32)
            ));
        }
        let a = self.total_cost_ticks();
        let b = self.cost_from_step_function();
        if a != b {
            errs.push(format!(
                "cost mismatch: usage periods give {a}, step function gives {b}"
            ));
        }
        errs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_trace() -> PackingTrace {
        PackingTrace {
            algorithm: "TEST".into(),
            capacity: Size(10),
            bins: vec![
                BinRecord {
                    id: BinId(0),
                    tag: BinTag::DEFAULT,
                    opened_at: Tick(0),
                    closed_at: Tick(10),
                    items: vec![ItemId(0)],
                },
                BinRecord {
                    id: BinId(1),
                    tag: BinTag(1),
                    opened_at: Tick(2),
                    closed_at: Tick(6),
                    items: vec![ItemId(1)],
                },
            ],
            assignment: vec![BinId(0), BinId(1)],
            open_bins_steps: vec![(Tick(0), 1), (Tick(2), 2), (Tick(6), 1), (Tick(10), 0)],
        }
    }

    #[test]
    fn both_cost_computations_agree() {
        let t = tiny_trace();
        assert_eq!(t.total_cost_ticks(), 14);
        assert_eq!(t.cost_from_step_function(), 14);
        assert_eq!(t.max_open_bins(), 2);
    }

    #[test]
    fn open_bins_at_queries_step_function() {
        let t = tiny_trace();
        assert_eq!(t.open_bins_at(Tick(0)), 1);
        assert_eq!(t.open_bins_at(Tick(1)), 1);
        assert_eq!(t.open_bins_at(Tick(2)), 2);
        assert_eq!(t.open_bins_at(Tick(5)), 2);
        assert_eq!(t.open_bins_at(Tick(6)), 1);
        assert_eq!(t.open_bins_at(Tick(10)), 0);
        assert_eq!(t.open_bins_at(Tick(999)), 0);
    }

    #[test]
    fn tag_filtered_cost() {
        let t = tiny_trace();
        assert_eq!(t.cost_ticks_for_tag(BinTag::DEFAULT), 10);
        assert_eq!(t.cost_ticks_for_tag(BinTag(1)), 4);
    }

    #[test]
    fn validate_detects_corruptions() {
        use crate::algorithms::FirstFit;
        use crate::engine::simulate;
        use crate::instance::InstanceBuilder;

        let mut b = InstanceBuilder::new(10);
        b.add(0, 10, 6);
        b.add(0, 5, 4);
        b.add(6, 12, 6);
        let inst = b.build().unwrap();
        let good = simulate(&inst, &mut FirstFit::new());
        assert!(good.validate(&inst).is_empty());

        // Corrupt the assignment: point an item at the wrong bin.
        let mut bad = good.clone();
        bad.assignment[2] = BinId(0);
        assert!(bad
            .validate(&inst)
            .iter()
            .any(|e| e.contains("does not list")));

        // Corrupt a usage period: extend a bin past its items.
        let mut bad = good.clone();
        bad.bins[0].closed_at = Tick(999);
        assert!(bad
            .validate(&inst)
            .iter()
            .any(|e| e.contains("union of its items")));

        // Corrupt the step function: break the cost cross-check.
        let mut bad = good.clone();
        if let Some(last) = bad.open_bins_steps.last_mut() {
            last.0 = Tick(last.0.raw() + 50);
        }
        assert!(bad
            .validate(&inst)
            .iter()
            .any(|e| e.contains("cost mismatch")));

        // Truncated assignment vector.
        let mut bad = good.clone();
        bad.assignment.pop();
        assert!(!bad.validate(&inst).is_empty());
    }

    #[test]
    fn validate_detects_overfull_bin() {
        use crate::algorithms::FirstFit;
        use crate::engine::simulate;
        use crate::instance::InstanceBuilder;

        // Build a valid 2-bin trace, then force both items into one bin.
        let mut b = InstanceBuilder::new(10);
        b.add(0, 10, 6);
        b.add(0, 10, 6);
        let inst = b.build().unwrap();
        let good = simulate(&inst, &mut FirstFit::new());
        assert_eq!(good.bins_used(), 2);
        let mut bad = good.clone();
        let moved = bad.bins[1].items[0];
        bad.bins[0].items.push(moved);
        bad.assignment[moved.index()] = BinId(0);
        let errs = bad.validate(&inst);
        assert!(errs.iter().any(|e| e.contains("over capacity")), "{errs:?}");
    }

    #[test]
    fn cost_ratio_is_exact() {
        let t = tiny_trace();
        assert_eq!(t.cost_ratio_to(7), Ratio::from_int(2));
    }

    #[test]
    fn conservation_check_accepts_engine_traces_and_catches_corruption() {
        use crate::algorithms::FirstFit;
        use crate::engine::simulate;
        use crate::instance::InstanceBuilder;

        let mut b = InstanceBuilder::new(10);
        b.add(0, 10, 6);
        b.add(0, 5, 4);
        b.add(6, 12, 6);
        let inst = b.build().unwrap();
        let good = simulate(&inst, &mut FirstFit::new());
        assert!(good.check_conservation(&inst).is_empty());

        // Wrong-bin assignment: listed by one bin, assigned to another.
        let mut bad = good.clone();
        bad.assignment[2] = BinId(0);
        assert!(bad
            .check_conservation(&inst)
            .iter()
            .any(|e| e.contains("but assigned to")));

        // Duplicated membership.
        let mut bad = good.clone();
        let dup = bad.bins[0].items[0];
        bad.bins[0].items.push(dup);
        assert!(bad
            .check_conservation(&inst)
            .iter()
            .any(|e| e.contains("more than once")));

        // Dropped membership: assigned but listed nowhere.
        let mut bad = good.clone();
        let lost = bad.bins[0].items.pop().unwrap();
        assert!(bad.check_conservation(&inst).iter().any(|e| {
            e.contains(&format!("item {lost} is assigned but listed by no bin"))
                || e.contains("does not span")
        }));

        // Usage period drift.
        let mut bad = good.clone();
        bad.bins[0].closed_at = Tick(999);
        assert!(bad
            .check_conservation(&inst)
            .iter()
            .any(|e| e.contains("does not span")));

        // Step-function drift breaks the cost cross-check.
        let mut bad = good.clone();
        if let Some(last) = bad.open_bins_steps.last_mut() {
            last.0 = Tick(last.0.raw() + 50);
        }
        assert!(bad
            .check_conservation(&inst)
            .iter()
            .any(|e| e.contains("cost mismatch")));

        // Truncated assignment vector.
        let mut bad = good.clone();
        bad.assignment.pop();
        assert!(!bad.check_conservation(&inst).is_empty());
    }
}
