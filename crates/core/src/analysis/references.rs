//! Step 3 of the §4.3 machinery: reference points, reference bins and
//! reference periods (Figure 6), the Table 2 case classification, the
//! joint/single pairing (Figure 7) and auxiliary periods (Figure 8) —
//! checking features (f.4)–(f.5) and Lemmas 1–5 computationally.

use super::decompose::BinPeriods;
use super::subperiods::SubPeriod;
use crate::bin::BinId;
use crate::instance::Instance;
use crate::time::{Dur, Tick};
use crate::trace::PackingTrace;

/// The reference data of one sub-period `I_{i,j}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReferenceInfo {
    /// The sub-period this refers to (index into the analysis' sub-period
    /// list).
    pub subperiod: usize,
    /// `t_{i,j}`: arrival time of the earliest item newly packed into `b_i`
    /// during `I_{i,j}`.
    pub t: Tick,
    /// `b†(I_{i,j})`: the last-opened bin `b_k` with `k < i` and
    /// `t_{i,j} < I_k^+`.
    pub reference_bin: BinId,
}

/// The Table 2 classification of a pair of sub-periods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PairCase {
    /// Same bin, both `j ≥ 2`.
    I,
    /// Same bin, exactly one `j = 1`.
    II,
    /// Different bins, both `j ≥ 2`.
    III,
    /// Different bins, exactly one `j = 1`.
    IV,
    /// Different bins, both `j = 1`.
    V,
}

/// Classify a pair of distinct sub-periods per Table 2.
///
/// # Panics
/// Panics on the impossible cell (same bin, both `j = 1` — a bin has only
/// one first sub-period).
pub fn classify_pair(a: &SubPeriod, b: &SubPeriod) -> PairCase {
    let same_bin = a.bin == b.bin;
    match (same_bin, a.is_first(), b.is_first()) {
        (true, false, false) => PairCase::I,
        (true, true, false) | (true, false, true) => PairCase::II,
        (true, true, true) => {
            panic!("two first sub-periods of the same bin cannot both exist")
        }
        (false, false, false) => PairCase::III,
        (false, true, false) | (false, false, true) => PairCase::IV,
        (false, true, true) => PairCase::V,
    }
}

/// Pair counts per Table 2 case, split by whether the reference periods
/// intersect. Lemma 1 says the `intersecting` counter must stay zero for
/// Cases I–IV.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CaseCounts {
    /// Total pairs per case (I..V).
    pub total: [u64; 5],
    /// Pairs with intersecting reference periods per case (I..V).
    pub intersecting: [u64; 5],
}

impl CaseCounts {
    fn idx(case: PairCase) -> usize {
        match case {
            PairCase::I => 0,
            PairCase::II => 1,
            PairCase::III => 2,
            PairCase::IV => 3,
            PairCase::V => 4,
        }
    }

    /// Total number of pairs classified into `case`.
    pub fn total_for(&self, case: PairCase) -> u64 {
        self.total[Self::idx(case)]
    }

    /// Number of pairs in `case` whose reference periods intersect.
    pub fn intersecting_for(&self, case: PairCase) -> u64 {
        self.intersecting[Self::idx(case)]
    }
}

/// The result of the Figure 7 pairing process.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PairingOutcome {
    /// `|I_I^L|`: sub-periods whose reference period intersects another.
    pub intersecting_periods: usize,
    /// `|I_I^L(J)|`: number of joint-periods (pairs).
    pub joint_pairs: usize,
    /// `|I_I^L(S)|`: single periods.
    pub single_periods: usize,
    /// `|I_U^L|`: sub-periods with no intersecting reference period.
    pub non_intersecting: usize,
    /// The pairs, as indices into the sub-period list (front, back).
    pub pairs: Vec<(usize, usize)>,
    /// Indices of single periods.
    pub singles: Vec<usize>,
}

/// Everything produced by step 3.
#[derive(Debug, Clone, Default)]
pub struct ReferenceStructure {
    /// Reference info per sub-period, in the same order.
    pub refs: Vec<ReferenceInfo>,
    /// Table 2 pair statistics.
    pub case_counts: CaseCounts,
    /// Figure 7 pairing outcome.
    pub pairing: PairingOutcome,
}

/// Whether the reference periods of two sub-periods intersect: same
/// reference bin and `|t_1 − t_2| < 2∆` (§4.3's definition).
fn ref_periods_intersect(a: &ReferenceInfo, b: &ReferenceInfo, delta: Dur) -> bool {
    a.reference_bin == b.reference_bin && {
        let gap = if a.t >= b.t { a.t - b.t } else { b.t - a.t };
        gap < delta.scaled(2)
    }
}

#[allow(clippy::too_many_arguments)]
pub(super) fn build_reference_structure(
    instance: &Instance,
    trace: &PackingTrace,
    bins: &[BinPeriods],
    subperiods: &[SubPeriod],
    delta: Dur,
    max_len: Dur,
    violations: &mut Vec<String>,
) -> ReferenceStructure {
    // Arrival times of the items of each bin, sorted.
    let mut arrivals_per_bin: Vec<Vec<Tick>> = vec![Vec::new(); trace.bins.len()];
    for rec in &trace.bins {
        let v = &mut arrivals_per_bin[rec.id.index()];
        v.extend(rec.items.iter().map(|&id| instance.item(id).arrival));
        v.sort_unstable();
    }

    // Reference points and bins.
    let mut refs: Vec<ReferenceInfo> = Vec::with_capacity(subperiods.len());
    for (idx, sp) in subperiods.iter().enumerate() {
        let arrivals = &arrivals_per_bin[sp.bin.index()];
        // Earliest arrival into b_i within [start, end).
        let t = arrivals.iter().copied().find(|&a| sp.interval.contains(a));
        let Some(t) = t else {
            violations.push(format!(
                "sub-period {}#{} {} contains no new arrival into its bin",
                sp.bin, sp.j, sp.interval
            ));
            continue;
        };
        // Feature (f.4): t_{i,1} = I_{i,1}^-.
        if sp.is_first() && t != sp.interval.start {
            violations.push(format!(
                "(f.4) violated: t for {}#1 is {t}, expected {}",
                sp.bin, sp.interval.start
            ));
        }
        // Feature (f.5): t ≤ I_{i,j}^- + µ∆.
        if t > sp.interval.start + max_len {
            violations.push(format!(
                "(f.5) violated: t for {}#{} is {t} > start + µ∆ = {}",
                sp.bin,
                sp.j,
                sp.interval.start + max_len
            ));
        }
        // Reference bin: the last-opened bin b_k with k < i and t < I_k^+.
        let reference_bin = bins[..sp.bin.index()]
            .iter()
            .rev()
            .find(|bp| t < bp.usage.end)
            .map(|bp| bp.bin);
        let Some(reference_bin) = reference_bin else {
            violations.push(format!(
                "no reference bin exists for sub-period {}#{} (t = {t})",
                sp.bin, sp.j
            ));
            continue;
        };
        refs.push(ReferenceInfo {
            subperiod: idx,
            t,
            reference_bin,
        });
    }

    // Case classification over all pairs + Lemma 1 + Lemma 2.
    let mut case_counts = CaseCounts::default();
    let mut intersects_any: Vec<bool> = vec![false; refs.len()];
    for a in 0..refs.len() {
        for b in (a + 1)..refs.len() {
            let (ra, rb) = (&refs[a], &refs[b]);
            let (sa, sb) = (&subperiods[ra.subperiod], &subperiods[rb.subperiod]);
            let case = classify_pair(sa, sb);
            let ci = CaseCounts::idx(case);
            case_counts.total[ci] += 1;
            if ref_periods_intersect(ra, rb, delta) {
                case_counts.intersecting[ci] += 1;
                intersects_any[a] = true;
                intersects_any[b] = true;
                if case != PairCase::V {
                    violations.push(format!(
                        "Lemma 1 violated: reference periods of {}#{} and {}#{} \
                         intersect in Case {case:?}",
                        sa.bin, sa.j, sb.bin, sb.j
                    ));
                } else {
                    // Lemma 2: the earlier-bin period must be shorter than 2∆.
                    let (first, _second) = if sa.bin < sb.bin { (sa, sb) } else { (sb, sa) };
                    if first.interval.len() >= delta.scaled(2) {
                        violations.push(format!(
                            "Lemma 2 violated: front period {}#1 has length {} ≥ 2∆",
                            first.bin,
                            first.interval.len().raw()
                        ));
                    }
                }
            }
        }
    }

    // Lemma 3: at most one front-intersect and one back-intersect each.
    let mut front_count = vec![0usize; refs.len()];
    let mut back_count = vec![0usize; refs.len()];
    let mut back_of: Vec<Option<usize>> = vec![None; refs.len()];
    for a in 0..refs.len() {
        for b in (a + 1)..refs.len() {
            let (ra, rb) = (&refs[a], &refs[b]);
            let (sa, sb) = (&subperiods[ra.subperiod], &subperiods[rb.subperiod]);
            if classify_pair(sa, sb) == PairCase::V && ref_periods_intersect(ra, rb, delta) {
                // Order by bin index (Case V means different bins).
                let (front, back) = if sa.bin < sb.bin { (a, b) } else { (b, a) };
                back_count[front] += 1;
                front_count[back] += 1;
                if back_of[front].is_none() {
                    back_of[front] = Some(back);
                }
            }
        }
    }
    for (i, (&fc, &bc)) in front_count.iter().zip(&back_count).enumerate() {
        if fc > 1 || bc > 1 {
            let sp = &subperiods[refs[i].subperiod];
            violations.push(format!(
                "Lemma 3 violated: {}#{} has {fc} front- and {bc} back-intersect periods",
                sp.bin, sp.j
            ));
        }
    }

    // Figure 7 pairing: ascending bin order (refs are already in bin order
    // because subperiods are).
    let mut paired = vec![false; refs.len()];
    let mut pairs = Vec::new();
    for i in 0..refs.len() {
        if intersects_any[i] && !paired[i] {
            if let Some(j) = back_of[i] {
                if !paired[j] {
                    paired[i] = true;
                    paired[j] = true;
                    pairs.push((i, j));
                }
            }
        }
    }
    let singles: Vec<usize> = (0..refs.len())
        .filter(|&i| intersects_any[i] && !paired[i])
        .collect();

    // Lemma 4: the reference periods of all joint-periods and single periods
    // pairwise do not intersect. A joint-period's reference period is that
    // of its front member.
    let mut representatives: Vec<usize> = pairs.iter().map(|&(front, _)| front).collect();
    representatives.extend(&singles);
    for x in 0..representatives.len() {
        for y in (x + 1)..representatives.len() {
            let (ra, rb) = (&refs[representatives[x]], &refs[representatives[y]]);
            if ref_periods_intersect(ra, rb, delta) {
                let (sa, sb) = (&subperiods[ra.subperiod], &subperiods[rb.subperiod]);
                violations.push(format!(
                    "Lemma 4 violated: representative reference periods of {}#{} \
                     and {}#{} intersect",
                    sa.bin, sa.j, sb.bin, sb.j
                ));
            }
        }
    }

    // Lemma 5: auxiliary periods ([t−∆, t+∆) associated with the sub-period's
    // *own* bin) pairwise do not intersect: same bin ⇒ |t1−t2| ≥ 2∆.
    for a in 0..refs.len() {
        for b in (a + 1)..refs.len() {
            let (ra, rb) = (&refs[a], &refs[b]);
            let (sa, sb) = (&subperiods[ra.subperiod], &subperiods[rb.subperiod]);
            if sa.bin == sb.bin {
                let gap = if ra.t >= rb.t {
                    ra.t - rb.t
                } else {
                    rb.t - ra.t
                };
                if gap < delta.scaled(2) {
                    violations.push(format!(
                        "Lemma 5 violated: auxiliary periods of {}#{} and {}#{} intersect",
                        sa.bin, sa.j, sb.bin, sb.j
                    ));
                }
            }
        }
    }

    let non_intersecting = intersects_any.iter().filter(|&&x| !x).count();
    let intersecting_periods = refs.len() - non_intersecting;
    // The pairing must account for every intersecting period.
    if 2 * pairs.len() + singles.len() != intersecting_periods {
        violations.push(format!(
            "pairing accounting broken: 2·{} + {} ≠ {intersecting_periods}",
            pairs.len(),
            singles.len()
        ));
    }

    ReferenceStructure {
        case_counts,
        pairing: PairingOutcome {
            intersecting_periods,
            joint_pairs: pairs.len(),
            single_periods: singles.len(),
            non_intersecting,
            pairs,
            singles,
        },
        refs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Interval;

    fn sp(bin: u32, j: usize) -> SubPeriod {
        SubPeriod {
            bin: BinId(bin),
            j,
            interval: Interval::new(Tick(0), Tick(10)),
        }
    }

    #[test]
    fn table2_classification() {
        assert_eq!(classify_pair(&sp(1, 2), &sp(1, 3)), PairCase::I);
        assert_eq!(classify_pair(&sp(1, 1), &sp(1, 2)), PairCase::II);
        assert_eq!(classify_pair(&sp(1, 3), &sp(1, 1)), PairCase::II);
        assert_eq!(classify_pair(&sp(1, 2), &sp(2, 2)), PairCase::III);
        assert_eq!(classify_pair(&sp(1, 1), &sp(2, 2)), PairCase::IV);
        assert_eq!(classify_pair(&sp(1, 2), &sp(2, 1)), PairCase::IV);
        assert_eq!(classify_pair(&sp(1, 1), &sp(2, 1)), PairCase::V);
    }

    #[test]
    #[should_panic(expected = "cannot both exist")]
    fn impossible_cell_panics() {
        let _ = classify_pair(&sp(1, 1), &sp(1, 1));
    }

    #[test]
    fn intersection_requires_same_reference_bin() {
        let a = ReferenceInfo {
            subperiod: 0,
            t: Tick(100),
            reference_bin: BinId(0),
        };
        let b = ReferenceInfo {
            subperiod: 1,
            t: Tick(101),
            reference_bin: BinId(1),
        };
        assert!(!ref_periods_intersect(&a, &b, Dur(5)));
        let c = ReferenceInfo {
            reference_bin: BinId(0),
            ..b
        };
        assert!(ref_periods_intersect(&a, &c, Dur(5)));
        // Gap of exactly 2∆ does not intersect (half-open periods).
        let d = ReferenceInfo {
            subperiod: 2,
            t: Tick(110),
            reference_bin: BinId(0),
        };
        assert!(!ref_periods_intersect(&a, &d, Dur(5)));
    }
}
