//! Step 1 of the §4.3 machinery: usage periods `I_i`, the prefix-max close
//! times `E_i`, and the `I_i^L` / `I_i^R` decomposition (Figure 4), plus the
//! identities `len(I_i) = len(I_i^L) + len(I_i^R)` and
//! `span(R) = Σ len(I_i^R)` (equation (5)).

use crate::bin::BinId;
use crate::instance::Instance;
use crate::time::{Interval, Tick};
use crate::trace::PackingTrace;

/// The decomposed usage period of one bin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinPeriods {
    /// The bin these periods belong to.
    pub bin: BinId,
    /// `I_i = [I_i^-, I_i^+)`.
    pub usage: Interval,
    /// `E_i`: the latest closing time of bins opened before `b_i`; the start
    /// of the packing period for the first bin.
    pub e_i: Tick,
    /// `I_i^L = [I_i^-, min(I_i^+, E_i))`, empty when `E_i ≤ I_i^-`.
    pub left: Interval,
    /// `I_i^R = I_i − I_i^L`.
    pub right: Interval,
}

/// Decompose every bin of the trace. Also verifies, recording violations:
///
/// * bins are indexed in opening order (`I_1^- ≤ I_2^- ≤ …`);
/// * `span(R) = Σ len(I_i^R)` (equation (5));
/// * the `I_i^R` are pairwise disjoint.
pub fn decompose_bins(
    instance: &Instance,
    trace: &PackingTrace,
    violations: &mut Vec<String>,
) -> Vec<BinPeriods> {
    let start = instance.first_arrival().unwrap_or(Tick::ZERO);
    let mut out = Vec::with_capacity(trace.bins.len());
    let mut e_i = start; // E_1 = start of the packing period
    let mut prev_open = start;

    for rec in &trace.bins {
        let usage = rec.usage_period();
        if usage.start < prev_open {
            violations.push(format!(
                "bin {} opens at {} before its predecessor's opening {}",
                rec.id, usage.start, prev_open
            ));
        }
        prev_open = usage.start;

        let cut = usage.end.min(e_i.max(usage.start));
        let left = Interval::new(usage.start, cut);
        let right = Interval::new(cut, usage.end);
        out.push(BinPeriods {
            bin: rec.id,
            usage,
            e_i,
            left,
            right,
        });
        e_i = e_i.max(usage.end);
    }

    // Equation (5): span(R) = Σ len(I_i^R), and the I_i^R are disjoint.
    let span = instance.span();
    let sum_right: u128 = out.iter().map(|b| b.right.len().raw() as u128).sum();
    if sum_right != span.raw() as u128 {
        violations.push(format!(
            "equation (5) fails: span = {}, Σ len(I_i^R) = {sum_right}",
            span.raw()
        ));
    }
    // Disjointness: each non-empty I_i^R starts at or after E_i, which is at
    // least every earlier close — so in bin order the non-empty rights are
    // non-overlapping and sorted. Verify consecutive pairs.
    let mut last_end: Option<(BinId, Tick)> = None;
    for bp in &out {
        if bp.right.is_empty() {
            continue;
        }
        if let Some((prev_bin, end)) = last_end {
            if bp.right.start < end {
                violations.push(format!("I^R periods of {prev_bin} and {} overlap", bp.bin));
            }
        }
        last_end = Some((bp.bin, bp.right.end));
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::FirstFit;
    use crate::engine::simulate_validated;
    use crate::instance::InstanceBuilder;

    #[test]
    fn figure4_shape() {
        // Construct a trace where bin 1 opens while bin 0 is still open and
        // outlives it: I_1^L = [open_1, close_0), I_1^R = [close_0, close_1).
        let mut b = InstanceBuilder::new(10);
        b.add(0, 50, 8); // b0 alive [0, 50)
        b.add(10, 90, 8); // does not fit b0 -> b1 alive [10, 90)
        let inst = b.build().unwrap();
        let trace = simulate_validated(&inst, &mut FirstFit::new());
        let mut v = Vec::new();
        let bins = decompose_bins(&inst, &trace, &mut v);
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(bins[0].left.len().raw(), 0); // first bin: I^L = ∅
        assert_eq!(bins[0].right, Interval::new(Tick(0), Tick(50)));
        assert_eq!(bins[1].e_i, Tick(50));
        assert_eq!(bins[1].left, Interval::new(Tick(10), Tick(50)));
        assert_eq!(bins[1].right, Interval::new(Tick(50), Tick(90)));
    }

    #[test]
    fn bin_fully_inside_predecessor_has_empty_right() {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 100, 8); // b0
        b.add(10, 30, 8); // b1 nested inside b0's lifetime
        b.add(40, 90, 8); // b2 nested too
        let inst = b.build().unwrap();
        let trace = simulate_validated(&inst, &mut FirstFit::new());
        let mut v = Vec::new();
        let bins = decompose_bins(&inst, &trace, &mut v);
        assert!(v.is_empty(), "{v:?}");
        assert!(bins[1].right.is_empty());
        assert!(bins[2].right.is_empty());
        assert_eq!(bins[1].left, Interval::new(Tick(10), Tick(30)));
        // Span identity: only b0 contributes I^R.
        let total: u64 = bins.iter().map(|b| b.right.len().raw()).sum();
        assert_eq!(total, inst.span().raw());
    }

    #[test]
    fn gap_between_bins_keeps_identity() {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 10, 8);
        b.add(20, 35, 8); // opens after a span gap
        let inst = b.build().unwrap();
        let trace = simulate_validated(&inst, &mut FirstFit::new());
        let mut v = Vec::new();
        let bins = decompose_bins(&inst, &trace, &mut v);
        assert!(v.is_empty(), "{v:?}");
        assert!(bins[1].left.is_empty()); // E_2 = 10 < 20
        assert_eq!(bins[1].right.len().raw(), 15);
        let total: u64 = bins.iter().map(|b| b.right.len().raw()).sum();
        assert_eq!(total, 25);
        assert_eq!(inst.span().raw(), 25);
    }
}
