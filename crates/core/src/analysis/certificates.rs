//! Step 4 of the §4.3 machinery: the closing inequalities.
//!
//! * Equation (6): `FF_total = Σ len(I_i^L) + span(R)`;
//! * Inequality (13): `FF_total ≤ (|J| + |S| + |U|)·(µ+6)∆ + span(R)`;
//! * Inequality (11), small-items case: `u(R) ≥ count·(W − W/k)·∆`;
//! * Inequality (15), general case: `u(R) ≥ ½·count·W·∆`;
//! * Theorem 5's final form: `FF_total ≤ (2µ + 13)·max{u(R)/W, span(R)}`.
//!
//! Each is *checked* against the measured trace — a reproduction of the
//! proofs as falsifiable assertions rather than prose.

use super::decompose::BinPeriods;
use super::references::ReferenceStructure;
use crate::instance::Instance;
use crate::ratio::Ratio;
use crate::time::Dur;
use crate::trace::PackingTrace;

/// The evaluated certificates for one FF trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertificateReport {
    /// `FF_total(R)` in bin-ticks.
    pub ff_total: u128,
    /// `Σ len(I_i^L)` in ticks.
    pub left_total: u128,
    /// `span(R)` in ticks.
    pub span: u128,
    /// `|J| + |S| + |U|`.
    pub key_count: u64,
    /// `(µ+6)∆` in ticks.
    pub unit_mu6: u128,
    /// `u(R)` in size·ticks.
    pub demand: u128,
    /// Largest integer `k ≥ 2` with every size `< W/k`, if one exists
    /// (enables the Theorem 4 / inequality (11) check).
    pub small_items_k: Option<u64>,
    /// Equation (6) holds exactly.
    pub eq6_holds: bool,
    /// Inequality (13) holds.
    pub ineq13_holds: bool,
    /// Inequality (11) holds (None when `small_items_k` is None).
    pub ineq11_holds: Option<bool>,
    /// Inequality (15) holds.
    pub ineq15_holds: bool,
    /// Theorem 5's bound `(2µ+13)·max{u/W, span}`, exactly.
    pub theorem5_rhs: Ratio,
    /// `FF_total ≤ theorem5_rhs`.
    pub theorem5_holds: bool,
}

pub(super) fn check_certificates(
    instance: &Instance,
    trace: &PackingTrace,
    bins: &[BinPeriods],
    refs: &ReferenceStructure,
    delta: Dur,
    max_len: Dur,
    violations: &mut Vec<String>,
) -> CertificateReport {
    let ff_total = trace.total_cost_ticks();
    let left_total: u128 = bins.iter().map(|b| b.left.len().raw() as u128).sum();
    let span = instance.span().raw() as u128;
    let key_count = refs.pairing.joint_pairs as u64
        + refs.pairing.single_periods as u64
        + refs.pairing.non_intersecting as u64;
    let unit_mu6 = max_len.raw() as u128 + 6 * delta.raw() as u128;
    let demand = instance.total_demand();
    let w = instance.capacity().raw() as u128;

    // Equation (6).
    let eq6_holds = ff_total == left_total + span;
    if !eq6_holds {
        violations.push(format!(
            "equation (6) fails: FF_total = {ff_total}, Σ len(I^L) + span = {}",
            left_total + span
        ));
    }

    // Inequality (13).
    let ineq13_rhs = key_count as u128 * unit_mu6 + span;
    let ineq13_holds = ff_total <= ineq13_rhs;
    if !ineq13_holds {
        violations.push(format!(
            "inequality (13) fails: FF_total = {ff_total} > {ineq13_rhs}"
        ));
    }

    // Small-items k: the largest integer k ≥ 2 with max_size < W/k.
    let max_size = instance
        .items()
        .iter()
        .map(|r| r.size.raw())
        .max()
        .unwrap_or(0);
    let small_items_k = (instance.capacity().raw() - 1)
        .checked_div(max_size)
        .filter(|&k| k >= 2);

    // Inequality (11): u(R) ≥ count·(W − W/k)·∆ = count·W·(k−1)/k·∆.
    let ineq11_holds = small_items_k.map(|k| {
        let lhs = Ratio::from_int(demand);
        let rhs = Ratio::from_int(key_count as u128)
            * Ratio::new(w * (k as u128 - 1), k as u128)
            * Ratio::from_int(delta.raw() as u128);
        let holds = lhs >= rhs;
        if !holds {
            violations.push(format!(
                "inequality (11) fails at k={k}: u(R) = {demand} < {rhs}"
            ));
        }
        holds
    });

    // Inequality (15): 2·u(R) ≥ count·W·∆.
    let ineq15_holds = 2 * demand >= key_count as u128 * w * delta.raw() as u128;
    if !ineq15_holds {
        violations.push(format!(
            "inequality (15) fails: 2·u(R) = {} < count·W·∆ = {}",
            2 * demand,
            key_count as u128 * w * delta.raw() as u128
        ));
    }

    // Theorem 5: FF_total ≤ (2µ + 13)·max{u/W, span}.
    let mu = Ratio::new(max_len.raw() as u128, delta.raw() as u128);
    let opt_lb = Ratio::new(demand, w).max(Ratio::from_int(span));
    let theorem5_rhs = crate::bounds::ff_general_bound(mu) * opt_lb;
    let theorem5_holds = Ratio::from_int(ff_total) <= theorem5_rhs;
    if !theorem5_holds {
        violations.push(format!(
            "Theorem 5 bound fails: FF_total = {ff_total} > (2µ+13)·LB = {theorem5_rhs}"
        ));
    }

    CertificateReport {
        ff_total,
        left_total,
        span,
        key_count,
        unit_mu6,
        demand,
        small_items_k,
        eq6_holds,
        ineq13_holds,
        ineq11_holds,
        ineq15_holds,
        theorem5_rhs,
        theorem5_holds,
    }
}

#[cfg(test)]
mod tests {
    use crate::algorithms::FirstFit;
    use crate::analysis::analyze_first_fit;
    use crate::engine::simulate_validated;
    use crate::instance::InstanceBuilder;

    #[test]
    fn certificates_hold_on_hand_built_overlap() {
        let mut b = InstanceBuilder::new(10);
        // Force a second bin overlapping the first.
        b.add(0, 40, 8);
        b.add(5, 60, 8);
        b.add(30, 70, 8);
        let inst = b.build().unwrap();
        let trace = simulate_validated(&inst, &mut FirstFit::new());
        let a = analyze_first_fit(&inst, &trace);
        assert!(a.is_clean(), "{:?}", a.violations);
        let c = &a.certificates;
        assert!(c.eq6_holds);
        assert!(c.ineq13_holds);
        assert!(c.ineq15_holds);
        assert!(c.theorem5_holds);
        assert_eq!(c.ff_total, trace.total_cost_ticks());
    }

    #[test]
    fn small_items_k_detection() {
        let mut b = InstanceBuilder::new(100);
        b.add(0, 10, 9); // max size 9 < 100/11 -> k = 11
        b.add(0, 10, 5);
        let inst = b.build().unwrap();
        let trace = simulate_validated(&inst, &mut FirstFit::new());
        let a = analyze_first_fit(&inst, &trace);
        assert_eq!(a.certificates.small_items_k, Some(11));
        assert_eq!(a.certificates.ineq11_holds, Some(true));
    }

    #[test]
    fn large_items_disable_ineq11() {
        let mut b = InstanceBuilder::new(100);
        b.add(0, 10, 60); // max size 60: k = floor(99/60) = 1 < 2
        let inst = b.build().unwrap();
        let trace = simulate_validated(&inst, &mut FirstFit::new());
        let a = analyze_first_fit(&inst, &trace);
        assert_eq!(a.certificates.small_items_k, None);
        assert_eq!(a.certificates.ineq11_holds, None);
    }
}
