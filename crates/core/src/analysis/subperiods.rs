//! Step 2 of the §4.3 machinery: splitting each `I_i^L` into sub-periods
//! (Figure 5) and checking features (f.1)–(f.3).
//!
//! The rule, verbatim from the paper: if `len(I_i^L) > (µ+2)∆`, insert
//! splitter points at multiples of `(µ+2)∆` *before the end* of `I_i^L`;
//! if the resulting first sub-period is shorter than `2∆`, merge it with the
//! second. In exact tick arithmetic `(µ+2)∆ = µ∆ + 2∆ = max_len + 2·delta`.

use crate::bin::BinId;
use crate::time::{Dur, Interval};

/// One sub-period `I_{i,j}` of some `I_i^L`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubPeriod {
    /// The bin whose `I_i^L` this sub-period belongs to.
    pub bin: BinId,
    /// 1-based position `j` within the bin's `I_i^L` (temporal order).
    pub j: usize,
    /// The half-open time interval of the sub-period.
    pub interval: Interval,
}

impl SubPeriod {
    /// Whether this is a first sub-period (`j = 1`) — the distinction Table 2
    /// cases turn on.
    #[inline]
    pub fn is_first(&self) -> bool {
        self.j == 1
    }
}

/// Split one bin's `I_i^L` into sub-periods and verify features (f.1)–(f.3):
///
/// * (f.1) every sub-period is at most `(µ+4)∆` long;
/// * (f.2) every sub-period with `j ≥ 2` is exactly `(µ+2)∆` long;
/// * (f.3) if there are at least two sub-periods, the first is at least
///   `2∆` long.
pub fn split_left_period(
    bin: BinId,
    left: Interval,
    delta: Dur,
    max_len: Dur,
    violations: &mut Vec<String>,
) -> Vec<SubPeriod> {
    if left.is_empty() {
        return Vec::new();
    }
    let unit = max_len + delta.scaled(2); // (µ+2)∆
    let len = left.len();

    let mut intervals: Vec<Interval> = Vec::new();
    if len <= unit {
        intervals.push(left);
    } else {
        // Number of sub-periods before mergence: ceil(len / unit).
        let n = len.raw().div_ceil(unit.raw());
        // First (leftmost) piece takes the remainder; the rest are `unit`.
        let mut first_len = len.raw() - (n - 1) * unit.raw();
        debug_assert!(first_len >= 1 && first_len <= unit.raw());
        let mut pieces = n;
        // Mergence: if the first piece is shorter than 2∆, absorb the second.
        if first_len < 2 * delta.raw() {
            first_len += unit.raw();
            pieces -= 1;
        }
        let mut cursor = left.start;
        for p in 0..pieces {
            let piece_len = if p == 0 { first_len } else { unit.raw() };
            let end = cursor + Dur(piece_len);
            intervals.push(Interval::new(cursor, end));
            cursor = end;
        }
        debug_assert_eq!(cursor, left.end);
    }

    // Feature checks.
    for (idx, iv) in intervals.iter().enumerate() {
        let j = idx + 1;
        if iv.len() > max_len + delta.scaled(4) {
            violations.push(format!(
                "(f.1) violated: sub-period {bin}#{j} has length {} > (µ+4)∆ = {}",
                iv.len().raw(),
                (max_len + delta.scaled(4)).raw()
            ));
        }
        if j >= 2 && iv.len() != unit {
            violations.push(format!(
                "(f.2) violated: sub-period {bin}#{j} has length {} ≠ (µ+2)∆ = {}",
                iv.len().raw(),
                unit.raw()
            ));
        }
    }
    if intervals.len() >= 2 && intervals[0].len() < delta.scaled(2) {
        violations.push(format!(
            "(f.3) violated: first sub-period of {bin} has length {} < 2∆ = {}",
            intervals[0].len().raw(),
            delta.scaled(2).raw()
        ));
    }

    intervals
        .into_iter()
        .enumerate()
        .map(|(idx, interval)| SubPeriod {
            bin,
            j: idx + 1,
            interval,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Tick;

    fn run(len: u64, delta: u64, max_len: u64) -> (Vec<SubPeriod>, Vec<String>) {
        let mut v = Vec::new();
        let subs = split_left_period(
            BinId(0),
            Interval::new(Tick(1000), Tick(1000 + len)),
            Dur(delta),
            Dur(max_len),
            &mut v,
        );
        (subs, v)
    }

    #[test]
    fn short_period_is_not_split() {
        // (µ+2)∆ = 10 + 2·2 = 14; len 14 stays whole.
        let (subs, v) = run(14, 2, 10);
        assert!(v.is_empty());
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].j, 1);
        assert_eq!(subs[0].interval.len(), Dur(14));
    }

    #[test]
    fn long_period_splits_from_the_right() {
        // unit = 14; len = 33 -> ceil = 3 pieces: first 5, then 14, 14.
        // first (5) >= 2∆ (4): no mergence.
        let (subs, v) = run(33, 2, 10);
        assert!(v.is_empty());
        let lens: Vec<u64> = subs.iter().map(|s| s.interval.len().raw()).collect();
        assert_eq!(lens, vec![5, 14, 14]);
        // Contiguity and order.
        assert_eq!(subs[0].interval.start, Tick(1000));
        assert_eq!(subs[2].interval.end, Tick(1033));
        assert_eq!(subs[0].interval.end, subs[1].interval.start);
    }

    #[test]
    fn short_first_piece_is_merged() {
        // unit = 14, 2∆ = 4; len = 31 -> pieces 3, 14, 14; 3 < 4 -> merge
        // into 17, 14.
        let (subs, v) = run(31, 2, 10);
        assert!(v.is_empty());
        let lens: Vec<u64> = subs.iter().map(|s| s.interval.len().raw()).collect();
        assert_eq!(lens, vec![17, 14]);
        // (f.1): 17 <= (µ+4)∆ = 10 + 8 = 18. OK.
    }

    #[test]
    fn merged_first_piece_can_reach_f1_limit() {
        // len = unit·n + (2∆ − 1) triggers mergence with the largest first
        // piece: unit + 2∆ − 1 = (µ+4)∆ − 1 < (µ+4)∆.
        let (subs, v) = run(14 + 3, 2, 10); // pieces: 3, 14 -> merge -> 17
        assert!(v.is_empty());
        assert_eq!(subs[0].interval.len(), Dur(17));
        assert!(subs[0].interval.len() <= Dur(10 + 4 * 2));
    }

    #[test]
    fn exact_multiple_has_full_first_piece() {
        // len = 28 = 2 units -> pieces 14, 14; first = unit >= 2∆.
        let (subs, v) = run(28, 2, 10);
        assert!(v.is_empty());
        let lens: Vec<u64> = subs.iter().map(|s| s.interval.len().raw()).collect();
        assert_eq!(lens, vec![14, 14]);
    }

    #[test]
    fn empty_left_period_yields_nothing() {
        let mut v = Vec::new();
        let subs = split_left_period(
            BinId(3),
            Interval::empty_at(Tick(5)),
            Dur(1),
            Dur(10),
            &mut v,
        );
        assert!(subs.is_empty());
        assert!(v.is_empty());
    }

    #[test]
    fn js_are_one_based_and_sequential() {
        let (subs, _) = run(100, 2, 10);
        for (idx, s) in subs.iter().enumerate() {
            assert_eq!(s.j, idx + 1);
        }
        assert!(subs[0].is_first());
        assert!(!subs[1].is_first());
    }
}
