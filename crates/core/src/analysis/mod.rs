//! The §4.3 proof machinery of the paper, as executable analysis.
//!
//! The competitive-ratio proofs for First Fit (Theorems 4 and 5) construct a
//! sequence of combinatorial objects from an FF packing:
//!
//! 1. per-bin usage periods `I_i`, split into `I_i^L` / `I_i^R` around
//!    `E_i = max_{j<i} I_j^+` (Figure 4) — [`decompose_bins`];
//! 2. sub-periods of each `I_i^L` via the split-and-merge rule with features
//!    (f.1)–(f.3) (Figure 5) — [`split_left_period`];
//! 3. reference points `t_{i,j}`, reference bins `b†(I_{i,j})` and reference
//!    periods `[t−∆, t+∆]` with features (f.4)–(f.5) (Figure 6), the Table 2
//!    case classification, the joint/single pairing (Figure 7, Lemmas 1–4),
//!    and auxiliary periods (Figure 8, Lemma 5) — [`ReferenceStructure`];
//! 4. the closing inequalities (13) and (15) that yield the `2µ + 13` bound
//!    — [`CertificateReport`].
//!
//! Running [`analyze_first_fit`] on a real FF trace *checks every feature
//! and lemma computationally* and produces the counts Table 2 classifies —
//! this is how the reproduction treats the paper's Figures 4–8 and Table 2
//! as executable artifacts rather than prose.

mod certificates;
mod decompose;
mod mff;
mod references;
mod subperiods;

pub use certificates::CertificateReport;
pub use decompose::{decompose_bins, BinPeriods};
pub use mff::{analyze_mff, MffAnalysis};
pub use references::{
    classify_pair, CaseCounts, PairCase, PairingOutcome, ReferenceInfo, ReferenceStructure,
};
pub use subperiods::{split_left_period, SubPeriod};

use crate::instance::Instance;
use crate::time::Dur;
use crate::trace::PackingTrace;

/// The full analysis of one First Fit trace.
#[derive(Debug, Clone)]
pub struct FirstFitAnalysis {
    /// ∆: minimum item interval length.
    pub delta: Dur,
    /// µ∆: maximum item interval length.
    pub max_len: Dur,
    /// Per-bin `I_i`, `E_i`, `I_i^L`, `I_i^R`.
    pub bins: Vec<BinPeriods>,
    /// All sub-periods of all `I_i^L`, in (bin, temporal) order.
    pub subperiods: Vec<SubPeriod>,
    /// Reference structure: points, bins, case table, pairing, lemma checks.
    pub refs: ReferenceStructure,
    /// The inequality certificates of §4.3.
    pub certificates: CertificateReport,
    /// Human-readable violations of any paper claim (must be empty for a
    /// genuine FF trace on a valid instance).
    pub violations: Vec<String>,
}

impl FirstFitAnalysis {
    /// `|I_I^L(J)| + |I_I^L(S)| + |I_U^L|` — the count multiplying
    /// `(µ+6)∆` in inequality (13).
    pub fn key_count(&self) -> u64 {
        self.refs.pairing.joint_pairs as u64
            + self.refs.pairing.single_periods as u64
            + self.refs.pairing.non_intersecting as u64
    }

    /// Whether every feature, lemma and inequality checked out.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Run the complete §4.3 analysis on a First Fit trace.
///
/// ```
/// use dbp_core::prelude::*;
/// use dbp_core::analysis::analyze_first_fit;
/// let mut b = InstanceBuilder::new(10);
/// b.add(0, 40, 8);
/// b.add(5, 60, 8); // forces a second, overlapping bin
/// let inst = b.build().unwrap();
/// let trace = simulate_validated(&inst, &mut FirstFit::new());
/// let analysis = analyze_first_fit(&inst, &trace);
/// assert!(analysis.is_clean()); // every §4.3 claim verified
/// assert!(analysis.certificates.theorem5_holds);
/// ```
///
/// The trace must come from [`FirstFit`] (or an algorithm whose traces
/// satisfy FF's invariants); violations are *reported*, not panicked on, so
/// the same machinery can probe how non-FF algorithms break the analysis.
///
/// # Panics
/// Panics if the instance is empty (∆ and µ∆ are undefined).
///
/// [`FirstFit`]: crate::algorithms::FirstFit
pub fn analyze_first_fit(instance: &Instance, trace: &PackingTrace) -> FirstFitAnalysis {
    let delta = instance
        .min_interval_len()
        .expect("analysis requires a nonempty instance");
    let max_len = instance
        .max_interval_len()
        .expect("analysis requires a nonempty instance");

    let mut violations = Vec::new();

    let bins = decompose::decompose_bins(instance, trace, &mut violations);

    let mut subperiods = Vec::new();
    for bp in &bins {
        let subs = subperiods::split_left_period(bp.bin, bp.left, delta, max_len, &mut violations);
        subperiods.extend(subs);
    }

    let refs = references::build_reference_structure(
        instance,
        trace,
        &bins,
        &subperiods,
        delta,
        max_len,
        &mut violations,
    );

    let certificates = certificates::check_certificates(
        instance,
        trace,
        &bins,
        &refs,
        delta,
        max_len,
        &mut violations,
    );

    FirstFitAnalysis {
        delta,
        max_len,
        bins,
        subperiods,
        refs,
        certificates,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::FirstFit;
    use crate::engine::simulate_validated;
    use crate::instance::InstanceBuilder;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_instance(seed: u64, n: usize) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = InstanceBuilder::new(100);
        let mut t = 0u64;
        for _ in 0..n {
            t += rng.random_range(0..8);
            let len = rng.random_range(20..=60);
            let size = rng.random_range(5..=60);
            b.add(t, t + len, size);
        }
        b.build().unwrap()
    }

    #[test]
    fn analysis_is_clean_on_random_ff_traces() {
        for seed in 0..30 {
            let inst = random_instance(seed, 120);
            let trace = simulate_validated(&inst, &mut FirstFit::new());
            let analysis = analyze_first_fit(&inst, &trace);
            assert!(
                analysis.is_clean(),
                "seed {seed}: violations: {:#?}",
                analysis.violations
            );
        }
    }

    #[test]
    fn single_bin_trace_has_no_left_periods() {
        let mut b = InstanceBuilder::new(100);
        b.add(0, 50, 10);
        b.add(10, 60, 10);
        let inst = b.build().unwrap();
        let trace = simulate_validated(&inst, &mut FirstFit::new());
        let analysis = analyze_first_fit(&inst, &trace);
        assert!(analysis.is_clean());
        assert!(analysis.subperiods.is_empty());
        assert_eq!(analysis.key_count(), 0);
    }

    #[test]
    fn key_count_matches_pairing_arithmetic() {
        let inst = random_instance(99, 200);
        let trace = simulate_validated(&inst, &mut FirstFit::new());
        let a = analyze_first_fit(&inst, &trace);
        // Every intersecting period is in exactly one pair or single:
        // |I_I^L| = 2·|J| + |S|.
        assert_eq!(
            a.refs.pairing.intersecting_periods,
            2 * a.refs.pairing.joint_pairs + a.refs.pairing.single_periods
        );
        // And partitions: |I^L| = |I_I^L| + |I_U^L|.
        assert_eq!(
            a.subperiods.len(),
            a.refs.pairing.intersecting_periods + a.refs.pairing.non_intersecting
        );
    }
}
