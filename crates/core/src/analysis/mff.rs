//! The §4.4 argument for Modified First Fit, executable.
//!
//! The MFF bound is proved compositionally: split `R` into the large class
//! `R^L` (sizes ≥ W/k) and small class `R^S` (sizes < W/k); MFF packs each
//! with an independent First Fit, so
//!
//! * `MFF_total(R^L) ≤ k · u(R^L)/W` — inequality (3) from Theorem 3's
//!   proof (cost ≤ Σ len(I(r)) ≤ k·u/W for large items);
//! * `MFF_total(R^S) ≤ (µ+6)/(1−1/k) · u(R^S)/W + span(R^S)` — inequality
//!   (12) from Theorem 4's machinery;
//! * summing and bounding by `max{…}·u(R)/W + span(R)` gives the §4.4
//!   guarantees.
//!
//! [`analyze_mff`] recomputes exactly this decomposition from a real MFF
//! trace: it checks the class separation, re-derives each class's cost from
//! an independent FF run on the class sub-instance (they must match — MFF
//! *is* FF per class), runs the full §4.3 machinery on the small class, and
//! evaluates inequalities (3) and (12) plus the final §4.4 bound.

use crate::algorithms::{ItemClass, ModifiedFirstFit, LARGE_TAG, SMALL_TAG};
use crate::engine::simulate;
use crate::instance::Instance;
use crate::ratio::Ratio;
use crate::trace::PackingTrace;

use super::FirstFitAnalysis;

/// The evaluated §4.4 decomposition of one MFF trace.
#[derive(Debug, Clone)]
pub struct MffAnalysis {
    /// The threshold parameter k of the analyzed MFF.
    pub k: Ratio,
    /// Items classified large / small.
    pub n_large: usize,
    /// Small-class item count.
    pub n_small: usize,
    /// MFF's cost on large-class bins, in bin-ticks.
    pub large_cost: u128,
    /// MFF's cost on small-class bins, in bin-ticks.
    pub small_cost: u128,
    /// Inequality (3): `large_cost ≤ k · u(R^L)/W`.
    pub ineq3_holds: bool,
    /// Inequality (12): `small_cost ≤ (µ+6)k/(k−1) · u(R^S)/W + span(R^S)`
    /// (trivially true when the small class is empty).
    pub ineq12_holds: bool,
    /// The applicable §4.4 bound `max{k, (µ+6)/(1−1/k)}·u(R)/W + span(R)`.
    pub section44_rhs: Ratio,
    /// `MFF_total ≤ section44_rhs`.
    pub section44_holds: bool,
    /// Full §4.3 machinery on the small-class sub-instance (None when the
    /// small class is empty).
    pub small_class_analysis: Option<FirstFitAnalysis>,
    /// Violations found (class mixing, per-class cost mismatch vs FF on the
    /// sub-instance, failed inequalities). Empty = the §4.4 argument holds.
    pub violations: Vec<String>,
}

impl MffAnalysis {
    /// Whether the full §4.4 argument verified.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
            && self
                .small_class_analysis
                .as_ref()
                .is_none_or(|a| a.is_clean())
    }
}

/// Run the §4.4 decomposition on an MFF trace.
///
/// `mff` must be the (stateless, `Copy`) selector configuration that
/// produced `trace` on `instance`.
pub fn analyze_mff(
    instance: &Instance,
    trace: &PackingTrace,
    mff: ModifiedFirstFit,
) -> MffAnalysis {
    let mut violations = Vec::new();
    let w = instance.capacity();

    // Class separation: every bin's tag matches its items' class.
    for bin in &trace.bins {
        for &id in &bin.items {
            let class = mff.classify(instance.item(id).size, w);
            if class.tag() != bin.tag {
                violations.push(format!(
                    "item {id} (class {class:?}) sits in bin {} tagged {:?}",
                    bin.id, bin.tag
                ));
            }
        }
    }

    let large_cost = trace.cost_ticks_for_tag(LARGE_TAG);
    let small_cost = trace.cost_ticks_for_tag(SMALL_TAG);
    if large_cost + small_cost != trace.total_cost_ticks() {
        violations.push("per-class costs do not sum to the total".into());
    }

    // Per-class equivalence with independent FF runs.
    let (large_inst, _) = instance.restrict(|r| mff.classify(r.size, w) == ItemClass::Large);
    let (small_inst, _) = instance.restrict(|r| mff.classify(r.size, w) == ItemClass::Small);
    let ff_large = simulate(&large_inst, &mut crate::algorithms::FirstFit::new());
    let ff_small = simulate(&small_inst, &mut crate::algorithms::FirstFit::new());
    if ff_large.total_cost_ticks() != large_cost {
        violations.push(format!(
            "large class: MFF cost {large_cost} != FF-on-subinstance {}",
            ff_large.total_cost_ticks()
        ));
    }
    if ff_small.total_cost_ticks() != small_cost {
        violations.push(format!(
            "small class: MFF cost {small_cost} != FF-on-subinstance {}",
            ff_small.total_cost_ticks()
        ));
    }

    let k = mff.k();

    // Inequality (3): large_cost ≤ k · u(R^L)/W.
    let ineq3_rhs = k * Ratio::new(large_inst.total_demand(), w.raw() as u128);
    let ineq3_holds = Ratio::from_int(large_cost) <= ineq3_rhs;
    if !ineq3_holds {
        violations.push(format!(
            "inequality (3) fails: large cost {large_cost} > {ineq3_rhs}"
        ));
    }

    // Inequality (12) on the small class, using the small class's own µ.
    let (ineq12_holds, small_class_analysis) = if small_inst.is_empty() {
        (true, None)
    } else {
        let mu_s = small_inst.mu().expect("nonempty small class");
        let coeff = (mu_s + Ratio::from_int(6)) * k / (k - Ratio::ONE);
        let rhs = coeff * Ratio::new(small_inst.total_demand(), w.raw() as u128)
            + Ratio::from_int(small_inst.span().raw() as u128);
        let holds = Ratio::from_int(small_cost) <= rhs;
        if !holds {
            violations.push(format!(
                "inequality (12) fails: small cost {small_cost} > {rhs}"
            ));
        }
        let analysis = super::analyze_first_fit(&small_inst, &ff_small);
        (holds, Some(analysis))
    };

    // The §4.4 composite bound with the *instance's* µ (what the theorem
    // states), not the per-class µ.
    let section44_rhs = match instance.mu() {
        None => Ratio::ZERO,
        Some(mu) => {
            let small_term = (mu + Ratio::from_int(6)) * k / (k - Ratio::ONE);
            k.max(small_term) * Ratio::new(instance.total_demand(), w.raw() as u128)
                + Ratio::from_int(instance.span().raw() as u128)
        }
    };
    let section44_holds = Ratio::from_int(trace.total_cost_ticks()) <= section44_rhs;
    if !section44_holds && !instance.is_empty() {
        violations.push(format!(
            "§4.4 bound fails: MFF_total {} > {section44_rhs}",
            trace.total_cost_ticks()
        ));
    }

    MffAnalysis {
        k,
        n_large: large_inst.len(),
        n_small: small_inst.len(),
        large_cost,
        small_cost,
        ineq3_holds,
        ineq12_holds,
        section44_rhs,
        section44_holds,
        small_class_analysis,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate_validated;
    use crate::instance::InstanceBuilder;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn mixed_instance(seed: u64, n: usize) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = InstanceBuilder::new(100);
        let mut t = 0u64;
        for _ in 0..n {
            t += rng.random_range(0..6);
            let len = rng.random_range(30..120);
            // Mix of clearly-small and clearly-large sizes for k = 8.
            let size = if rng.random_range(0..3u8) == 0 {
                rng.random_range(20..=60) // large (>= 100/8)
            } else {
                rng.random_range(1..=12) // small (< 12.5)
            };
            b.add(t, t + len, size);
        }
        b.build().unwrap()
    }

    #[test]
    fn section44_argument_verifies_on_random_traces() {
        for seed in 0..20 {
            let inst = mixed_instance(seed, 150);
            let mff = ModifiedFirstFit::new(8);
            let trace = simulate_validated(&inst, &mut mff.clone());
            let a = analyze_mff(&inst, &trace, mff);
            assert!(a.is_clean(), "seed {seed}: {:#?}", a.violations);
            assert!(a.ineq3_holds && a.ineq12_holds && a.section44_holds);
            assert_eq!(a.n_large + a.n_small, inst.len());
            assert_eq!(a.large_cost + a.small_cost, trace.total_cost_ticks());
        }
    }

    #[test]
    fn all_small_instance_has_empty_large_side() {
        let mut b = InstanceBuilder::new(100);
        for i in 0..30 {
            b.add(i, i + 50, 5);
        }
        let inst = b.build().unwrap();
        let mff = ModifiedFirstFit::new(8);
        let trace = simulate_validated(&inst, &mut mff.clone());
        let a = analyze_mff(&inst, &trace, mff);
        assert!(a.is_clean());
        assert_eq!(a.n_large, 0);
        assert_eq!(a.large_cost, 0);
        assert!(a.small_class_analysis.is_some());
    }

    #[test]
    fn all_large_instance_skips_small_machinery() {
        let mut b = InstanceBuilder::new(100);
        for i in 0..30 {
            b.add(i, i + 50, 40);
        }
        let inst = b.build().unwrap();
        let mff = ModifiedFirstFit::new(8);
        let trace = simulate_validated(&inst, &mut mff.clone());
        let a = analyze_mff(&inst, &trace, mff);
        assert!(a.is_clean());
        assert_eq!(a.n_small, 0);
        assert!(a.small_class_analysis.is_none());
        assert!(a.ineq12_holds);
    }

    #[test]
    fn known_mu_variant_also_verifies() {
        let inst = mixed_instance(5, 120);
        let mu = inst.mu().unwrap().ceil() as u64;
        let mff = ModifiedFirstFit::for_known_mu(mu);
        let trace = simulate_validated(&inst, &mut mff.clone());
        let a = analyze_mff(&inst, &trace, mff);
        assert!(a.is_clean(), "{:#?}", a.violations);
    }
}
