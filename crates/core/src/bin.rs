//! Bins (rented game servers) as seen during a simulation.

use crate::demand::Demand;
use crate::item::Size;
use crate::time::Tick;
use core::fmt;
use serde::{Deserialize, Serialize};

/// Identifier of a bin, assigned in *opening order* (bin 0 is the first bin
/// ever opened). This is the ordering First Fit is defined over: FF picks
/// the open bin with the smallest id that fits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct BinId(pub u32);

impl BinId {
    #[inline]
    /// The id as a zero-based index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BinId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// A class tag attached to a bin by the algorithm that opened it. Modified
/// First Fit tags bins with the item class (large/small) they serve so the
/// two FF packings never mix; the constrained extension tags bins with a
/// region. Plain algorithms use [`BinTag::DEFAULT`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct BinTag(pub u32);

impl BinTag {
    /// The tag used by algorithms that do not distinguish bins.
    pub const DEFAULT: BinTag = BinTag(0);
}

/// The read-only view of one open bin given to a [`BinSelector`], generic
/// over the demand type (scalar [`Size`] via the [`OpenBinView`] alias).
///
/// [`BinSelector`]: crate::packer::BinSelector
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GOpenBinView<Sz> {
    /// Bin id (opening order).
    pub id: BinId,
    /// When the bin was opened.
    pub opened_at: Tick,
    /// Current level: componentwise total size of the items in the bin.
    pub level: Sz,
    /// Bin capacity `W` (same for every bin).
    pub capacity: Sz,
    /// Number of items currently in the bin.
    pub n_items: usize,
    /// Tag assigned by the algorithm when the bin was opened.
    pub tag: BinTag,
}

/// The scalar open-bin view of the source paper.
pub type OpenBinView = GOpenBinView<Size>;

impl<Sz: Demand> GOpenBinView<Sz> {
    /// Residual capacity `W − level`, componentwise.
    #[inline]
    pub fn residual(&self) -> Sz {
        self.capacity.sub(self.level)
    }

    /// Whether an item of size `s` fits: feasibility is the intersection
    /// of per-dimension feasibility (`level_d + s_d ≤ W_d` for every `d`).
    #[inline]
    pub fn fits(&self, s: Sz) -> bool {
        self.level
            .checked_add(s)
            .is_some_and(|lv| lv.fits_within(self.capacity))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_fit_checks() {
        let v = OpenBinView {
            id: BinId(0),
            opened_at: Tick(0),
            level: Size(7),
            capacity: Size(10),
            n_items: 2,
            tag: BinTag::DEFAULT,
        };
        assert_eq!(v.residual(), Size(3));
        assert!(v.fits(Size(3)));
        assert!(!v.fits(Size(4)));
    }

    #[test]
    fn fits_handles_level_overflow() {
        let v = OpenBinView {
            id: BinId(0),
            opened_at: Tick(0),
            level: Size(u64::MAX - 1),
            capacity: Size(u64::MAX),
            n_items: 1,
            tag: BinTag::DEFAULT,
        };
        assert!(v.fits(Size(1)));
        assert!(!v.fits(Size(3)));
    }
}
