//! Bins (rented game servers) as seen during a simulation.

use crate::item::Size;
use crate::time::Tick;
use core::fmt;
use serde::{Deserialize, Serialize};

/// Identifier of a bin, assigned in *opening order* (bin 0 is the first bin
/// ever opened). This is the ordering First Fit is defined over: FF picks
/// the open bin with the smallest id that fits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct BinId(pub u32);

impl BinId {
    #[inline]
    /// The id as a zero-based index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BinId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// A class tag attached to a bin by the algorithm that opened it. Modified
/// First Fit tags bins with the item class (large/small) they serve so the
/// two FF packings never mix; the constrained extension tags bins with a
/// region. Plain algorithms use [`BinTag::DEFAULT`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct BinTag(pub u32);

impl BinTag {
    /// The tag used by algorithms that do not distinguish bins.
    pub const DEFAULT: BinTag = BinTag(0);
}

/// The read-only view of one open bin given to a [`BinSelector`].
///
/// [`BinSelector`]: crate::packer::BinSelector
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenBinView {
    /// Bin id (opening order).
    pub id: BinId,
    /// When the bin was opened.
    pub opened_at: Tick,
    /// Current level: total size of the items in the bin.
    pub level: Size,
    /// Bin capacity `W` (same for every bin).
    pub capacity: Size,
    /// Number of items currently in the bin.
    pub n_items: usize,
    /// Tag assigned by the algorithm when the bin was opened.
    pub tag: BinTag,
}

impl OpenBinView {
    /// Residual capacity `W − level`.
    #[inline]
    pub fn residual(&self) -> Size {
        self.capacity - self.level
    }

    /// Whether an item of size `s` fits.
    #[inline]
    pub fn fits(&self, s: Size) -> bool {
        self.level
            .checked_add(s)
            .is_some_and(|lv| lv <= self.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_fit_checks() {
        let v = OpenBinView {
            id: BinId(0),
            opened_at: Tick(0),
            level: Size(7),
            capacity: Size(10),
            n_items: 2,
            tag: BinTag::DEFAULT,
        };
        assert_eq!(v.residual(), Size(3));
        assert!(v.fits(Size(3)));
        assert!(!v.fits(Size(4)));
    }

    #[test]
    fn fits_handles_level_overflow() {
        let v = OpenBinView {
            id: BinId(0),
            opened_at: Tick(0),
            level: Size(u64::MAX - 1),
            capacity: Size(u64::MAX),
            n_items: 1,
            tag: BinTag::DEFAULT,
        };
        assert!(v.fits(Size(1)));
        assert!(!v.fits(Size(3)));
    }
}
