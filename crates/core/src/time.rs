//! Exact discrete time for the MinTotal DBP model.
//!
//! The paper works with continuous time, but every construction and bound in
//! it is rational. We therefore use integer *ticks* (nominally 1 tick = 1 ms)
//! so that all costs — which are integrals of piecewise-constant step
//! functions — are exact `u128` bin-tick counts and measured competitive
//! ratios can be compared against closed forms with `==`.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};
use serde::{Deserialize, Serialize};

/// An absolute point in time, in ticks since the start of the trace.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Tick(pub u64);

/// A non-negative span of time, in ticks.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Dur(pub u64);

impl Tick {
    /// The origin of the timeline.
    pub const ZERO: Tick = Tick(0);
    /// The largest representable time point.
    pub const MAX: Tick = Tick(u64::MAX);

    /// Raw tick count.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Duration from `earlier` to `self`.
    ///
    /// # Panics
    /// Panics if `earlier > self`.
    #[inline]
    pub fn since(self, earlier: Tick) -> Dur {
        assert!(
            earlier <= self,
            "Tick::since: earlier ({earlier}) is after self ({self})"
        );
        Dur(self.0 - earlier.0)
    }

    /// Saturating subtraction of a duration.
    #[inline]
    pub fn saturating_sub(self, d: Dur) -> Tick {
        Tick(self.0.saturating_sub(d.0))
    }

    /// Checked subtraction of a duration.
    #[inline]
    pub fn checked_sub(self, d: Dur) -> Option<Tick> {
        self.0.checked_sub(d.0).map(Tick)
    }

    #[inline]
    /// The earlier of two ticks.
    pub fn min(self, other: Tick) -> Tick {
        Tick(self.0.min(other.0))
    }

    #[inline]
    /// The later of two ticks.
    pub fn max(self, other: Tick) -> Tick {
        Tick(self.0.max(other.0))
    }
}

impl Dur {
    /// The zero duration.
    pub const ZERO: Dur = Dur(0);

    /// Raw tick count.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    #[inline]
    /// Whether the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiply by an integer factor.
    #[inline]
    pub fn scaled(self, factor: u64) -> Dur {
        Dur(self.0.checked_mul(factor).expect("Dur::scaled overflow"))
    }

    #[inline]
    /// The smaller of two durations.
    pub fn min(self, other: Dur) -> Dur {
        Dur(self.0.min(other.0))
    }

    #[inline]
    /// The larger of two durations.
    pub fn max(self, other: Dur) -> Dur {
        Dur(self.0.max(other.0))
    }
}

impl Add<Dur> for Tick {
    type Output = Tick;
    #[inline]
    fn add(self, rhs: Dur) -> Tick {
        Tick(self.0.checked_add(rhs.0).expect("Tick + Dur overflow"))
    }
}

impl AddAssign<Dur> for Tick {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}

impl Sub<Dur> for Tick {
    type Output = Tick;
    #[inline]
    fn sub(self, rhs: Dur) -> Tick {
        Tick(self.0.checked_sub(rhs.0).expect("Tick - Dur underflow"))
    }
}

impl Sub<Tick> for Tick {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: Tick) -> Dur {
        self.since(rhs)
    }
}

impl Add<Dur> for Dur {
    type Output = Dur;
    #[inline]
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0.checked_add(rhs.0).expect("Dur + Dur overflow"))
    }
}

impl AddAssign<Dur> for Dur {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}

impl Sub<Dur> for Dur {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0.checked_sub(rhs.0).expect("Dur - Dur underflow"))
    }
}

impl fmt::Display for Tick {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}t", self.0)
    }
}

/// A half-open time interval `[start, end)`.
///
/// Used throughout the §4.3 proof machinery, where all sub-period and
/// reference-period reasoning is about interval overlap; half-open intervals
/// make the "departures before arrivals at equal ticks" engine convention
/// line up with the paper's instantaneous semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Interval {
    /// Inclusive start.
    pub start: Tick,
    /// Exclusive end.
    pub end: Tick,
}

impl Interval {
    /// Create `[start, end)`.
    ///
    /// # Panics
    /// Panics if `end < start`.
    #[inline]
    pub fn new(start: Tick, end: Tick) -> Interval {
        assert!(
            start <= end,
            "Interval::new: end {end} before start {start}"
        );
        Interval { start, end }
    }

    /// An empty interval at `at`.
    #[inline]
    pub fn empty_at(at: Tick) -> Interval {
        Interval { start: at, end: at }
    }

    #[inline]
    /// Length `end - start`.
    pub fn len(&self) -> Dur {
        self.end - self.start
    }

    #[inline]
    /// Whether the interval has zero length.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether `t` lies in `[start, end)`.
    #[inline]
    pub fn contains(&self, t: Tick) -> bool {
        self.start <= t && t < self.end
    }

    /// Whether the two half-open intervals overlap (share positive measure).
    #[inline]
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// Intersection of two intervals, or `None` if disjoint (an empty
    /// touching point is reported as `None`).
    #[inline]
    pub fn intersection(&self, other: &Interval) -> Option<Interval> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        if start < end {
            Some(Interval { start, end })
        } else {
            None
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start.0, self.end.0)
    }
}

/// Total length of the union of a set of intervals (the `span` primitive of
/// the paper, Figure 1). The input need not be sorted or disjoint.
pub fn union_length(intervals: &[Interval]) -> Dur {
    let mut sorted: Vec<Interval> = intervals
        .iter()
        .copied()
        .filter(|i| !i.is_empty())
        .collect();
    sorted.sort_by_key(|i| (i.start, i.end));
    let mut total = Dur::ZERO;
    let mut cur: Option<Interval> = None;
    for iv in sorted {
        match cur {
            None => cur = Some(iv),
            Some(ref mut c) => {
                if iv.start <= c.end {
                    c.end = c.end.max(iv.end);
                } else {
                    total += c.len();
                    cur = Some(iv);
                }
            }
        }
    }
    if let Some(c) = cur {
        total += c.len();
    }
    total
}

/// Merge a set of intervals into a sorted list of maximal disjoint intervals.
pub fn union_intervals(intervals: &[Interval]) -> Vec<Interval> {
    let mut sorted: Vec<Interval> = intervals
        .iter()
        .copied()
        .filter(|i| !i.is_empty())
        .collect();
    sorted.sort_by_key(|i| (i.start, i.end));
    let mut out: Vec<Interval> = Vec::new();
    for iv in sorted {
        match out.last_mut() {
            Some(last) if iv.start <= last.end => last.end = last.end.max(iv.end),
            _ => out.push(iv),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_arithmetic_roundtrips() {
        let t = Tick(10) + Dur(5);
        assert_eq!(t, Tick(15));
        assert_eq!(t - Tick(10), Dur(5));
        assert_eq!(t - Dur(15), Tick::ZERO);
        assert_eq!(Tick(3).saturating_sub(Dur(10)), Tick::ZERO);
        assert_eq!(Tick(3).checked_sub(Dur(10)), None);
        assert_eq!(Tick(30).checked_sub(Dur(10)), Some(Tick(20)));
    }

    #[test]
    #[should_panic(expected = "earlier")]
    fn since_panics_on_negative() {
        let _ = Tick(1).since(Tick(2));
    }

    #[test]
    fn interval_contains_is_half_open() {
        let iv = Interval::new(Tick(2), Tick(5));
        assert!(!iv.contains(Tick(1)));
        assert!(iv.contains(Tick(2)));
        assert!(iv.contains(Tick(4)));
        assert!(!iv.contains(Tick(5)));
        assert_eq!(iv.len(), Dur(3));
    }

    #[test]
    fn interval_overlap_excludes_touching() {
        let a = Interval::new(Tick(0), Tick(5));
        let b = Interval::new(Tick(5), Tick(9));
        let c = Interval::new(Tick(4), Tick(6));
        assert!(!a.overlaps(&b));
        assert!(a.overlaps(&c));
        assert!(c.overlaps(&b));
        assert_eq!(a.intersection(&b), None);
        assert_eq!(a.intersection(&c), Some(Interval::new(Tick(4), Tick(5))));
    }

    #[test]
    fn union_length_merges_overlaps_and_gaps() {
        // Figure 1 shape: overlapping prefix, then a gap, then a tail.
        let ivs = [
            Interval::new(Tick(0), Tick(4)),
            Interval::new(Tick(2), Tick(6)),
            Interval::new(Tick(9), Tick(12)),
        ];
        assert_eq!(union_length(&ivs), Dur(9));
        let merged = union_intervals(&ivs);
        assert_eq!(
            merged,
            vec![
                Interval::new(Tick(0), Tick(6)),
                Interval::new(Tick(9), Tick(12))
            ]
        );
    }

    #[test]
    fn union_length_ignores_empty_intervals() {
        let ivs = [Interval::empty_at(Tick(3)), Interval::new(Tick(1), Tick(2))];
        assert_eq!(union_length(&ivs), Dur(1));
    }

    #[test]
    fn union_of_nested_intervals() {
        let ivs = [
            Interval::new(Tick(0), Tick(10)),
            Interval::new(Tick(2), Tick(3)),
            Interval::new(Tick(4), Tick(9)),
        ];
        assert_eq!(union_length(&ivs), Dur(10));
        assert_eq!(union_intervals(&ivs).len(), 1);
    }
}
