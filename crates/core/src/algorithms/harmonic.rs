//! Harmonic-classified First Fit (HFF) — an extension generalizing MFF.
//!
//! Modified First Fit (§4.4) splits items into two classes at `W/k`. The
//! classical Harmonic scheme of online bin packing refines this: class `j`
//! (for `j = 1..M−1`) holds items with size in `(W/(j+1), W/j]`, and class
//! `M` holds everything of size ≤ `W/M`. Here each class is packed by an
//! independent First Fit (rather than Next Fit, which would be hopeless in
//! the dynamic setting), with bins tagged by class.
//!
//! HFF is *not* Any Fit globally (cross-class placements are refused), but
//! within each class the Theorem 3/4 reasoning applies: class `j < M` items
//! have size > `W/(j+1)`, so Theorem 3 gives a `(j+1)`-ish factor on their
//! demand; class `M` items are all < `W/(M−1)`-small. The `mff_k_ablation`
//! experiment compares HFF empirically against MFF and FF.

use crate::bin::{BinTag, OpenBinView};
use crate::item::{ArrivingItem, Size};
use crate::packer::{BinSelector, Decision};

/// Harmonic-classified First Fit with `M ≥ 2` classes.
#[derive(Debug, Clone, Copy)]
pub struct HarmonicFit {
    classes: u32,
}

impl HarmonicFit {
    /// Create with `M` classes.
    ///
    /// # Panics
    /// Panics unless `M ≥ 2`.
    pub fn new(classes: u32) -> HarmonicFit {
        assert!(classes >= 2, "HarmonicFit needs at least 2 classes");
        HarmonicFit { classes }
    }

    /// The Harmonic class of a size: the unique `j` with
    /// `W/(j+1) < s ≤ W/j`, clamped to `M` for tiny items.
    pub fn class_of(&self, size: Size, capacity: Size) -> u32 {
        debug_assert!(size.raw() >= 1 && size <= capacity);
        // j = floor(W / s) is the largest j with s ≤ W/j.
        let j = (capacity.raw() / size.raw()).max(1);
        (j.min(self.classes as u64)) as u32
    }

    /// Number of classes `M`.
    pub fn classes(&self) -> u32 {
        self.classes
    }
}

impl BinSelector for HarmonicFit {
    fn name(&self) -> &'static str {
        "HFF"
    }

    fn select(&mut self, bins: &[OpenBinView], item: &ArrivingItem, capacity: Size) -> Decision {
        let tag = BinTag(self.class_of(item.size, capacity));
        for b in bins {
            if b.tag == tag && b.fits(item.size) {
                return Decision::Use(b.id);
            }
        }
        Decision::Open { tag }
    }

    fn is_any_fit(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate_validated;
    use crate::instance::InstanceBuilder;

    #[test]
    fn classes_partition_the_size_range() {
        let h = HarmonicFit::new(4);
        let w = Size(100);
        // class 1: (50, 100]; class 2: (33, 50]; class 3: (25, 33];
        // class 4: everything <= 25.
        assert_eq!(h.class_of(Size(100), w), 1);
        assert_eq!(h.class_of(Size(51), w), 1);
        assert_eq!(h.class_of(Size(50), w), 2);
        assert_eq!(h.class_of(Size(34), w), 2);
        assert_eq!(h.class_of(Size(33), w), 3);
        assert_eq!(h.class_of(Size(26), w), 3);
        assert_eq!(h.class_of(Size(25), w), 4);
        assert_eq!(h.class_of(Size(1), w), 4);
    }

    #[test]
    fn class_boundaries_are_harmonic() {
        // For every size, W/(j+1) < s ≤ W/j must hold for the returned j
        // (unless clamped to M).
        let h = HarmonicFit::new(6);
        let w = 100u64;
        for s in 1..=w {
            let j = h.class_of(Size(s), Size(w)) as u64;
            if j < 6 {
                assert!(s <= w / j, "s={s} j={j}");
                assert!(s * (j + 1) > w, "s={s} j={j}");
            } else {
                assert!(s * 6 <= w + 5, "tiny class got s={s}");
            }
        }
    }

    #[test]
    fn bins_never_mix_classes() {
        let mut b = InstanceBuilder::new(100);
        let mut t = 0;
        for i in 0..80u64 {
            let size = 1 + (i * 13) % 60;
            b.add(t, t + 50 + i % 7, size);
            t += 3;
        }
        let inst = b.build().unwrap();
        let h = HarmonicFit::new(4);
        let trace = simulate_validated(&inst, &mut h.clone());
        for bin in &trace.bins {
            let classes: Vec<u32> = bin
                .items
                .iter()
                .map(|&id| h.class_of(inst.item(id).size, inst.capacity()))
                .collect();
            assert!(classes.windows(2).all(|w| w[0] == w[1]));
            assert_eq!(bin.tag.0, classes[0]);
        }
    }

    #[test]
    fn two_classes_at_half_matches_mff_k2_classing() {
        // HFF with M=2 splits at W/2, like MFF(k=2): class 1 = large.
        let h = HarmonicFit::new(2);
        let mff = crate::algorithms::ModifiedFirstFit::new(2);
        let w = Size(100);
        for s in 1..=100u64 {
            let hf_large = h.class_of(Size(s), w) == 1;
            let mff_large = mff.classify(Size(s), w) == crate::algorithms::ItemClass::Large;
            // MFF: large iff s >= 50; HFF class 1 iff s > 50. They agree
            // everywhere except exactly W/2.
            if s != 50 {
                assert_eq!(hf_large, mff_large, "s={s}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn single_class_rejected() {
        let _ = HarmonicFit::new(1);
    }
}
