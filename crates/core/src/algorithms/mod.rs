//! The packing algorithms analyzed in the paper, plus standard foils.
//!
//! * [`FirstFit`], [`BestFit`] and the whole Any Fit family (§3.2);
//! * [`ModifiedFirstFit`] — the paper's contribution (§4.4);
//! * foils: [`WorstFit`], [`NextFit`], [`LastFit`], [`RandomFit`],
//!   [`MostItemsFit`];
//! * [`ConstrainedFirstFit`] — the §5 future-work extension (items restricted
//!   to region-compatible bins);
//! * [`IndexedFirstFit`], [`IndexedBestFit`], [`IndexedMff`] —
//!   decision-identical O(log m) reimplementations of FF/BF/MFF over
//!   hook-maintained indexes (see [`indexed`]).

mod best_fit;
mod constrained;
mod dominance;
mod first_fit;
mod harmonic;
pub mod indexed;
mod last_fit;
mod modified_first_fit;
mod most_items;
mod next_fit;
mod random_fit;
mod worst_fit;

pub use best_fit::BestFit;
pub use constrained::ConstrainedFirstFit;
pub use dominance::DominanceFit;
pub use first_fit::FirstFit;
pub use harmonic::HarmonicFit;
pub use indexed::{IndexedBestFit, IndexedFirstFit, IndexedMff};
pub use last_fit::LastFit;
pub use modified_first_fit::{ItemClass, ModifiedFirstFit, LARGE_TAG, SMALL_TAG};
pub use most_items::MostItemsFit;
pub use next_fit::NextFit;
pub use random_fit::RandomFit;
pub use worst_fit::WorstFit;

use crate::bin::GOpenBinView;
use crate::demand::Demand;
use crate::packer::SelectorFactory;

/// Among the open bins that fit `size` (componentwise, per
/// [`GOpenBinView::fits`]), pick the one minimizing `key` (ties broken
/// toward the earliest-opened bin, because `bins` is in opening order and
/// the comparison is strict). Returns `None` if no open bin fits — the Any
/// Fit trigger for opening a new bin.
pub(crate) fn argmin_fitting<Sz: Demand, K: Ord>(
    bins: &[GOpenBinView<Sz>],
    size: Sz,
    mut key: impl FnMut(&GOpenBinView<Sz>) -> K,
) -> Option<&GOpenBinView<Sz>> {
    let mut best: Option<(&GOpenBinView<Sz>, K)> = None;
    for b in bins.iter().filter(|b| b.fits(size)) {
        let k = key(b);
        match &best {
            Some((_, bk)) if *bk <= k => {}
            _ => best = Some((b, k)),
        }
    }
    best.map(|(b, _)| b)
}

/// The standard algorithm roster used by experiments: one factory per
/// deterministic algorithm, with MFF at its µ-oblivious setting `k = 8`
/// (the paper's recommendation when µ is unknown) and Random Fit seeded.
///
/// ```
/// use dbp_core::prelude::*;
/// use dbp_core::algorithms::standard_factories;
/// let mut b = InstanceBuilder::new(10);
/// b.add(0, 50, 6);
/// b.add(5, 40, 6);
/// let inst = b.build().unwrap();
/// for factory in standard_factories(42) {
///     let mut algo = factory.build();
///     let trace = simulate_validated(&inst, &mut *algo);
///     assert_eq!(trace.bins_used(), 2, "{}", factory.name());
/// }
/// ```
pub fn standard_factories(seed: u64) -> Vec<SelectorFactory> {
    vec![
        SelectorFactory::new("FF", || Box::new(FirstFit::new())),
        SelectorFactory::new("BF", || Box::new(BestFit::new())),
        SelectorFactory::new("WF", || Box::new(WorstFit::new())),
        SelectorFactory::new("NF", || Box::new(NextFit::new())),
        SelectorFactory::new("LF", || Box::new(LastFit::new())),
        SelectorFactory::new("MI", || Box::new(MostItemsFit::new())),
        SelectorFactory::new("RF", move || Box::new(RandomFit::seeded(seed))),
        SelectorFactory::new("MFF(8)", || Box::new(ModifiedFirstFit::new(8))),
        SelectorFactory::new("HFF(4)", || Box::new(HarmonicFit::new(4))),
    ]
}

/// The indexed selector roster: the engines the repo actually ships for
/// FF, BF, and MFF. Decision-identical to the naive selectors of the same
/// display names (see [`indexed`]) but O(log m) per arrival with no
/// open-bin view maintenance — benches and cluster baselines should use
/// this family so their numbers describe the production hot path.
pub fn indexed_factories() -> Vec<SelectorFactory> {
    vec![
        SelectorFactory::new("FF", || Box::new(IndexedFirstFit::new())),
        SelectorFactory::new("BF", || Box::new(IndexedBestFit::new())),
        SelectorFactory::new("MFF(8)", || Box::new(IndexedMff::new(8))),
    ]
}

/// Build a selector by roster name for **any** demand dimensionality —
/// the construction seam for components that pick their demand type at
/// runtime (the serve daemon's `--dims` dispatch). Covers every
/// deterministic dimension-agnostic selector: the naive and indexed
/// display names resolve to the same decision sequence, so either roster's
/// name works. Returns `None` for unknown names and for the scalar-only
/// foils (WF/NF/LF/MI/RF/HFF classify on a single size).
pub fn selector_for<Sz: Demand>(name: &str) -> Option<Box<dyn crate::packer::BinSelector<Sz>>> {
    Some(match name {
        "FF" | "ff" => Box::new(FirstFit::new()),
        "BF" | "bf" => Box::new(BestFit::new()),
        "MFF(8)" | "MFF" | "mff" => Box::new(ModifiedFirstFit::new(8)),
        "DOM" | "dom" => Box::new(DominanceFit::new()),
        "FF-idx" => Box::new(indexed::GIndexedFirstFit::<Sz>::new()),
        "BF-idx" => Box::new(indexed::GIndexedBestFit::<Sz>::new()),
        "MFF-idx" | "MFF(8)-idx" => Box::new(indexed::GIndexedMff::<Sz>::new(8)),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bin::{BinId, BinTag, OpenBinView};
    use crate::item::Size;
    use crate::time::Tick;

    fn view(id: u32, level: u64) -> OpenBinView {
        OpenBinView {
            id: BinId(id),
            opened_at: Tick(0),
            level: Size(level),
            capacity: Size(10),
            n_items: 1,
            tag: BinTag::DEFAULT,
        }
    }

    #[test]
    fn argmin_prefers_earlier_bin_on_ties() {
        let bins = [view(0, 5), view(1, 5), view(2, 3)];
        let chosen = argmin_fitting(&bins, Size(2), |b| b.level).unwrap();
        assert_eq!(chosen.id, BinId(2));
        let chosen = argmin_fitting(&bins, Size(2), |b| std::cmp::Reverse(b.level)).unwrap();
        assert_eq!(chosen.id, BinId(0)); // tie between 0 and 1 at level 5
    }

    #[test]
    fn argmin_skips_bins_that_do_not_fit() {
        let bins = [view(0, 9), view(1, 10)];
        assert!(argmin_fitting(&bins, Size(2), |b| b.level).is_none());
        let chosen = argmin_fitting(&bins, Size(1), |b| b.level).unwrap();
        assert_eq!(chosen.id, BinId(0));
    }

    #[test]
    fn roster_has_unique_names() {
        let fs = standard_factories(42);
        let mut names: Vec<&str> = fs.iter().map(|f| f.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), fs.len());
    }

    #[test]
    fn indexed_roster_mirrors_naive_display_names() {
        let standard: Vec<String> = standard_factories(42)
            .iter()
            .map(|f| f.name().to_string())
            .collect();
        for f in indexed_factories() {
            assert!(
                standard.contains(&f.name().to_string()),
                "indexed factory {} has no naive counterpart",
                f.name()
            );
            // Built selectors report the naive names too, so traces from
            // either family are byte-identical.
            let built = f.build();
            assert!(f.name().starts_with(built.name()));
            assert!(!built.needs_views());
        }
    }
}
