//! Last Fit (LF): the *most recently opened* bin that fits — the mirror
//! image of First Fit, and still an Any Fit algorithm. Included because the
//! FF analysis of §4.3 leans on the earliest-opened order; LF shows which
//! parts of the behaviour are order-specific.

use super::argmin_fitting;
use crate::bin::OpenBinView;
use crate::item::{ArrivingItem, Size};
use crate::packer::{BinSelector, Decision};

/// Last Fit packing.
#[derive(Debug, Clone, Copy, Default)]
pub struct LastFit;

impl LastFit {
    /// Create a Last Fit selector.
    pub fn new() -> LastFit {
        LastFit
    }
}

impl BinSelector for LastFit {
    fn name(&self) -> &'static str {
        "LF"
    }

    fn select(&mut self, bins: &[OpenBinView], item: &ArrivingItem, _capacity: Size) -> Decision {
        argmin_fitting(bins, item.size, |b| std::cmp::Reverse(b.id))
            .map(|b| Decision::Use(b.id))
            .unwrap_or(Decision::OPEN)
    }

    fn is_any_fit(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bin::BinId;
    use crate::engine::{any_fit_violations, simulate_validated};
    use crate::instance::InstanceBuilder;
    use crate::item::ItemId;

    #[test]
    fn lf_prefers_latest_opened_bin() {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 10, 7); // b0
        b.add(1, 10, 7); // b1
        b.add(2, 10, 3); // fits both -> b1 under LF
        let inst = b.build().unwrap();
        let trace = simulate_validated(&inst, &mut LastFit::new());
        assert_eq!(trace.bin_of(ItemId(2)), BinId(1));
        assert!(any_fit_violations(&inst, &trace).is_empty());
    }

    #[test]
    fn lf_falls_back_to_older_bins() {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 10, 3); // b0
        b.add(1, 10, 9); // b1 (latest)
        b.add(2, 10, 5); // does not fit b1 -> b0
        let inst = b.build().unwrap();
        let trace = simulate_validated(&inst, &mut LastFit::new());
        assert_eq!(trace.bin_of(ItemId(2)), BinId(0));
        assert_eq!(trace.bins_used(), 2);
    }
}
