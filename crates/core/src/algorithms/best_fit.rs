//! Best Fit (BF): the open bin with the smallest residual capacity after
//! adding the item (§3.2) — equivalently, the highest current level that
//! still fits. Theorem 2 shows BF has *no bounded competitive ratio* for
//! MinTotal DBP, for any µ; `dbp-adversary::theorem2` builds the witness.

use super::argmin_fitting;
use crate::bin::GOpenBinView;
use crate::demand::Demand;
use crate::item::GArrivingItem;
use crate::packer::{BinSelector, Decision};

/// Best Fit packing. Ties (equal levels) break toward the earliest-opened
/// bin, the conventional choice.
#[derive(Debug, Clone, Copy, Default)]
pub struct BestFit;

impl BestFit {
    /// Create a Best Fit selector.
    pub fn new() -> BestFit {
        BestFit
    }
}

impl<Sz: Demand> BinSelector<Sz> for BestFit {
    fn name(&self) -> &'static str {
        "BF"
    }

    fn select(
        &mut self,
        bins: &[GOpenBinView<Sz>],
        item: &GArrivingItem<Sz>,
        _capacity: Sz,
    ) -> Decision {
        // Fullness is the L1 level total: exactly the scalar level at D=1,
        // so D=1 decisions are byte-identical to the scalar engine's.
        argmin_fitting(bins, item.size, |b| std::cmp::Reverse(b.level.total()))
            .map(|b| Decision::Use(b.id))
            .unwrap_or(Decision::OPEN)
    }

    fn is_any_fit(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bin::BinId;
    use crate::engine::{any_fit_violations, simulate_validated};
    use crate::instance::InstanceBuilder;
    use crate::item::ItemId;

    #[test]
    fn bf_prefers_fullest_fitting_bin() {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 10, 7); // b0, level 7
        b.add(1, 10, 4); // does not fit b0 -> b1, level 4
        b.add(2, 10, 3); // fits both; BF -> b0 (level 7 > 4)
        let inst = b.build().unwrap();
        let trace = simulate_validated(&inst, &mut BestFit::new());
        assert_eq!(trace.bin_of(ItemId(2)), BinId(0));
        assert!(any_fit_violations(&inst, &trace).is_empty());
    }

    #[test]
    fn bf_skips_fullest_bin_when_item_does_not_fit() {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 10, 8); // b0, level 8
        b.add(1, 10, 4); // b1, level 4
        b.add(2, 10, 4); // does not fit b0; BF -> b1
        let inst = b.build().unwrap();
        let trace = simulate_validated(&inst, &mut BestFit::new());
        assert_eq!(trace.bin_of(ItemId(2)), BinId(1));
        assert_eq!(trace.bins_used(), 2);
    }

    #[test]
    fn bf_differs_from_ff_on_canonical_pattern() {
        // FF would put the probe into the earliest bin (low level); BF puts
        // it into the fullest.
        let mut b = InstanceBuilder::new(10);
        b.add(0, 10, 2); // b0 level 2 (earliest)
        b.add(1, 10, 9); // 2+9 > 10: does not fit b0 -> b1 level 9 (fullest)
        b.add(2, 10, 1); // fits both
        let inst = b.build().unwrap();
        let bf = simulate_validated(&inst, &mut BestFit::new());
        assert_eq!(bf.bin_of(ItemId(2)), BinId(1));
        let ff = simulate_validated(&inst, &mut super::super::FirstFit::new());
        assert_eq!(ff.bin_of(ItemId(2)), BinId(0));
    }

    #[test]
    fn bf_tie_breaks_to_earliest_bin() {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 10, 7); // b0 level 7
        b.add(1, 10, 7); // 7+7 > 10 -> b1 level 7
        b.add(2, 10, 2); // tie at level 7 -> b0
        let inst = b.build().unwrap();
        let trace = simulate_validated(&inst, &mut BestFit::new());
        assert_eq!(trace.bin_of(ItemId(2)), BinId(0));
    }
}
