//! Next Fit (NF): keep a single *current* bin; if the arriving item fits it,
//! use it, otherwise open a new bin which becomes current.
//!
//! NF is deliberately **not** an Any Fit algorithm — it may open a bin while
//! older bins still have room — and acts as the weak baseline in workload
//! comparisons (classical NF loses to FF in static packing too).

use crate::bin::{BinId, OpenBinView};
use crate::item::{ArrivingItem, Size};
use crate::packer::{BinSelector, Decision};

/// Next Fit packing. Stateful: remembers the current bin; when the current
/// bin closes (all items departed) the next arrival opens a fresh one.
#[derive(Debug, Clone, Copy, Default)]
pub struct NextFit {
    current: Option<BinId>,
    /// Number of bins this selector has opened so far. Engine bin ids are
    /// assigned sequentially across *all* bins ever opened (including closed
    /// ones), so counting our own `Open` decisions predicts the next id.
    opened: u32,
}

impl NextFit {
    /// Create a Next Fit selector.
    pub fn new() -> NextFit {
        NextFit {
            current: None,
            opened: 0,
        }
    }
}

impl BinSelector for NextFit {
    fn name(&self) -> &'static str {
        "NF"
    }

    fn select(&mut self, bins: &[OpenBinView], item: &ArrivingItem, _capacity: Size) -> Decision {
        if let Some(cur) = self.current {
            if let Ok(pos) = bins.binary_search_by_key(&cur, |b| b.id) {
                if bins[pos].fits(item.size) {
                    return Decision::Use(cur);
                }
            }
        }
        // The engine allocates ids sequentially over all bins ever opened;
        // since every opening goes through this selector, `opened` is the
        // next id.
        self.current = Some(BinId(self.opened));
        self.opened += 1;
        Decision::OPEN
    }

    fn on_bin_closed(&mut self, bin: BinId) {
        if self.current == Some(bin) {
            self.current = None;
        }
    }

    fn on_decision_replayed(&mut self, _item: &ArrivingItem, decision: Decision, _capacity: Size) {
        // Mirror `select`: an `Open` decision made the new bin current and
        // advanced the next-id counter; a `Use` left both untouched.
        if let Decision::Open { .. } = decision {
            self.current = Some(BinId(self.opened));
            self.opened += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bin::BinId;
    use crate::engine::simulate_validated;
    use crate::instance::InstanceBuilder;
    use crate::item::ItemId;

    #[test]
    fn nf_ignores_older_bins_with_room() {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 10, 2); // b0 (current), level 2
        b.add(1, 10, 9); // does not fit b0 -> b1 becomes current
        b.add(2, 10, 1); // fits b1 (9+1=10) -> b1, even though b0 has room
        b.add(3, 10, 5); // does not fit b1 -> b2, despite b0 having room
        let inst = b.build().unwrap();
        let trace = simulate_validated(&inst, &mut NextFit::new());
        assert_eq!(trace.bin_of(ItemId(2)), BinId(1));
        assert_eq!(trace.bin_of(ItemId(3)), BinId(2));
        assert_eq!(trace.bins_used(), 3);
    }

    #[test]
    fn nf_recovers_after_current_bin_closes() {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 5, 4); // b0, closes at 5
        b.add(6, 9, 4); // current is gone -> opens b1
        let inst = b.build().unwrap();
        let trace = simulate_validated(&inst, &mut NextFit::new());
        assert_eq!(trace.bins_used(), 2);
        assert_eq!(trace.max_open_bins(), 1);
    }

    #[test]
    fn nf_new_bin_becomes_current_with_nonempty_history() {
        // Regression guard for the next-id computation: ids keep counting
        // past closed bins.
        let mut b = InstanceBuilder::new(10);
        b.add(0, 20, 6); // b0
        b.add(1, 3, 6); // -> b1 (current), closes at 3
        b.add(4, 8, 6); // current closed -> b2; must then be reused
        b.add(5, 8, 4); // fits b2 (6+4) -> b2
        let inst = b.build().unwrap();
        let trace = simulate_validated(&inst, &mut NextFit::new());
        assert_eq!(trace.bin_of(ItemId(2)), BinId(2));
        assert_eq!(trace.bin_of(ItemId(3)), BinId(2));
    }
}
