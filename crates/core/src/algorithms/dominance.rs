//! Dominance Fit (DOM): a vector-aware Any Fit heuristic in the spirit of
//! the max-component family studied for dynamic *vector* bin packing
//! (Murhekar et al., "Dynamic Vector Bin Packing for Online Resource
//! Allocation in the Cloud", arXiv:2304.08648).
//!
//! Among the open bins that fit the item (componentwise), DOM picks the bin
//! whose **post-placement residual** has the smallest maximum component —
//! i.e. it minimizes the worst per-dimension slack left behind, steering
//! items toward bins whose dominant free dimension they actually consume.
//! Ties break by smaller total (L1) residual, then toward the
//! earliest-opened bin.
//!
//! At `D = 1` the maximum residual component *is* the residual, so DOM
//! degenerates to Best Fit's placement rule (fullest fitting bin): a sanity
//! anchor the vector equivalence suite pins.

use super::argmin_fitting;
use crate::bin::GOpenBinView;
use crate::demand::Demand;
use crate::item::GArrivingItem;
use crate::packer::{BinSelector, Decision};

/// Dominance (max-component residual) packing. Stateless, like
/// [`FirstFit`](super::FirstFit).
#[derive(Debug, Clone, Copy, Default)]
pub struct DominanceFit;

impl DominanceFit {
    /// Create a Dominance Fit selector.
    pub fn new() -> DominanceFit {
        DominanceFit
    }
}

impl<Sz: Demand> BinSelector<Sz> for DominanceFit {
    fn name(&self) -> &'static str {
        "DOM"
    }

    fn select(
        &mut self,
        bins: &[GOpenBinView<Sz>],
        item: &GArrivingItem<Sz>,
        _capacity: Sz,
    ) -> Decision {
        argmin_fitting(bins, item.size, |b| {
            let after = b
                .level
                .checked_add(item.size)
                .expect("argmin_fitting only yields fitting bins");
            let residual = b.capacity.sub(after);
            (residual.max_component(), residual.total())
        })
        .map(|b| Decision::Use(b.id))
        .unwrap_or(Decision::OPEN)
    }

    fn is_any_fit(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::VSize;
    use crate::engine::{any_fit_violations, simulate_validated};
    use crate::instance::{GInstanceBuilder, InstanceBuilder};
    use crate::item::ItemId;
    use crate::{algorithms::BestFit, bin::BinId};

    #[test]
    fn dom_equals_bf_at_d1() {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 10, 7);
        b.add(1, 10, 4);
        b.add(2, 10, 3); // BF -> b0 (fullest); DOM must agree at D=1
        b.add(3, 12, 2);
        let inst = b.build().unwrap();
        let bf = simulate_validated(&inst, &mut BestFit::new());
        let mut dom = simulate_validated(&inst, &mut DominanceFit::new());
        assert_eq!(bf.assignment, dom.assignment);
        dom.algorithm = bf.algorithm.clone();
        assert_eq!(bf, dom);
        assert!(any_fit_violations(&inst, &dom).is_empty());
    }

    #[test]
    fn dom_prefers_dimension_balanced_placement() {
        // Capacity [10,10]. Bin 0 holds [8,2], bin 1 holds [5,5]. An item
        // of [2,2] fits both; residuals after placement are [0,6] (max 6)
        // for b0 and [3,3] (max 3) for b1 — DOM picks b1, where BF-by-total
        // would tie-break to b0.
        let mut b = GInstanceBuilder::new(VSize([10u64, 10]));
        b.add(0, 10, VSize([8, 2])); // b0
        b.add(1, 10, VSize([5, 5])); // does not fit b0 (8+5>10) -> b1
        b.add(2, 10, VSize([2, 2])); // fits both
        let inst = b.build().unwrap();
        let trace = simulate_validated(&inst, &mut DominanceFit::new());
        assert_eq!(trace.bin_of(ItemId(2)), BinId(1));
    }
}
