//! Indexed First Fit / Best Fit: O(log m) decisions from hook-maintained
//! search structures.
//!
//! The naive [`FirstFit`]/[`BestFit`] selectors scan every open bin per
//! arrival — O(m) work that dominates adversarial instances like the
//! Theorem 5 construction. The selectors here make *exactly the same
//! decisions* (property-tested decision-for-decision against the naive
//! implementations, and they report the same [`name`] so traces are
//! byte-identical) but answer each query from an index updated through the
//! [`BinSelector`] state-change hooks:
//!
//! * [`IndexedFirstFit`] — a max-residual segment tree over bin-id space.
//!   "First open bin with residual ≥ s" is a leftmost-leaf descent,
//!   O(log B) where B is the number of bins ever opened. Closed (and
//!   never-opened) ids hold residual 0, which no item can fit since item
//!   sizes are validated positive.
//! * [`IndexedBestFit`] — a `BTreeMap<level, BTreeSet<BinId>>` keyed by the
//!   L1 level total. "Fullest open bin with level ≤ W − s, ties to the
//!   earliest-opened" is a range query for the greatest feasible level
//!   followed by that bucket's minimum id, O(log m).
//! * [`IndexedMff`] — the paper's MFF (§4.4) on two class-segregated
//!   residual trees, one per size class. Classification picks the tree;
//!   within a tree the query is the same leftmost descent as indexed FF,
//!   which matches naive MFF because MFF *is* First Fit restricted to
//!   same-tag bins and each tree holds residual 0 for every bin outside
//!   its class.
//!
//! ## Vector demands
//!
//! Every structure is generic over the [`Demand`] type. For `D > 1` the
//! segment tree's internal nodes hold the componentwise **join** (per-
//! dimension max) of their children, which over-approximates feasibility:
//! `s ⊑ join(a, b)` does not imply `s ⊑ a ∨ s ⊑ b`, so the descent
//! backtracks when both children's subtrees turn out infeasible. At `D = 1`
//! the join *is* the max and the subtree bound is exact, so the descent
//! never backtracks and is byte-identical (decisions and complexity) to the
//! scalar tree. Indexed BF buckets by the L1 total and re-checks
//! componentwise fit against the stored per-bin level, which degenerates to
//! the pure range query at `D = 1` where total-feasibility implies fit.
//!
//! All three return `false` from [`BinSelector::needs_views`], so the
//! engine skips open-bin view maintenance entirely and the whole arrival
//! path runs in O(log m).
//!
//! [`FirstFit`]: super::FirstFit
//! [`BestFit`]: super::BestFit
//! [`name`]: BinSelector::name

use super::modified_first_fit::{ItemClass, ModifiedFirstFit, LARGE_TAG, SMALL_TAG};
use crate::bin::{BinId, BinTag, GOpenBinView};
use crate::demand::Demand;
use crate::item::{GArrivingItem, Size};
use crate::packer::{BinSelector, Decision};
use crate::ratio::Ratio;
use std::collections::{BTreeMap, BTreeSet};

/// Max-residual segment tree keyed by bin id, generic over the demand type.
/// Leaves hold the residual capacity of open bins and the all-zero demand
/// for closed/unopened ids; internal nodes hold the componentwise join
/// (per-dimension max) of their subtrees. Grows by doubling as ids are
/// allocated.
#[derive(Debug, Clone, Default)]
struct ResidualTree<Sz> {
    /// 1-based heap layout; `tree[leaf_base + id]` is bin `id`'s residual.
    tree: Vec<Sz>,
    /// Number of leaves (a power of two, or 0 before the first insert).
    leaves: usize,
}

impl<Sz: Demand> ResidualTree<Sz> {
    /// Smallest open bin id whose residual fits `s` componentwise (`s`
    /// validated nonzero). The join bound is exact at `D = 1` (no
    /// backtracking, the classic leftmost descent); at higher dimensions
    /// the descent backtracks out of subtrees whose join was feasible only
    /// as a mixture of different leaves.
    fn first_fitting(&self, s: Sz) -> Option<u32> {
        if self.leaves == 0 || !s.fits_within(self.tree[1]) {
            return None;
        }
        let mut node = 1usize;
        loop {
            if node < self.leaves {
                // Internal node known feasible: try the left child first.
                let left = 2 * node;
                node = if s.fits_within(self.tree[left]) {
                    left
                } else {
                    left + 1
                };
                if s.fits_within(self.tree[node]) {
                    continue;
                }
                // Right child infeasible after a failed left probe (only
                // possible at D > 1): backtrack to the nearest ancestor
                // whose right sibling is untried and feasible.
                loop {
                    let from_left = node.is_multiple_of(2);
                    node /= 2;
                    if node == 0 {
                        return None;
                    }
                    if from_left && s.fits_within(self.tree[2 * node + 1]) {
                        node = 2 * node + 1;
                        break;
                    }
                }
            } else {
                return Some((node - self.leaves) as u32);
            }
        }
    }

    /// Set bin `id`'s residual, growing the tree if the id is new.
    fn set(&mut self, id: u32, residual: Sz) {
        let id = id as usize;
        if id >= self.leaves {
            self.grow(id + 1);
        }
        let mut node = self.leaves + id;
        self.tree[node] = residual;
        while node > 1 {
            node /= 2;
            self.tree[node] = self.tree[2 * node].join(self.tree[2 * node + 1]);
        }
    }

    /// Bin `id`'s current residual (all-zero if never seen).
    #[cfg(test)]
    fn get(&self, id: u32) -> Sz {
        let id = id as usize;
        if id < self.leaves {
            self.tree[self.leaves + id]
        } else {
            Sz::ZERO
        }
    }

    fn grow(&mut self, min_leaves: usize) {
        let new_leaves = min_leaves.next_power_of_two().max(64);
        let mut tree = vec![Sz::ZERO; 2 * new_leaves];
        tree[new_leaves..new_leaves + self.leaves]
            .copy_from_slice(&self.tree[self.leaves..2 * self.leaves]);
        for node in (1..new_leaves).rev() {
            tree[node] = tree[2 * node].join(tree[2 * node + 1]);
        }
        self.tree = tree;
        self.leaves = new_leaves;
    }
}

/// First Fit answered from a segment tree: same decisions as
/// [`FirstFit`](super::FirstFit), O(log B) per arrival. Scalar via the
/// [`IndexedFirstFit`] alias.
#[derive(Debug, Clone, Default)]
pub struct GIndexedFirstFit<Sz> {
    tree: ResidualTree<Sz>,
    capacity: Option<Sz>,
}

/// The scalar indexed First Fit of the paper's model.
pub type IndexedFirstFit = GIndexedFirstFit<Size>;

impl<Sz: Demand> GIndexedFirstFit<Sz> {
    /// Create an indexed First Fit selector.
    pub fn new() -> GIndexedFirstFit<Sz> {
        GIndexedFirstFit {
            tree: ResidualTree::default(),
            capacity: None,
        }
    }

    fn residual(&self, level: Sz) -> Sz {
        self.capacity
            .expect("hook before the first select call")
            .sub(level)
    }
}

impl<Sz: Demand> BinSelector<Sz> for GIndexedFirstFit<Sz> {
    fn name(&self) -> &'static str {
        // Deliberately the naive selector's name: this *is* First Fit, so
        // traces (which carry the algorithm name) stay byte-identical.
        "FF"
    }

    fn select(
        &mut self,
        _bins: &[GOpenBinView<Sz>],
        item: &GArrivingItem<Sz>,
        capacity: Sz,
    ) -> Decision {
        debug_assert!(!item.size.is_zero(), "zero-size items break the 0-sentinel");
        self.capacity = Some(capacity);
        match self.tree.first_fitting(item.size) {
            Some(id) => Decision::Use(BinId(id)),
            None => Decision::OPEN,
        }
    }

    fn needs_views(&self) -> bool {
        false
    }

    fn on_decision_replayed(
        &mut self,
        _item: &GArrivingItem<Sz>,
        _decision: Decision,
        capacity: Sz,
    ) {
        // `select` learns the capacity on its first call; replay must seed
        // it the same way or the hooks below cannot compute residuals.
        self.capacity = Some(capacity);
    }

    fn on_bin_opened(&mut self, bin: BinId, _tag: BinTag, level: Sz) {
        self.tree.set(bin.0, self.residual(level));
    }

    fn on_item_placed(&mut self, bin: BinId, level: Sz) {
        self.tree.set(bin.0, self.residual(level));
    }

    fn on_item_departed(&mut self, bin: BinId, level: Sz) {
        self.tree.set(bin.0, self.residual(level));
    }

    fn on_bin_closed(&mut self, bin: BinId) {
        // Also reached for ids burned by failed boots (never opened): the
        // leaf is already 0, and `set` tolerates unseen ids.
        self.tree.set(bin.0, Sz::ZERO);
    }

    fn is_any_fit(&self) -> bool {
        true
    }
}

/// Best Fit answered from a level-keyed order: same decisions as
/// [`BestFit`](super::BestFit), O(log m) per arrival. Scalar via the
/// [`IndexedBestFit`] alias.
#[derive(Debug, Clone, Default)]
pub struct GIndexedBestFit<Sz> {
    /// Open bins bucketed by current L1 level total; the BTreeSet gives the
    /// earliest-opened (minimum id) bin within a total in O(log).
    by_level: BTreeMap<u128, BTreeSet<BinId>>,
    /// Current level total per bin id (`u128::MAX` = not open), for O(1)
    /// lookup of the bucket a bin must leave on update.
    level_of: Vec<u128>,
    /// Current componentwise level per open bin, for the per-dimension fit
    /// re-check at `D > 1` (redundant but harmless at `D = 1`).
    vec_level_of: Vec<Sz>,
}

/// The scalar indexed Best Fit of the paper's model.
pub type IndexedBestFit = GIndexedBestFit<Size>;

impl<Sz: Demand> GIndexedBestFit<Sz> {
    /// Create an indexed Best Fit selector.
    pub fn new() -> GIndexedBestFit<Sz> {
        GIndexedBestFit {
            by_level: BTreeMap::new(),
            level_of: Vec::new(),
            vec_level_of: Vec::new(),
        }
    }

    const CLOSED: u128 = u128::MAX;

    fn move_bin(&mut self, bin: BinId, new_level: Option<Sz>) {
        let b = bin.index();
        if b >= self.level_of.len() {
            self.level_of.resize(b + 1, Self::CLOSED);
            self.vec_level_of.resize(b + 1, Sz::ZERO);
        }
        let old = self.level_of[b];
        if old != Self::CLOSED {
            if let Some(bucket) = self.by_level.get_mut(&old) {
                bucket.remove(&bin);
                if bucket.is_empty() {
                    self.by_level.remove(&old);
                }
            }
        }
        match new_level {
            Some(level) => {
                self.level_of[b] = level.total();
                self.vec_level_of[b] = level;
                self.by_level.entry(level.total()).or_default().insert(bin);
            }
            None => {
                self.level_of[b] = Self::CLOSED;
                self.vec_level_of[b] = Sz::ZERO;
            }
        }
    }
}

impl<Sz: Demand> BinSelector<Sz> for GIndexedBestFit<Sz> {
    fn name(&self) -> &'static str {
        // Deliberately the naive selector's name — see IndexedFirstFit.
        "BF"
    }

    fn select(
        &mut self,
        _bins: &[GOpenBinView<Sz>],
        item: &GArrivingItem<Sz>,
        capacity: Sz,
    ) -> Decision {
        // A fitting bin satisfies level_d ≤ W_d − s_d in every dimension,
        // hence total(level) ≤ total(W) − total(s): the range query below is
        // a sound upper bound, exact at D = 1. If s exceeds W in some
        // dimension no bin can ever fit and BF opens (and the engine will
        // reject the overflow, same as with the naive selector).
        if !item.size.fits_within(capacity) {
            return Decision::OPEN;
        }
        let bound = capacity.total() - item.size.total();
        // Fullest-first, earliest-id within a total — exactly the order
        // naive generic BF (argmin by Reverse(total), ties to lowest id)
        // inspects candidates. The componentwise re-check only rejects at
        // D > 1; at D = 1 the first candidate always fits.
        for (_, bucket) in self.by_level.range(..=bound).rev() {
            for &id in bucket {
                let fits = self.vec_level_of[id.index()]
                    .checked_add(item.size)
                    .is_some_and(|l| l.fits_within(capacity));
                if fits {
                    return Decision::Use(id);
                }
            }
        }
        Decision::OPEN
    }

    fn needs_views(&self) -> bool {
        false
    }

    fn on_bin_opened(&mut self, bin: BinId, _tag: BinTag, level: Sz) {
        self.move_bin(bin, Some(level));
    }

    fn on_item_placed(&mut self, bin: BinId, level: Sz) {
        self.move_bin(bin, Some(level));
    }

    fn on_item_departed(&mut self, bin: BinId, level: Sz) {
        self.move_bin(bin, Some(level));
    }

    fn on_bin_closed(&mut self, bin: BinId) {
        self.move_bin(bin, None);
    }

    fn is_any_fit(&self) -> bool {
        true
    }
}

/// Modified First Fit answered from two class-segregated residual trees:
/// same decisions as [`ModifiedFirstFit`], O(log B) per arrival. Scalar via
/// the [`IndexedMff`] alias.
///
/// Classification is delegated to an inner naive [`ModifiedFirstFit`] so
/// the exact-rational threshold arithmetic has a single home. Each class
/// keeps its own [`ResidualTree`]; bins of the other class (and closed
/// bins) hold residual 0 there, so the leftmost-fitting query within a
/// tree is exactly naive MFF's "first same-tag bin that fits" scan.
#[derive(Debug, Clone)]
pub struct GIndexedMff<Sz> {
    inner: ModifiedFirstFit,
    large: ResidualTree<Sz>,
    small: ResidualTree<Sz>,
    /// Class each bin id was opened under (by tag); `None` for ids never
    /// opened, so burned ids can be closed without guessing a tree.
    class_of: Vec<Option<ItemClass>>,
    capacity: Option<Sz>,
}

/// The scalar indexed MFF of the paper's model.
pub type IndexedMff = GIndexedMff<Size>;

impl<Sz: Demand> GIndexedMff<Sz> {
    /// Indexed MFF with an integer `k ≥ 2` (the paper's µ-oblivious
    /// setting is `k = 8`).
    ///
    /// # Panics
    /// Panics if `k < 2`, same contract as [`ModifiedFirstFit::new`].
    pub fn new(k: u64) -> GIndexedMff<Sz> {
        GIndexedMff::from_inner(ModifiedFirstFit::new(k))
    }

    /// Indexed MFF with a rational `k = num/den > 1`.
    ///
    /// # Panics
    /// Same contract as [`ModifiedFirstFit::with_rational_k`].
    pub fn with_rational_k(num: u64, den: u64) -> GIndexedMff<Sz> {
        GIndexedMff::from_inner(ModifiedFirstFit::with_rational_k(num, den))
    }

    /// The semi-online setting: µ known, `k = µ + 7`.
    pub fn for_known_mu(mu: u64) -> GIndexedMff<Sz> {
        GIndexedMff::from_inner(ModifiedFirstFit::for_known_mu(mu))
    }

    fn from_inner(inner: ModifiedFirstFit) -> GIndexedMff<Sz> {
        GIndexedMff {
            inner,
            large: ResidualTree::default(),
            small: ResidualTree::default(),
            class_of: Vec::new(),
            capacity: None,
        }
    }

    /// The classification threshold parameter `k`, exactly.
    pub fn k(&self) -> Ratio {
        self.inner.k()
    }

    fn residual(&self, level: Sz) -> Sz {
        self.capacity
            .expect("hook before the first select call")
            .sub(level)
    }

    fn tree_of(&mut self, class: ItemClass) -> &mut ResidualTree<Sz> {
        match class {
            ItemClass::Large => &mut self.large,
            ItemClass::Small => &mut self.small,
        }
    }

    /// Re-publish bin's residual into its class tree (no-op for ids whose
    /// class was never recorded, which cannot hold items).
    fn update(&mut self, bin: BinId, level: Sz) {
        let b = bin.index();
        if let Some(Some(class)) = self.class_of.get(b).copied() {
            let residual = self.residual(level);
            self.tree_of(class).set(bin.0, residual);
        }
    }
}

impl<Sz: Demand> BinSelector<Sz> for GIndexedMff<Sz> {
    fn name(&self) -> &'static str {
        // Deliberately the naive selector's name — see IndexedFirstFit.
        "MFF"
    }

    fn select(
        &mut self,
        _bins: &[GOpenBinView<Sz>],
        item: &GArrivingItem<Sz>,
        capacity: Sz,
    ) -> Decision {
        debug_assert!(!item.size.is_zero(), "zero-size items break the 0-sentinel");
        self.capacity = Some(capacity);
        let class = self.inner.classify(item.size, capacity);
        let tree = match class {
            ItemClass::Large => &self.large,
            ItemClass::Small => &self.small,
        };
        match tree.first_fitting(item.size) {
            Some(id) => Decision::Use(BinId(id)),
            None => Decision::Open { tag: class.tag() },
        }
    }

    fn needs_views(&self) -> bool {
        false
    }

    fn on_decision_replayed(
        &mut self,
        _item: &GArrivingItem<Sz>,
        _decision: Decision,
        capacity: Sz,
    ) {
        // Seed the capacity exactly as `select` would — see IndexedFirstFit.
        self.capacity = Some(capacity);
    }

    fn on_bin_opened(&mut self, bin: BinId, tag: BinTag, level: Sz) {
        let class = match tag {
            LARGE_TAG => ItemClass::Large,
            SMALL_TAG => ItemClass::Small,
            other => unreachable!("MFF opened a bin with foreign tag {other:?}"),
        };
        let b = bin.index();
        if b >= self.class_of.len() {
            self.class_of.resize(b + 1, None);
        }
        self.class_of[b] = Some(class);
        let residual = self.residual(level);
        self.tree_of(class).set(bin.0, residual);
    }

    fn on_item_placed(&mut self, bin: BinId, level: Sz) {
        self.update(bin, level);
    }

    fn on_item_departed(&mut self, bin: BinId, level: Sz) {
        self.update(bin, level);
    }

    fn on_bin_closed(&mut self, bin: BinId) {
        // Burned ids (failed boots) may close without ever opening; their
        // class is unrecorded and both trees already hold 0 for them.
        let b = bin.index();
        if let Some(Some(class)) = self.class_of.get(b).copied() {
            self.tree_of(class).set(bin.0, Sz::ZERO);
            self.class_of[b] = None;
        }
    }

    // MFF is NOT Any Fit: it refuses cross-class placements.
    fn is_any_fit(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{BestFit, FirstFit};
    use crate::demand::VSize;
    use crate::engine::{any_fit_violations, simulate_validated};
    use crate::instance::InstanceBuilder;

    #[test]
    fn residual_tree_leftmost_query() {
        let mut t = ResidualTree::<Size>::default();
        assert_eq!(t.first_fitting(Size(1)), None);
        t.set(0, Size(3));
        t.set(1, Size(7));
        t.set(2, Size(7));
        assert_eq!(t.first_fitting(Size(1)), Some(0));
        assert_eq!(t.first_fitting(Size(4)), Some(1));
        assert_eq!(t.first_fitting(Size(8)), None);
        t.set(1, Size(0)); // close bin 1
        assert_eq!(t.first_fitting(Size(4)), Some(2));
        assert_eq!(t.get(1), Size(0));
        // Grow past the initial allocation and query across the boundary.
        t.set(1000, Size(9));
        assert_eq!(t.first_fitting(Size(8)), Some(1000));
        assert_eq!(t.get(1000), Size(9));
    }

    #[test]
    fn residual_tree_backtracks_at_higher_dims() {
        // join(leaf0, leaf1) = [5,5] claims feasibility for [4,4], but no
        // single leaf fits — the descent must backtrack past both and land
        // on leaf 2.
        let mut t = ResidualTree::<VSize<2>>::default();
        t.set(0, VSize([5, 1]));
        t.set(1, VSize([1, 5]));
        t.set(2, VSize([4, 4]));
        assert_eq!(t.first_fitting(VSize([4, 4])), Some(2));
        assert_eq!(t.first_fitting(VSize([5, 1])), Some(0));
        assert_eq!(t.first_fitting(VSize([0, 5])), Some(1));
        assert_eq!(t.first_fitting(VSize([5, 5])), None);
        t.set(2, VSize([0, 0]));
        assert_eq!(t.first_fitting(VSize([4, 4])), None);
    }

    fn churny_instance() -> crate::instance::Instance {
        // Interleaved arrivals/departures with ties in level and id, exact
        // fills, and bins that close and make ids stale.
        let mut b = InstanceBuilder::new(10);
        b.add(0, 10, 6); // b0
        b.add(0, 4, 6); // b1, closes at 4
        b.add(2, 8, 4); // fills b0 exactly
        b.add(3, 6, 5); // new bin
        b.add(5, 9, 6); // arrives after b1 closed
        b.add(5, 9, 5); // tie candidates
        b.add(6, 9, 5);
        b.add(8, 12, 2);
        b.build().unwrap()
    }

    #[test]
    fn indexed_ff_matches_naive_on_fixture() {
        let inst = churny_instance();
        let naive = simulate_validated(&inst, &mut FirstFit::new());
        let indexed = simulate_validated(&inst, &mut IndexedFirstFit::new());
        assert_eq!(naive, indexed);
        assert!(any_fit_violations(&inst, &indexed).is_empty());
    }

    #[test]
    fn indexed_bf_matches_naive_on_fixture() {
        let inst = churny_instance();
        let naive = simulate_validated(&inst, &mut BestFit::new());
        let indexed = simulate_validated(&inst, &mut IndexedBestFit::new());
        assert_eq!(naive, indexed);
        assert!(any_fit_violations(&inst, &indexed).is_empty());
    }

    #[test]
    fn indexed_bf_tie_breaks_to_earliest_bin() {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 10, 7); // b0 level 7
        b.add(1, 10, 7); // 7+7 > 10 -> b1 level 7
        b.add(2, 10, 2); // tie at level 7 -> b0
        let inst = b.build().unwrap();
        let trace = simulate_validated(&inst, &mut IndexedBestFit::new());
        assert_eq!(trace.bin_of(crate::item::ItemId(2)), BinId(0));
    }

    #[test]
    fn indexed_mff_matches_naive_on_fixture() {
        let inst = churny_instance();
        let naive = simulate_validated(&inst, &mut ModifiedFirstFit::new(8));
        let indexed = simulate_validated(&inst, &mut IndexedMff::new(8));
        assert_eq!(naive, indexed);
    }

    #[test]
    fn indexed_mff_matches_naive_with_mixed_classes() {
        // W = 10, k = 2 -> threshold 5: the fixture's sizes straddle it, so
        // both trees see churn, exact fills, and closes.
        let mut b = InstanceBuilder::new(10);
        b.add(0, 9, 6); // large -> b0
        b.add(0, 4, 3); // small -> b1, closes at 4
        b.add(1, 8, 5); // large, doesn't fit b0 -> b2
        b.add(2, 7, 2); // small, fits b1
        b.add(3, 6, 4); // small, 3+2+4 > 10 -> new small bin
        b.add(5, 9, 5); // large, fits b2 after nothing departed? 5+5=10 exact
        b.add(6, 9, 1); // small, b1 closed at 4 -> earliest open small bin
        let inst = b.build().unwrap();
        let naive = simulate_validated(&inst, &mut ModifiedFirstFit::new(2));
        let indexed = simulate_validated(&inst, &mut IndexedMff::new(2));
        assert_eq!(naive, indexed);
        for bin in &indexed.bins {
            assert!(bin.tag == LARGE_TAG || bin.tag == SMALL_TAG);
        }
    }

    #[test]
    fn indexed_mff_keeps_classes_separate() {
        // Large item leaves room, but the small item must open its own bin
        // (mirrors the naive engine_tests fixture).
        let mut b = InstanceBuilder::new(80);
        b.add(0, 10, 20); // large (threshold 10)
        b.add(1, 10, 5); // small
        let inst = b.build().unwrap();
        let trace = simulate_validated(&inst, &mut IndexedMff::new(8));
        assert_eq!(trace.bins_used(), 2);
        assert_eq!(trace.bins[0].tag, LARGE_TAG);
        assert_eq!(trace.bins[1].tag, SMALL_TAG);
    }

    #[test]
    fn indexed_selectors_skip_view_maintenance() {
        assert!(!IndexedFirstFit::new().needs_views());
        assert!(!IndexedBestFit::new().needs_views());
        assert!(!IndexedMff::new(8).needs_views());
        assert!(<FirstFit as BinSelector<Size>>::needs_views(
            &FirstFit::new()
        ));
    }

    #[test]
    fn indexed_mff_reports_k_exactly() {
        assert_eq!(IndexedMff::for_known_mu(10).k(), Ratio::from_int(17));
        assert_eq!(IndexedMff::with_rational_k(3, 2).k(), Ratio::new(3, 2));
    }

    #[test]
    fn hooks_tolerate_burned_ids() {
        // Fault injection may close an id that never opened.
        let mut ff = IndexedFirstFit::new();
        ff.capacity = Some(Size(10));
        ff.on_bin_closed(BinId(17));
        let mut bf = IndexedBestFit::new();
        bf.on_bin_closed(BinId(17));
        let mut mff = IndexedMff::new(8);
        mff.capacity = Some(Size(10));
        mff.on_bin_closed(BinId(17));
    }
}
