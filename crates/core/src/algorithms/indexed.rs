//! Indexed First Fit / Best Fit: O(log m) decisions from hook-maintained
//! search structures.
//!
//! The naive [`FirstFit`]/[`BestFit`] selectors scan every open bin per
//! arrival — O(m) work that dominates adversarial instances like the
//! Theorem 5 construction. The selectors here make *exactly the same
//! decisions* (property-tested decision-for-decision against the naive
//! implementations, and they report the same [`name`] so traces are
//! byte-identical) but answer each query from an index updated through the
//! [`BinSelector`] state-change hooks:
//!
//! * [`IndexedFirstFit`] — a max-residual segment tree over bin-id space.
//!   "First open bin with residual ≥ s" is a leftmost-leaf descent,
//!   O(log B) where B is the number of bins ever opened. Closed (and
//!   never-opened) ids hold residual 0, which no item can fit since item
//!   sizes are validated positive.
//! * [`IndexedBestFit`] — a `BTreeMap<level, BTreeSet<BinId>>`. "Fullest
//!   open bin with level ≤ W − s, ties to the earliest-opened" is a range
//!   query for the greatest feasible level followed by that bucket's
//!   minimum id, O(log m).
//! * [`IndexedMff`] — the paper's MFF (§4.4) on two class-segregated
//!   residual trees, one per size class. Classification picks the tree;
//!   within a tree the query is the same leftmost descent as indexed FF,
//!   which matches naive MFF because MFF *is* First Fit restricted to
//!   same-tag bins and each tree holds residual 0 for every bin outside
//!   its class.
//!
//! All three return `false` from [`BinSelector::needs_views`], so the
//! engine skips open-bin view maintenance entirely and the whole arrival
//! path runs in O(log m).
//!
//! [`FirstFit`]: super::FirstFit
//! [`BestFit`]: super::BestFit
//! [`name`]: BinSelector::name

use super::modified_first_fit::{ItemClass, ModifiedFirstFit, LARGE_TAG, SMALL_TAG};
use crate::bin::{BinId, BinTag, OpenBinView};
use crate::item::{ArrivingItem, Size};
use crate::packer::{BinSelector, Decision};
use crate::ratio::Ratio;
use std::collections::{BTreeMap, BTreeSet};

/// Max-residual segment tree keyed by bin id. Leaves hold the residual
/// capacity of open bins and 0 for closed/unopened ids; internal nodes hold
/// subtree maxima. Grows by doubling as ids are allocated.
#[derive(Debug, Clone, Default)]
struct ResidualTree {
    /// 1-based heap layout; `tree[leaf_base + id]` is bin `id`'s residual.
    tree: Vec<u64>,
    /// Number of leaves (a power of two, or 0 before the first insert).
    leaves: usize,
}

impl ResidualTree {
    /// Smallest open bin id whose residual is at least `s` (`s ≥ 1`).
    fn first_fitting(&self, s: u64) -> Option<u32> {
        if self.leaves == 0 || self.tree[1] < s {
            return None;
        }
        let mut node = 1;
        while node < self.leaves {
            node *= 2;
            if self.tree[node] < s {
                node += 1;
            }
        }
        Some((node - self.leaves) as u32)
    }

    /// Set bin `id`'s residual, growing the tree if the id is new.
    fn set(&mut self, id: u32, residual: u64) {
        let id = id as usize;
        if id >= self.leaves {
            self.grow(id + 1);
        }
        let mut node = self.leaves + id;
        self.tree[node] = residual;
        while node > 1 {
            node /= 2;
            self.tree[node] = self.tree[2 * node].max(self.tree[2 * node + 1]);
        }
    }

    /// Bin `id`'s current residual (0 if never seen).
    #[cfg(test)]
    fn get(&self, id: u32) -> u64 {
        let id = id as usize;
        if id < self.leaves {
            self.tree[self.leaves + id]
        } else {
            0
        }
    }

    fn grow(&mut self, min_leaves: usize) {
        let new_leaves = min_leaves.next_power_of_two().max(64);
        let mut tree = vec![0u64; 2 * new_leaves];
        tree[new_leaves..new_leaves + self.leaves]
            .copy_from_slice(&self.tree[self.leaves..2 * self.leaves]);
        for node in (1..new_leaves).rev() {
            tree[node] = tree[2 * node].max(tree[2 * node + 1]);
        }
        self.tree = tree;
        self.leaves = new_leaves;
    }
}

/// First Fit answered from a segment tree: same decisions as
/// [`FirstFit`](super::FirstFit), O(log B) per arrival.
#[derive(Debug, Clone, Default)]
pub struct IndexedFirstFit {
    tree: ResidualTree,
    capacity: Option<Size>,
}

impl IndexedFirstFit {
    /// Create an indexed First Fit selector.
    pub fn new() -> IndexedFirstFit {
        IndexedFirstFit::default()
    }

    fn residual(&self, level: Size) -> u64 {
        let w = self
            .capacity
            .expect("hook before the first select call")
            .raw();
        w - level.raw()
    }
}

impl BinSelector for IndexedFirstFit {
    fn name(&self) -> &'static str {
        // Deliberately the naive selector's name: this *is* First Fit, so
        // traces (which carry the algorithm name) stay byte-identical.
        "FF"
    }

    fn select(&mut self, _bins: &[OpenBinView], item: &ArrivingItem, capacity: Size) -> Decision {
        debug_assert!(item.size.raw() > 0, "zero-size items break the 0-sentinel");
        self.capacity = Some(capacity);
        match self.tree.first_fitting(item.size.raw()) {
            Some(id) => Decision::Use(BinId(id)),
            None => Decision::OPEN,
        }
    }

    fn needs_views(&self) -> bool {
        false
    }

    fn on_decision_replayed(&mut self, _item: &ArrivingItem, _decision: Decision, capacity: Size) {
        // `select` learns the capacity on its first call; replay must seed
        // it the same way or the hooks below cannot compute residuals.
        self.capacity = Some(capacity);
    }

    fn on_bin_opened(&mut self, bin: BinId, _tag: BinTag, level: Size) {
        self.tree.set(bin.0, self.residual(level));
    }

    fn on_item_placed(&mut self, bin: BinId, level: Size) {
        self.tree.set(bin.0, self.residual(level));
    }

    fn on_item_departed(&mut self, bin: BinId, level: Size) {
        self.tree.set(bin.0, self.residual(level));
    }

    fn on_bin_closed(&mut self, bin: BinId) {
        // Also reached for ids burned by failed boots (never opened): the
        // leaf is already 0, and `set` tolerates unseen ids.
        self.tree.set(bin.0, 0);
    }

    fn is_any_fit(&self) -> bool {
        true
    }
}

/// Best Fit answered from a level-keyed order: same decisions as
/// [`BestFit`](super::BestFit), O(log m) per arrival.
#[derive(Debug, Clone, Default)]
pub struct IndexedBestFit {
    /// Open bins bucketed by current level; the BTreeSet gives the
    /// earliest-opened (minimum id) bin within a level in O(log).
    by_level: BTreeMap<u64, BTreeSet<BinId>>,
    /// Current level per bin id (`u64::MAX` = not open), for O(1) lookup of
    /// the bucket a bin must leave on update.
    level_of: Vec<u64>,
}

impl IndexedBestFit {
    /// Create an indexed Best Fit selector.
    pub fn new() -> IndexedBestFit {
        IndexedBestFit::default()
    }

    const CLOSED: u64 = u64::MAX;

    fn move_bin(&mut self, bin: BinId, new_level: u64) {
        let b = bin.index();
        if b >= self.level_of.len() {
            self.level_of.resize(b + 1, Self::CLOSED);
        }
        let old = self.level_of[b];
        if old != Self::CLOSED {
            if let Some(bucket) = self.by_level.get_mut(&old) {
                bucket.remove(&bin);
                if bucket.is_empty() {
                    self.by_level.remove(&old);
                }
            }
        }
        self.level_of[b] = new_level;
        if new_level != Self::CLOSED {
            self.by_level.entry(new_level).or_default().insert(bin);
        }
    }
}

impl BinSelector for IndexedBestFit {
    fn name(&self) -> &'static str {
        // Deliberately the naive selector's name — see IndexedFirstFit.
        "BF"
    }

    fn select(&mut self, _bins: &[OpenBinView], item: &ArrivingItem, capacity: Size) -> Decision {
        // Highest level that still fits is W − s; if s > W no bin can ever
        // fit and BF opens (and the engine will reject the overflow, same
        // as with the naive selector).
        let Some(bound) = capacity.raw().checked_sub(item.size.raw()) else {
            return Decision::OPEN;
        };
        match self.by_level.range(..=bound).next_back() {
            Some((_, bucket)) => {
                let id = bucket.first().expect("empty level bucket");
                Decision::Use(*id)
            }
            None => Decision::OPEN,
        }
    }

    fn needs_views(&self) -> bool {
        false
    }

    fn on_bin_opened(&mut self, bin: BinId, _tag: BinTag, level: Size) {
        self.move_bin(bin, level.raw());
    }

    fn on_item_placed(&mut self, bin: BinId, level: Size) {
        self.move_bin(bin, level.raw());
    }

    fn on_item_departed(&mut self, bin: BinId, level: Size) {
        self.move_bin(bin, level.raw());
    }

    fn on_bin_closed(&mut self, bin: BinId) {
        self.move_bin(bin, Self::CLOSED);
    }

    fn is_any_fit(&self) -> bool {
        true
    }
}

/// Modified First Fit answered from two class-segregated residual trees:
/// same decisions as [`ModifiedFirstFit`], O(log B) per arrival.
///
/// Classification is delegated to an inner naive [`ModifiedFirstFit`] so
/// the exact-rational threshold arithmetic has a single home. Each class
/// keeps its own [`ResidualTree`]; bins of the other class (and closed
/// bins) hold residual 0 there, so the leftmost-fitting query within a
/// tree is exactly naive MFF's "first same-tag bin that fits" scan.
#[derive(Debug, Clone)]
pub struct IndexedMff {
    inner: ModifiedFirstFit,
    large: ResidualTree,
    small: ResidualTree,
    /// Class each bin id was opened under (by tag); `None` for ids never
    /// opened, so burned ids can be closed without guessing a tree.
    class_of: Vec<Option<ItemClass>>,
    capacity: Option<Size>,
}

impl IndexedMff {
    /// Indexed MFF with an integer `k ≥ 2` (the paper's µ-oblivious
    /// setting is `k = 8`).
    ///
    /// # Panics
    /// Panics if `k < 2`, same contract as [`ModifiedFirstFit::new`].
    pub fn new(k: u64) -> IndexedMff {
        IndexedMff::from_inner(ModifiedFirstFit::new(k))
    }

    /// Indexed MFF with a rational `k = num/den > 1`.
    ///
    /// # Panics
    /// Same contract as [`ModifiedFirstFit::with_rational_k`].
    pub fn with_rational_k(num: u64, den: u64) -> IndexedMff {
        IndexedMff::from_inner(ModifiedFirstFit::with_rational_k(num, den))
    }

    /// The semi-online setting: µ known, `k = µ + 7`.
    pub fn for_known_mu(mu: u64) -> IndexedMff {
        IndexedMff::from_inner(ModifiedFirstFit::for_known_mu(mu))
    }

    fn from_inner(inner: ModifiedFirstFit) -> IndexedMff {
        IndexedMff {
            inner,
            large: ResidualTree::default(),
            small: ResidualTree::default(),
            class_of: Vec::new(),
            capacity: None,
        }
    }

    /// The classification threshold parameter `k`, exactly.
    pub fn k(&self) -> Ratio {
        self.inner.k()
    }

    fn residual(&self, level: Size) -> u64 {
        let w = self
            .capacity
            .expect("hook before the first select call")
            .raw();
        w - level.raw()
    }

    fn tree_of(&mut self, class: ItemClass) -> &mut ResidualTree {
        match class {
            ItemClass::Large => &mut self.large,
            ItemClass::Small => &mut self.small,
        }
    }

    /// Re-publish bin's residual into its class tree (no-op for ids whose
    /// class was never recorded, which cannot hold items).
    fn update(&mut self, bin: BinId, level: Size) {
        let b = bin.index();
        if let Some(Some(class)) = self.class_of.get(b).copied() {
            let residual = self.residual(level);
            self.tree_of(class).set(bin.0, residual);
        }
    }
}

impl BinSelector for IndexedMff {
    fn name(&self) -> &'static str {
        // Deliberately the naive selector's name — see IndexedFirstFit.
        "MFF"
    }

    fn select(&mut self, _bins: &[OpenBinView], item: &ArrivingItem, capacity: Size) -> Decision {
        debug_assert!(item.size.raw() > 0, "zero-size items break the 0-sentinel");
        self.capacity = Some(capacity);
        let class = self.inner.classify(item.size, capacity);
        let tree = match class {
            ItemClass::Large => &self.large,
            ItemClass::Small => &self.small,
        };
        match tree.first_fitting(item.size.raw()) {
            Some(id) => Decision::Use(BinId(id)),
            None => Decision::Open { tag: class.tag() },
        }
    }

    fn needs_views(&self) -> bool {
        false
    }

    fn on_decision_replayed(&mut self, _item: &ArrivingItem, _decision: Decision, capacity: Size) {
        // Seed the capacity exactly as `select` would — see IndexedFirstFit.
        self.capacity = Some(capacity);
    }

    fn on_bin_opened(&mut self, bin: BinId, tag: BinTag, level: Size) {
        let class = match tag {
            LARGE_TAG => ItemClass::Large,
            SMALL_TAG => ItemClass::Small,
            other => unreachable!("MFF opened a bin with foreign tag {other:?}"),
        };
        let b = bin.index();
        if b >= self.class_of.len() {
            self.class_of.resize(b + 1, None);
        }
        self.class_of[b] = Some(class);
        let residual = self.residual(level);
        self.tree_of(class).set(bin.0, residual);
    }

    fn on_item_placed(&mut self, bin: BinId, level: Size) {
        self.update(bin, level);
    }

    fn on_item_departed(&mut self, bin: BinId, level: Size) {
        self.update(bin, level);
    }

    fn on_bin_closed(&mut self, bin: BinId) {
        // Burned ids (failed boots) may close without ever opening; their
        // class is unrecorded and both trees already hold 0 for them.
        let b = bin.index();
        if let Some(Some(class)) = self.class_of.get(b).copied() {
            self.tree_of(class).set(bin.0, 0);
            self.class_of[b] = None;
        }
    }

    // MFF is NOT Any Fit: it refuses cross-class placements.
    fn is_any_fit(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{BestFit, FirstFit};
    use crate::engine::{any_fit_violations, simulate_validated};
    use crate::instance::InstanceBuilder;

    #[test]
    fn residual_tree_leftmost_query() {
        let mut t = ResidualTree::default();
        assert_eq!(t.first_fitting(1), None);
        t.set(0, 3);
        t.set(1, 7);
        t.set(2, 7);
        assert_eq!(t.first_fitting(1), Some(0));
        assert_eq!(t.first_fitting(4), Some(1));
        assert_eq!(t.first_fitting(8), None);
        t.set(1, 0); // close bin 1
        assert_eq!(t.first_fitting(4), Some(2));
        assert_eq!(t.get(1), 0);
        // Grow past the initial allocation and query across the boundary.
        t.set(1000, 9);
        assert_eq!(t.first_fitting(8), Some(1000));
        assert_eq!(t.get(1000), 9);
    }

    fn churny_instance() -> crate::instance::Instance {
        // Interleaved arrivals/departures with ties in level and id, exact
        // fills, and bins that close and make ids stale.
        let mut b = InstanceBuilder::new(10);
        b.add(0, 10, 6); // b0
        b.add(0, 4, 6); // b1, closes at 4
        b.add(2, 8, 4); // fills b0 exactly
        b.add(3, 6, 5); // new bin
        b.add(5, 9, 6); // arrives after b1 closed
        b.add(5, 9, 5); // tie candidates
        b.add(6, 9, 5);
        b.add(8, 12, 2);
        b.build().unwrap()
    }

    #[test]
    fn indexed_ff_matches_naive_on_fixture() {
        let inst = churny_instance();
        let naive = simulate_validated(&inst, &mut FirstFit::new());
        let indexed = simulate_validated(&inst, &mut IndexedFirstFit::new());
        assert_eq!(naive, indexed);
        assert!(any_fit_violations(&inst, &indexed).is_empty());
    }

    #[test]
    fn indexed_bf_matches_naive_on_fixture() {
        let inst = churny_instance();
        let naive = simulate_validated(&inst, &mut BestFit::new());
        let indexed = simulate_validated(&inst, &mut IndexedBestFit::new());
        assert_eq!(naive, indexed);
        assert!(any_fit_violations(&inst, &indexed).is_empty());
    }

    #[test]
    fn indexed_bf_tie_breaks_to_earliest_bin() {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 10, 7); // b0 level 7
        b.add(1, 10, 7); // 7+7 > 10 -> b1 level 7
        b.add(2, 10, 2); // tie at level 7 -> b0
        let inst = b.build().unwrap();
        let trace = simulate_validated(&inst, &mut IndexedBestFit::new());
        assert_eq!(trace.bin_of(crate::item::ItemId(2)), BinId(0));
    }

    #[test]
    fn indexed_mff_matches_naive_on_fixture() {
        let inst = churny_instance();
        let naive = simulate_validated(&inst, &mut ModifiedFirstFit::new(8));
        let indexed = simulate_validated(&inst, &mut IndexedMff::new(8));
        assert_eq!(naive, indexed);
    }

    #[test]
    fn indexed_mff_matches_naive_with_mixed_classes() {
        // W = 10, k = 2 -> threshold 5: the fixture's sizes straddle it, so
        // both trees see churn, exact fills, and closes.
        let mut b = InstanceBuilder::new(10);
        b.add(0, 9, 6); // large -> b0
        b.add(0, 4, 3); // small -> b1, closes at 4
        b.add(1, 8, 5); // large, doesn't fit b0 -> b2
        b.add(2, 7, 2); // small, fits b1
        b.add(3, 6, 4); // small, 3+2+4 > 10 -> new small bin
        b.add(5, 9, 5); // large, fits b2 after nothing departed? 5+5=10 exact
        b.add(6, 9, 1); // small, b1 closed at 4 -> earliest open small bin
        let inst = b.build().unwrap();
        let naive = simulate_validated(&inst, &mut ModifiedFirstFit::new(2));
        let indexed = simulate_validated(&inst, &mut IndexedMff::new(2));
        assert_eq!(naive, indexed);
        for bin in &indexed.bins {
            assert!(bin.tag == LARGE_TAG || bin.tag == SMALL_TAG);
        }
    }

    #[test]
    fn indexed_mff_keeps_classes_separate() {
        // Large item leaves room, but the small item must open its own bin
        // (mirrors the naive engine_tests fixture).
        let mut b = InstanceBuilder::new(80);
        b.add(0, 10, 20); // large (threshold 10)
        b.add(1, 10, 5); // small
        let inst = b.build().unwrap();
        let trace = simulate_validated(&inst, &mut IndexedMff::new(8));
        assert_eq!(trace.bins_used(), 2);
        assert_eq!(trace.bins[0].tag, LARGE_TAG);
        assert_eq!(trace.bins[1].tag, SMALL_TAG);
    }

    #[test]
    fn indexed_selectors_skip_view_maintenance() {
        assert!(!IndexedFirstFit::new().needs_views());
        assert!(!IndexedBestFit::new().needs_views());
        assert!(!IndexedMff::new(8).needs_views());
        assert!(FirstFit::new().needs_views());
    }

    #[test]
    fn indexed_mff_reports_k_exactly() {
        assert_eq!(IndexedMff::for_known_mu(10).k(), Ratio::from_int(17));
        assert_eq!(IndexedMff::with_rational_k(3, 2).k(), Ratio::new(3, 2));
    }

    #[test]
    fn hooks_tolerate_burned_ids() {
        // Fault injection may close an id that never opened.
        let mut ff = IndexedFirstFit::new();
        ff.capacity = Some(Size(10));
        ff.on_bin_closed(BinId(17));
        let mut bf = IndexedBestFit::new();
        bf.on_bin_closed(BinId(17));
        let mut mff = IndexedMff::new(8);
        mff.capacity = Some(Size(10));
        mff.on_bin_closed(BinId(17));
    }
}
