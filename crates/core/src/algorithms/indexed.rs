//! Indexed First Fit / Best Fit: O(log m) decisions from hook-maintained
//! search structures.
//!
//! The naive [`FirstFit`]/[`BestFit`] selectors scan every open bin per
//! arrival — O(m) work that dominates adversarial instances like the
//! Theorem 5 construction. The selectors here make *exactly the same
//! decisions* (property-tested decision-for-decision against the naive
//! implementations, and they report the same [`name`] so traces are
//! byte-identical) but answer each query from an index updated through the
//! [`BinSelector`] state-change hooks:
//!
//! * [`IndexedFirstFit`] — a max-residual segment tree over bin-id space.
//!   "First open bin with residual ≥ s" is a leftmost-leaf descent,
//!   O(log B) where B is the number of bins ever opened. Closed (and
//!   never-opened) ids hold residual 0, which no item can fit since item
//!   sizes are validated positive.
//! * [`IndexedBestFit`] — a `BTreeMap<level, BTreeSet<BinId>>`. "Fullest
//!   open bin with level ≤ W − s, ties to the earliest-opened" is a range
//!   query for the greatest feasible level followed by that bucket's
//!   minimum id, O(log m).
//!
//! Both return `false` from [`BinSelector::needs_views`], so the engine
//! skips open-bin view maintenance entirely and the whole arrival path runs
//! in O(log m).
//!
//! [`FirstFit`]: super::FirstFit
//! [`BestFit`]: super::BestFit
//! [`name`]: BinSelector::name

use crate::bin::{BinId, BinTag, OpenBinView};
use crate::item::{ArrivingItem, Size};
use crate::packer::{BinSelector, Decision};
use std::collections::{BTreeMap, BTreeSet};

/// Max-residual segment tree keyed by bin id. Leaves hold the residual
/// capacity of open bins and 0 for closed/unopened ids; internal nodes hold
/// subtree maxima. Grows by doubling as ids are allocated.
#[derive(Debug, Clone, Default)]
struct ResidualTree {
    /// 1-based heap layout; `tree[leaf_base + id]` is bin `id`'s residual.
    tree: Vec<u64>,
    /// Number of leaves (a power of two, or 0 before the first insert).
    leaves: usize,
}

impl ResidualTree {
    /// Smallest open bin id whose residual is at least `s` (`s ≥ 1`).
    fn first_fitting(&self, s: u64) -> Option<u32> {
        if self.leaves == 0 || self.tree[1] < s {
            return None;
        }
        let mut node = 1;
        while node < self.leaves {
            node *= 2;
            if self.tree[node] < s {
                node += 1;
            }
        }
        Some((node - self.leaves) as u32)
    }

    /// Set bin `id`'s residual, growing the tree if the id is new.
    fn set(&mut self, id: u32, residual: u64) {
        let id = id as usize;
        if id >= self.leaves {
            self.grow(id + 1);
        }
        let mut node = self.leaves + id;
        self.tree[node] = residual;
        while node > 1 {
            node /= 2;
            self.tree[node] = self.tree[2 * node].max(self.tree[2 * node + 1]);
        }
    }

    /// Bin `id`'s current residual (0 if never seen).
    #[cfg(test)]
    fn get(&self, id: u32) -> u64 {
        let id = id as usize;
        if id < self.leaves {
            self.tree[self.leaves + id]
        } else {
            0
        }
    }

    fn grow(&mut self, min_leaves: usize) {
        let new_leaves = min_leaves.next_power_of_two().max(64);
        let mut tree = vec![0u64; 2 * new_leaves];
        tree[new_leaves..new_leaves + self.leaves]
            .copy_from_slice(&self.tree[self.leaves..2 * self.leaves]);
        for node in (1..new_leaves).rev() {
            tree[node] = tree[2 * node].max(tree[2 * node + 1]);
        }
        self.tree = tree;
        self.leaves = new_leaves;
    }
}

/// First Fit answered from a segment tree: same decisions as
/// [`FirstFit`](super::FirstFit), O(log B) per arrival.
#[derive(Debug, Clone, Default)]
pub struct IndexedFirstFit {
    tree: ResidualTree,
    capacity: Option<Size>,
}

impl IndexedFirstFit {
    /// Create an indexed First Fit selector.
    pub fn new() -> IndexedFirstFit {
        IndexedFirstFit::default()
    }

    fn residual(&self, level: Size) -> u64 {
        let w = self
            .capacity
            .expect("hook before the first select call")
            .raw();
        w - level.raw()
    }
}

impl BinSelector for IndexedFirstFit {
    fn name(&self) -> &'static str {
        // Deliberately the naive selector's name: this *is* First Fit, so
        // traces (which carry the algorithm name) stay byte-identical.
        "FF"
    }

    fn select(&mut self, _bins: &[OpenBinView], item: &ArrivingItem, capacity: Size) -> Decision {
        debug_assert!(item.size.raw() > 0, "zero-size items break the 0-sentinel");
        self.capacity = Some(capacity);
        match self.tree.first_fitting(item.size.raw()) {
            Some(id) => Decision::Use(BinId(id)),
            None => Decision::OPEN,
        }
    }

    fn needs_views(&self) -> bool {
        false
    }

    fn on_decision_replayed(&mut self, _item: &ArrivingItem, _decision: Decision, capacity: Size) {
        // `select` learns the capacity on its first call; replay must seed
        // it the same way or the hooks below cannot compute residuals.
        self.capacity = Some(capacity);
    }

    fn on_bin_opened(&mut self, bin: BinId, _tag: BinTag, level: Size) {
        self.tree.set(bin.0, self.residual(level));
    }

    fn on_item_placed(&mut self, bin: BinId, level: Size) {
        self.tree.set(bin.0, self.residual(level));
    }

    fn on_item_departed(&mut self, bin: BinId, level: Size) {
        self.tree.set(bin.0, self.residual(level));
    }

    fn on_bin_closed(&mut self, bin: BinId) {
        // Also reached for ids burned by failed boots (never opened): the
        // leaf is already 0, and `set` tolerates unseen ids.
        self.tree.set(bin.0, 0);
    }

    fn is_any_fit(&self) -> bool {
        true
    }
}

/// Best Fit answered from a level-keyed order: same decisions as
/// [`BestFit`](super::BestFit), O(log m) per arrival.
#[derive(Debug, Clone, Default)]
pub struct IndexedBestFit {
    /// Open bins bucketed by current level; the BTreeSet gives the
    /// earliest-opened (minimum id) bin within a level in O(log).
    by_level: BTreeMap<u64, BTreeSet<BinId>>,
    /// Current level per bin id (`u64::MAX` = not open), for O(1) lookup of
    /// the bucket a bin must leave on update.
    level_of: Vec<u64>,
}

impl IndexedBestFit {
    /// Create an indexed Best Fit selector.
    pub fn new() -> IndexedBestFit {
        IndexedBestFit::default()
    }

    const CLOSED: u64 = u64::MAX;

    fn move_bin(&mut self, bin: BinId, new_level: u64) {
        let b = bin.index();
        if b >= self.level_of.len() {
            self.level_of.resize(b + 1, Self::CLOSED);
        }
        let old = self.level_of[b];
        if old != Self::CLOSED {
            if let Some(bucket) = self.by_level.get_mut(&old) {
                bucket.remove(&bin);
                if bucket.is_empty() {
                    self.by_level.remove(&old);
                }
            }
        }
        self.level_of[b] = new_level;
        if new_level != Self::CLOSED {
            self.by_level.entry(new_level).or_default().insert(bin);
        }
    }
}

impl BinSelector for IndexedBestFit {
    fn name(&self) -> &'static str {
        // Deliberately the naive selector's name — see IndexedFirstFit.
        "BF"
    }

    fn select(&mut self, _bins: &[OpenBinView], item: &ArrivingItem, capacity: Size) -> Decision {
        // Highest level that still fits is W − s; if s > W no bin can ever
        // fit and BF opens (and the engine will reject the overflow, same
        // as with the naive selector).
        let Some(bound) = capacity.raw().checked_sub(item.size.raw()) else {
            return Decision::OPEN;
        };
        match self.by_level.range(..=bound).next_back() {
            Some((_, bucket)) => {
                let id = bucket.first().expect("empty level bucket");
                Decision::Use(*id)
            }
            None => Decision::OPEN,
        }
    }

    fn needs_views(&self) -> bool {
        false
    }

    fn on_bin_opened(&mut self, bin: BinId, _tag: BinTag, level: Size) {
        self.move_bin(bin, level.raw());
    }

    fn on_item_placed(&mut self, bin: BinId, level: Size) {
        self.move_bin(bin, level.raw());
    }

    fn on_item_departed(&mut self, bin: BinId, level: Size) {
        self.move_bin(bin, level.raw());
    }

    fn on_bin_closed(&mut self, bin: BinId) {
        self.move_bin(bin, Self::CLOSED);
    }

    fn is_any_fit(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{BestFit, FirstFit};
    use crate::engine::{any_fit_violations, simulate_validated};
    use crate::instance::InstanceBuilder;

    #[test]
    fn residual_tree_leftmost_query() {
        let mut t = ResidualTree::default();
        assert_eq!(t.first_fitting(1), None);
        t.set(0, 3);
        t.set(1, 7);
        t.set(2, 7);
        assert_eq!(t.first_fitting(1), Some(0));
        assert_eq!(t.first_fitting(4), Some(1));
        assert_eq!(t.first_fitting(8), None);
        t.set(1, 0); // close bin 1
        assert_eq!(t.first_fitting(4), Some(2));
        assert_eq!(t.get(1), 0);
        // Grow past the initial allocation and query across the boundary.
        t.set(1000, 9);
        assert_eq!(t.first_fitting(8), Some(1000));
        assert_eq!(t.get(1000), 9);
    }

    fn churny_instance() -> crate::instance::Instance {
        // Interleaved arrivals/departures with ties in level and id, exact
        // fills, and bins that close and make ids stale.
        let mut b = InstanceBuilder::new(10);
        b.add(0, 10, 6); // b0
        b.add(0, 4, 6); // b1, closes at 4
        b.add(2, 8, 4); // fills b0 exactly
        b.add(3, 6, 5); // new bin
        b.add(5, 9, 6); // arrives after b1 closed
        b.add(5, 9, 5); // tie candidates
        b.add(6, 9, 5);
        b.add(8, 12, 2);
        b.build().unwrap()
    }

    #[test]
    fn indexed_ff_matches_naive_on_fixture() {
        let inst = churny_instance();
        let naive = simulate_validated(&inst, &mut FirstFit::new());
        let indexed = simulate_validated(&inst, &mut IndexedFirstFit::new());
        assert_eq!(naive, indexed);
        assert!(any_fit_violations(&inst, &indexed).is_empty());
    }

    #[test]
    fn indexed_bf_matches_naive_on_fixture() {
        let inst = churny_instance();
        let naive = simulate_validated(&inst, &mut BestFit::new());
        let indexed = simulate_validated(&inst, &mut IndexedBestFit::new());
        assert_eq!(naive, indexed);
        assert!(any_fit_violations(&inst, &indexed).is_empty());
    }

    #[test]
    fn indexed_bf_tie_breaks_to_earliest_bin() {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 10, 7); // b0 level 7
        b.add(1, 10, 7); // 7+7 > 10 -> b1 level 7
        b.add(2, 10, 2); // tie at level 7 -> b0
        let inst = b.build().unwrap();
        let trace = simulate_validated(&inst, &mut IndexedBestFit::new());
        assert_eq!(trace.bin_of(crate::item::ItemId(2)), BinId(0));
    }

    #[test]
    fn indexed_selectors_skip_view_maintenance() {
        assert!(!IndexedFirstFit::new().needs_views());
        assert!(!IndexedBestFit::new().needs_views());
        assert!(FirstFit::new().needs_views());
    }

    #[test]
    fn hooks_tolerate_burned_ids() {
        // Fault injection may close an id that never opened.
        let mut ff = IndexedFirstFit::new();
        ff.capacity = Some(Size(10));
        ff.on_bin_closed(BinId(17));
        let mut bf = IndexedBestFit::new();
        bf.on_bin_closed(BinId(17));
    }
}
