//! Constrained DBP — the paper's stated future work (§5): "each item is
//! allowed to be assigned to only a subset of bins to cater for the
//! interactivity constraints of dispatching playing requests among
//! distributed clouds".
//!
//! We model the subsets as *regions*: each item carries a [`RegionId`] and
//! may only be packed into bins of its own region. [`ConstrainedFirstFit`]
//! runs an independent First Fit per region, tagging bins with the region.
//!
//! [`RegionId`]: crate::item::RegionId

use crate::bin::{BinTag, OpenBinView};
use crate::item::{ArrivingItem, Size};
use crate::packer::{BinSelector, Decision};

/// First Fit restricted to region-compatible bins.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConstrainedFirstFit;

impl ConstrainedFirstFit {
    /// Create a Constrained First Fit selector.
    pub fn new() -> ConstrainedFirstFit {
        ConstrainedFirstFit
    }

    /// The tag a bin serving `region` carries.
    pub fn tag_for_region(region: crate::item::RegionId) -> BinTag {
        BinTag(region.0 as u32)
    }
}

impl BinSelector for ConstrainedFirstFit {
    fn name(&self) -> &'static str {
        "C-FF"
    }

    fn select(&mut self, bins: &[OpenBinView], item: &ArrivingItem, _capacity: Size) -> Decision {
        let tag = Self::tag_for_region(item.region);
        for b in bins {
            if b.tag == tag && b.fits(item.size) {
                return Decision::Use(b.id);
            }
        }
        Decision::Open { tag }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate_validated;
    use crate::instance::InstanceBuilder;
    use crate::item::RegionId;

    #[test]
    fn items_never_cross_regions() {
        let mut b = InstanceBuilder::new(10);
        b.add_in_region(0, 10, 2, RegionId(0));
        b.add_in_region(1, 10, 2, RegionId(1)); // fits region-0 bin but must not use it
        b.add_in_region(2, 10, 2, RegionId(0));
        b.add_in_region(3, 10, 2, RegionId(1));
        let inst = b.build().unwrap();
        let trace = simulate_validated(&inst, &mut ConstrainedFirstFit::new());
        assert_eq!(trace.bins_used(), 2);
        assert_eq!(
            trace.bin_of(crate::item::ItemId(2)),
            trace.bin_of(crate::item::ItemId(0))
        );
        assert_eq!(
            trace.bin_of(crate::item::ItemId(3)),
            trace.bin_of(crate::item::ItemId(1))
        );
        for bin in &trace.bins {
            let regions: Vec<RegionId> = bin.items.iter().map(|&id| inst.item(id).region).collect();
            assert!(regions.windows(2).all(|w| w[0] == w[1]));
        }
    }

    #[test]
    fn single_region_behaves_like_first_fit() {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 10, 7);
        b.add(1, 10, 7);
        b.add(2, 10, 3);
        let inst = b.build().unwrap();
        let cff = simulate_validated(&inst, &mut ConstrainedFirstFit::new());
        let ff = simulate_validated(&inst, &mut super::super::FirstFit::new());
        assert_eq!(cff.assignment, ff.assignment);
        assert_eq!(cff.total_cost_ticks(), ff.total_cost_ticks());
    }
}
