//! Most-Items Fit (MI): the fitting bin currently holding the most items.
//!
//! A foil motivated by the DBP setting specifically: a bin with many items
//! is statistically likely to stay open longer (more departures must happen
//! before it closes), so adding to it avoids extending other bins'
//! lifetimes. Still Any Fit, hence subject to the µ lower bound.

use super::argmin_fitting;
use crate::bin::OpenBinView;
use crate::item::{ArrivingItem, Size};
use crate::packer::{BinSelector, Decision};

/// Most-Items Fit packing (ties toward the earliest-opened bin).
#[derive(Debug, Clone, Copy, Default)]
pub struct MostItemsFit;

impl MostItemsFit {
    /// Create a Most-Items Fit selector.
    pub fn new() -> MostItemsFit {
        MostItemsFit
    }
}

impl BinSelector for MostItemsFit {
    fn name(&self) -> &'static str {
        "MI"
    }

    fn select(&mut self, bins: &[OpenBinView], item: &ArrivingItem, _capacity: Size) -> Decision {
        argmin_fitting(bins, item.size, |b| std::cmp::Reverse(b.n_items))
            .map(|b| Decision::Use(b.id))
            .unwrap_or(Decision::OPEN)
    }

    fn is_any_fit(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bin::BinId;
    use crate::engine::{any_fit_violations, simulate_validated};
    use crate::instance::InstanceBuilder;
    use crate::item::ItemId;

    #[test]
    fn mi_prefers_bin_with_more_items() {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 10, 8); // b0: one big item, level 8
        b.add(1, 10, 3); // b1
        b.add(1, 10, 3); // b1 (FF-style fill while b0 full for size 3? 8+3>10 -> b1)
        b.add(2, 10, 2); // fits b0 (8+2=10) and b1 (6+2<10); MI -> b1 (2 items)
        let inst = b.build().unwrap();
        let trace = simulate_validated(&inst, &mut MostItemsFit::new());
        assert_eq!(trace.bin_of(ItemId(3)), BinId(1));
        assert!(any_fit_violations(&inst, &trace).is_empty());
    }
}
