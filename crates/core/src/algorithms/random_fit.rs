//! Random Fit (RF): a uniformly random open bin among those that fit. An Any
//! Fit algorithm (it opens only when nothing fits), used to probe how much
//! of FF's behaviour is due to its deterministic ordering. Deterministic per
//! seed, so experiments are reproducible.

use crate::bin::OpenBinView;
use crate::item::{ArrivingItem, Size};
use crate::packer::{BinSelector, Decision};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Random Fit packing with an owned, seeded RNG.
#[derive(Debug)]
pub struct RandomFit {
    rng: StdRng,
}

impl RandomFit {
    /// Create a Random Fit selector with the given RNG seed.
    pub fn seeded(seed: u64) -> RandomFit {
        RandomFit {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl BinSelector for RandomFit {
    fn name(&self) -> &'static str {
        "RF"
    }

    fn select(&mut self, bins: &[OpenBinView], item: &ArrivingItem, _capacity: Size) -> Decision {
        let fitting: Vec<&OpenBinView> = bins.iter().filter(|b| b.fits(item.size)).collect();
        if fitting.is_empty() {
            Decision::OPEN
        } else {
            let idx = self.rng.random_range(0..fitting.len());
            Decision::Use(fitting[idx].id)
        }
    }

    fn is_any_fit(&self) -> bool {
        true
    }

    fn on_decision_replayed(&mut self, _item: &ArrivingItem, decision: Decision, _capacity: Size) {
        // Mirror `select`: a `Use` decision consumed exactly one
        // `random_range` draw (the fitting list was non-empty); an `Open`
        // consumed none. The bound does not matter — the shim's uniform
        // sampler always advances the RNG by the same amount per draw.
        if let Decision::Use(_) = decision {
            let _ = self.rng.random_range(0..usize::MAX);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{any_fit_violations, simulate_validated};
    use crate::instance::InstanceBuilder;

    fn spread_instance() -> crate::instance::Instance {
        // Five long-lived anchors open five bins; then a stream of small
        // items fits several bins at once, giving the RNG real choices.
        let mut b = InstanceBuilder::new(100);
        for i in 0..5 {
            b.add(i, 500, 60);
        }
        for i in 0..20 {
            b.add(10 + i, 200 + i, 10);
        }
        b.build().unwrap()
    }

    #[test]
    fn rf_is_any_fit() {
        let inst = spread_instance();
        let trace = simulate_validated(&inst, &mut RandomFit::seeded(7));
        assert!(any_fit_violations(&inst, &trace).is_empty());
    }

    #[test]
    fn rf_is_deterministic_per_seed() {
        let inst = spread_instance();
        let a = simulate_validated(&inst, &mut RandomFit::seeded(1234));
        let b = simulate_validated(&inst, &mut RandomFit::seeded(1234));
        assert_eq!(a, b);
    }

    #[test]
    fn rf_seeds_differ() {
        let inst = spread_instance();
        let a = simulate_validated(&inst, &mut RandomFit::seeded(1));
        let b = simulate_validated(&inst, &mut RandomFit::seeded(2));
        // Different seeds almost surely produce different assignments on 20
        // items with several candidate bins each.
        assert_ne!(a.assignment, b.assignment);
    }

    #[test]
    fn rf_must_open_when_nothing_fits() {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 10, 9);
        b.add(1, 10, 9);
        let inst = b.build().unwrap();
        let trace = simulate_validated(&inst, &mut RandomFit::seeded(3));
        assert_eq!(trace.bins_used(), 2);
    }
}
