//! First Fit (FF): the earliest-opened bin that fits (§3.2).
//!
//! This is the algorithm with the paper's headline upper bounds: `2µ + 13`
//! in general (Theorem 5) and `k/(k−1)·µ + 6k/(k−1) + 1` when every size is
//! below `W/k` (Theorem 4).

use super::argmin_fitting;
use crate::bin::GOpenBinView;
use crate::demand::Demand;
use crate::item::GArrivingItem;
use crate::packer::{BinSelector, Decision};

/// First Fit packing. Stateless — all decisions derive from the open-bin
/// view, so a single value may be reused across simulations.
#[derive(Debug, Clone, Copy, Default)]
pub struct FirstFit;

impl FirstFit {
    /// Create a First Fit selector.
    pub fn new() -> FirstFit {
        FirstFit
    }
}

impl<Sz: Demand> BinSelector<Sz> for FirstFit {
    fn name(&self) -> &'static str {
        "FF"
    }

    fn select(
        &mut self,
        bins: &[GOpenBinView<Sz>],
        item: &GArrivingItem<Sz>,
        _capacity: Sz,
    ) -> Decision {
        // Bin ids are assigned in opening order, so min-id == earliest opened.
        argmin_fitting(bins, item.size, |b| b.id)
            .map(|b| Decision::Use(b.id))
            .unwrap_or(Decision::OPEN)
    }

    fn is_any_fit(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bin::BinId;
    use crate::engine::{any_fit_violations, simulate_validated};
    use crate::instance::InstanceBuilder;
    use crate::item::ItemId;

    #[test]
    fn ff_prefers_earliest_opened_bin() {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 10, 7); // b0
        b.add(1, 10, 7); // b1
        b.add(2, 10, 3); // fits both; must go to b0
        let inst = b.build().unwrap();
        let trace = simulate_validated(&inst, &mut FirstFit::new());
        assert_eq!(trace.bin_of(ItemId(2)), BinId(0));
        assert!(any_fit_violations(&inst, &trace).is_empty());
    }

    #[test]
    fn ff_reuses_capacity_freed_by_departures() {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 3, 7); // departs early
        b.add(0, 10, 3); // keeps b0 open
        b.add(5, 10, 7); // must reuse b0, not open a new bin
        let inst = b.build().unwrap();
        let trace = simulate_validated(&inst, &mut FirstFit::new());
        assert_eq!(trace.bins_used(), 1);
    }

    #[test]
    fn ff_earliest_opened_not_lowest_level() {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 10, 8); // b0, level 8
        b.add(1, 10, 2); // b1 (does not fit b0? 8+2=10 fits!) ...
        let inst = b.build().unwrap();
        let trace = simulate_validated(&inst, &mut FirstFit::new());
        // 8 + 2 == 10 == W fits exactly: one bin.
        assert_eq!(trace.bins_used(), 1);
    }

    #[test]
    fn ff_exact_fit_boundary() {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 10, 5);
        b.add(0, 10, 5); // exact fill
        b.add(0, 10, 1); // overflow -> new bin
        let inst = b.build().unwrap();
        let trace = simulate_validated(&inst, &mut FirstFit::new());
        assert_eq!(trace.bins_used(), 2);
        assert_eq!(trace.bin_of(ItemId(2)), BinId(1));
    }
}
