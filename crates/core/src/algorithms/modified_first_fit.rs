//! Modified First Fit (MFF) — the paper's contribution (§4.4).
//!
//! MFF fixes a classification threshold `W/k` for a parameter `k > 1`:
//! items of size `≥ W/k` are **large**, the rest **small**. Large and small
//! items are packed by two *independent* First Fit instances — a small item
//! is never placed into a large-item bin nor vice versa, even when it would
//! fit. Bins carry the class as their [`BinTag`] so the separation is
//! visible in traces.
//!
//! Competitive ratios proved in the paper:
//! * µ unknown, `k = 8`: at most `8/7·µ + 55/7`;
//! * µ known, `k = µ + 7`: at most `µ + 8` (semi-online).
//!
//! Both beat First Fit's general bound `2µ + 13` for all µ ≥ 1.
//!
//! [`BinTag`]: crate::bin::BinTag

use crate::bin::{BinTag, GOpenBinView};
use crate::demand::Demand;
use crate::item::GArrivingItem;
use crate::packer::{BinSelector, Decision};
use crate::ratio::Ratio;

/// Tag carried by bins serving large items (`s ≥ W/k`).
pub const LARGE_TAG: BinTag = BinTag(1);
/// Tag carried by bins serving small items (`s < W/k`).
pub const SMALL_TAG: BinTag = BinTag(2);

/// The size class MFF assigns to an item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemClass {
    /// `s(r) ≥ W/k`.
    Large,
    /// `s(r) < W/k`.
    Small,
}

impl ItemClass {
    /// The bin tag a bin of this class carries.
    pub fn tag(self) -> BinTag {
        match self {
            ItemClass::Large => LARGE_TAG,
            ItemClass::Small => SMALL_TAG,
        }
    }
}

/// Modified First Fit with threshold parameter `k = k_num / k_den > 1`.
#[derive(Debug, Clone, Copy)]
pub struct ModifiedFirstFit {
    k_num: u64,
    k_den: u64,
}

impl ModifiedFirstFit {
    /// MFF with an integer `k ≥ 2`. The paper's µ-oblivious setting is
    /// `k = 8`.
    ///
    /// # Panics
    /// Panics if `k < 2` (the classification needs `k > 1`).
    pub fn new(k: u64) -> ModifiedFirstFit {
        Self::with_rational_k(k, 1)
    }

    /// MFF with a rational `k = num/den`, which must exceed 1.
    ///
    /// # Panics
    /// Panics unless `num > den > 0`.
    pub fn with_rational_k(num: u64, den: u64) -> ModifiedFirstFit {
        assert!(den > 0, "MFF: k denominator must be positive");
        assert!(num > den, "MFF: k must exceed 1, got {num}/{den}");
        ModifiedFirstFit {
            k_num: num,
            k_den: den,
        }
    }

    /// The semi-online setting of §4.4: when µ is known, `k = µ + 7`
    /// minimizes `max{k, (µ+6)/(1−1/k)}` and yields the `µ + 8` bound.
    pub fn for_known_mu(mu: u64) -> ModifiedFirstFit {
        ModifiedFirstFit::new(mu + 7)
    }

    /// The classification threshold parameter `k`, exactly.
    pub fn k(&self) -> Ratio {
        Ratio::new(self.k_num as u128, self.k_den as u128)
    }

    /// Classify a size against capacity: large iff `s ≥ W/k` in **some**
    /// dimension, i.e. `∃d: s_d·k ≥ W_d`, evaluated exactly as
    /// `s_d·k_num ≥ W_d·k_den`. At `D = 1` the existential quantifier is
    /// vacuous and this is precisely the paper's scalar threshold.
    pub fn classify<Sz: Demand>(&self, size: Sz, capacity: Sz) -> ItemClass {
        if size.any_component_ge_frac(&capacity, self.k_num as u128, self.k_den as u128) {
            ItemClass::Large
        } else {
            ItemClass::Small
        }
    }
}

impl<Sz: Demand> BinSelector<Sz> for ModifiedFirstFit {
    fn name(&self) -> &'static str {
        "MFF"
    }

    fn select(
        &mut self,
        bins: &[GOpenBinView<Sz>],
        item: &GArrivingItem<Sz>,
        capacity: Sz,
    ) -> Decision {
        let class = self.classify(item.size, capacity);
        let tag = class.tag();
        // First Fit restricted to this class's bins: min id among fitting
        // bins with the matching tag.
        let mut chosen = None;
        for b in bins {
            if b.tag == tag && b.fits(item.size) {
                chosen = Some(b.id);
                break; // bins are in opening order, first hit is FF's choice
            }
        }
        match chosen {
            Some(id) => Decision::Use(id),
            None => Decision::Open { tag },
        }
    }

    // MFF is NOT Any Fit: it refuses cross-class placements.
    fn is_any_fit(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Size;

    #[test]
    fn classification_threshold_is_inclusive_for_large() {
        let mff = ModifiedFirstFit::new(8);
        let w = Size(800);
        // W/k = 100: size 100 is large (>=), 99 is small.
        assert_eq!(mff.classify(Size(100), w), ItemClass::Large);
        assert_eq!(mff.classify(Size(99), w), ItemClass::Small);
        assert_eq!(mff.classify(Size(800), w), ItemClass::Large);
        assert_eq!(mff.classify(Size(1), w), ItemClass::Small);
    }

    #[test]
    fn rational_k_classification() {
        // k = 3/2: threshold W/k = 2W/3.
        let mff = ModifiedFirstFit::with_rational_k(3, 2);
        let w = Size(9);
        assert_eq!(mff.classify(Size(6), w), ItemClass::Large); // 6 = 2*9/3
        assert_eq!(mff.classify(Size(5), w), ItemClass::Small);
    }

    #[test]
    fn known_mu_uses_k_mu_plus_7() {
        let mff = ModifiedFirstFit::for_known_mu(10);
        assert_eq!(mff.k(), Ratio::from_int(17));
    }

    #[test]
    #[should_panic(expected = "must exceed 1")]
    fn k_of_one_is_rejected() {
        let _ = ModifiedFirstFit::new(1);
    }
}

#[cfg(test)]
mod engine_tests {
    use super::*;
    use crate::engine::simulate_validated;
    use crate::instance::InstanceBuilder;

    #[test]
    fn mff_separates_classes_even_when_mixing_would_fit() {
        // W = 80, k = 8 -> threshold 10. One large item (level 20) leaves
        // plenty of room, but the small item must open its own bin.
        let mut b = InstanceBuilder::new(80);
        b.add(0, 10, 20); // large
        b.add(1, 10, 5); // small
        let inst = b.build().unwrap();
        let trace = simulate_validated(&inst, &mut ModifiedFirstFit::new(8));
        assert_eq!(trace.bins_used(), 2);
        assert_eq!(trace.bins[0].tag, LARGE_TAG);
        assert_eq!(trace.bins[1].tag, SMALL_TAG);
    }

    #[test]
    fn mff_is_first_fit_within_each_class() {
        let mut b = InstanceBuilder::new(80);
        // Two large bins; a third large item fits the earliest.
        b.add(0, 10, 50); // large -> b0
        b.add(1, 10, 50); // large, 50+50 > 80 -> b1
        b.add(2, 10, 30); // large, fits b0 (50+30=80) -> b0
                          // Small items fill their own FF sequence.
        b.add(3, 10, 5); // small -> b2
        b.add(4, 10, 5); // small -> fits b2
        let inst = b.build().unwrap();
        let trace = simulate_validated(&inst, &mut ModifiedFirstFit::new(8));
        assert_eq!(trace.bins_used(), 3);
        assert_eq!(trace.bin_of(crate::item::ItemId(2)).0, 0);
        assert_eq!(trace.bin_of(crate::item::ItemId(4)).0, 2);
    }

    #[test]
    fn mff_every_bin_is_single_class() {
        let mut b = InstanceBuilder::new(100);
        let mut t = 0;
        for i in 0..60 {
            let size = if i % 3 == 0 { 30 } else { 4 };
            b.add(t, t + 37 + (i % 11), size);
            t += 2;
        }
        let inst = b.build().unwrap();
        let mff = ModifiedFirstFit::new(8);
        let trace = simulate_validated(&inst, &mut mff.clone());
        for bin in &trace.bins {
            let classes: Vec<ItemClass> = bin
                .items
                .iter()
                .map(|&id| mff.classify(inst.item(id).size, inst.capacity()))
                .collect();
            assert!(
                classes.windows(2).all(|w| w[0] == w[1]),
                "bin {} mixes classes",
                bin.id
            );
            let expected_tag = classes[0].tag();
            assert_eq!(bin.tag, expected_tag);
        }
    }
}
