//! Worst Fit (WF): the open bin with the *largest* residual capacity that
//! fits. An Any Fit algorithm, so Theorem 1's lower bound of µ applies; it
//! serves as a load-spreading foil to Best Fit in the experiments.

use super::argmin_fitting;
use crate::bin::OpenBinView;
use crate::item::{ArrivingItem, Size};
use crate::packer::{BinSelector, Decision};

/// Worst Fit packing (ties toward the earliest-opened bin).
#[derive(Debug, Clone, Copy, Default)]
pub struct WorstFit;

impl WorstFit {
    /// Create a Worst Fit selector.
    pub fn new() -> WorstFit {
        WorstFit
    }
}

impl BinSelector for WorstFit {
    fn name(&self) -> &'static str {
        "WF"
    }

    fn select(&mut self, bins: &[OpenBinView], item: &ArrivingItem, _capacity: Size) -> Decision {
        argmin_fitting(bins, item.size, |b| b.level)
            .map(|b| Decision::Use(b.id))
            .unwrap_or(Decision::OPEN)
    }

    fn is_any_fit(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bin::BinId;
    use crate::engine::{any_fit_violations, simulate_validated};
    use crate::instance::InstanceBuilder;
    use crate::item::ItemId;

    #[test]
    fn wf_prefers_emptiest_bin() {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 10, 7); // b0
        b.add(1, 10, 4); // b1 (7+4 > 10)
        b.add(2, 10, 3); // fits both; WF -> b1 (level 4 < 7)
        let inst = b.build().unwrap();
        let trace = simulate_validated(&inst, &mut WorstFit::new());
        assert_eq!(trace.bin_of(ItemId(2)), BinId(1));
        assert!(any_fit_violations(&inst, &trace).is_empty());
    }

    #[test]
    fn wf_never_opens_when_fit_exists() {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 10, 9);
        b.add(1, 10, 1); // fits b0 exactly; WF must use it, not open
        let inst = b.build().unwrap();
        let trace = simulate_validated(&inst, &mut WorstFit::new());
        assert_eq!(trace.bins_used(), 1);
    }
}
