//! Zero-cost structured-span seam for the packing pipeline.
//!
//! Where [`Probe`](crate::probe::Probe) streams *what happened* (typed
//! engine events), a [`SpanRecorder`] captures *where the wall-clock time
//! went*: nested `enter`/`exit` intervals named after pipeline stages
//! ([`stage`]), recorded per thread and merged lock-free at report time —
//! each shard owns its recorder for the whole run, and the fan-in step
//! simply collects the finished recorders in shard order, the same
//! merge-at-report-time design the cluster uses for metrics registries.
//!
//! ## Zero cost when off
//!
//! The seam follows the probe contract exactly: every emission site is
//! guarded by `if R::ENABLED`, an associated `const` that is `false` for
//! [`NoSpans`], so the optimizer deletes the guarded blocks — including
//! every timestamp read. `simulate` therefore compiles to the same code
//! whether the span seam exists or not; the `packing_throughput` benchmark
//! (`span_overhead` group) keeps this honest.
//!
//! ## Who implements it
//!
//! `dbp-core` only defines the seam and the stage-name vocabulary.
//! Recorders live in `dbp-obs`: `SpanCollector` (full span capture for
//! Chrome-trace export) and `StageAggregator` (streaming per-stage
//! histograms for benches that cannot afford to buffer millions of spans).

/// One completed span: a named interval on one shard's timeline.
///
/// `start_ns` is relative to the recorder's epoch (shared across a cluster
/// run so shard streams merge onto one timeline); `parent` is the index of
/// the enclosing span in the same stream, or [`SpanEvent::ROOT`] for a
/// top-level span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Stage name (one of the [`stage`] constants, by convention).
    pub name: &'static str,
    /// Shard lane the span was recorded on (`u32::MAX` = the driver).
    pub shard: u32,
    /// Start, nanoseconds since the recorder's epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Index of the enclosing span in the same stream, or [`SpanEvent::ROOT`].
    pub parent: u32,
}

impl SpanEvent {
    /// Sentinel `parent` value for spans with no enclosing span.
    pub const ROOT: u32 = u32::MAX;

    /// End of the span, nanoseconds since the epoch.
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }
}

/// Canonical stage names, so every layer of the pipeline agrees on the
/// span taxonomy and consumers can rank/merge across shards by name.
pub mod stage {
    /// Whole arrival handling in the core engine (contains `decide`+`place`).
    pub const ARRIVAL: &str = "arrival";
    /// The `BinSelector::select` call alone.
    pub const DECIDE: &str = "decide";
    /// Placement bookkeeping: state update, view maintenance, probe events.
    pub const PLACE: &str = "place";
    /// One departure: state update, view maintenance, possible bin close.
    pub const DEPARTURE: &str = "departure";
    /// Cluster driver: router assignment + instance restriction.
    pub const PARTITION: &str = "partition";
    /// Cluster driver: the router's item→shard assignment alone.
    pub const ROUTE: &str = "route";
    /// Cluster driver: building the per-shard work units (batch handoff).
    pub const BATCH_ENQUEUE: &str = "batch_enqueue";
    /// Cluster driver: the bounded pool running all shards (wall of the
    /// parallel section).
    pub const DISPATCH: &str = "dispatch";
    /// Per shard: time between pool start and a worker claiming the shard.
    pub const QUEUE_WAIT: &str = "queue_wait";
    /// Per shard: a worker actively running the shard (claim → done).
    pub const SHARD_BUSY: &str = "shard_busy";
    /// Per shard: trace self-validation after the run.
    pub const VALIDATE: &str = "validate";
    /// Per shard: building the shard's `SystemReport` (billing, manifest).
    pub const REPORT_BUILD: &str = "report_build";
    /// Cluster driver: collecting shard outcomes and summing the ledger.
    pub const FAN_IN: &str = "fan_in";
    /// Cluster driver: capturing the merged run manifest (inside fan-in).
    pub const MANIFEST_MERGE: &str = "manifest_merge";
    /// Journal: serializing + appending one framed record.
    pub const JOURNAL_APPEND: &str = "journal_append";
    /// Journal: flush + fsync (nested in `journal_append` when policy-due).
    pub const JOURNAL_FSYNC: &str = "journal_fsync";
    /// Cloudsim: one retry batch firing (backoff expiry → re-dispatch).
    pub const RETRY: &str = "retry";
    /// Cloudsim: re-dispatching the orphans of one crash.
    pub const REDISPATCH: &str = "redispatch";
    /// Per shard: rebuilding a killed shard's snapshot from its WAL.
    pub const SHARD_RESTART: &str = "shard_restart";
    /// Per shard: replaying the recovered snapshot into a resumed engine.
    pub const SHARD_REPLAY: &str = "shard_replay";
    /// Cluster driver: re-routing a dead shard's unarrived sessions onto
    /// the healthy shards.
    pub const REROUTE: &str = "reroute";
}

/// Receiver of `enter`/`exit` stage boundaries. The recorder takes its own
/// timestamps, so instrumentation sites stay two guarded calls with no
/// clock reads of their own.
///
/// `exit` calls must pair with the most recent unmatched `enter` (spans
/// nest properly); recorders may debug-assert this but must not panic in
/// release builds on unbalanced streams — a best-effort trace beats a dead
/// engine.
pub trait SpanRecorder {
    /// Compile-time switch: when `false`, instrumentation sites skip both
    /// the call and the timestamp read entirely.
    const ENABLED: bool = true;

    /// Open a span named `name` nested under the current open span.
    fn enter(&mut self, name: &'static str);

    /// Close the most recently opened span.
    fn exit(&mut self);
}

/// The default recorder: does nothing, costs nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoSpans;

impl SpanRecorder for NoSpans {
    const ENABLED: bool = false;

    #[inline(always)]
    fn enter(&mut self, _name: &'static str) {}

    #[inline(always)]
    fn exit(&mut self) {}
}

impl<R: SpanRecorder> SpanRecorder for &mut R {
    const ENABLED: bool = R::ENABLED;

    fn enter(&mut self, name: &'static str) {
        (**self).enter(name);
    }

    fn exit(&mut self) {
        (**self).exit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nospans_is_disabled_and_forwarding_preserves_the_flag() {
        let flags = [NoSpans::ENABLED, <&mut NoSpans as SpanRecorder>::ENABLED];
        assert_eq!(flags, [false, false]);

        struct Depth(i32, i32);
        impl SpanRecorder for Depth {
            fn enter(&mut self, _: &'static str) {
                self.0 += 1;
                self.1 = self.1.max(self.0);
            }
            fn exit(&mut self) {
                self.0 -= 1;
            }
        }
        const { assert!(<&mut Depth as SpanRecorder>::ENABLED) };
        let mut d = Depth(0, 0);
        let fwd = &mut d;
        fwd.enter(stage::ARRIVAL);
        fwd.enter(stage::DECIDE);
        fwd.exit();
        fwd.exit();
        assert_eq!((d.0, d.1), (0, 2));
    }

    #[test]
    fn span_event_accessors() {
        let ev = SpanEvent {
            name: stage::DECIDE,
            shard: 3,
            start_ns: 100,
            dur_ns: 40,
            parent: SpanEvent::ROOT,
        };
        assert_eq!(ev.end_ns(), 140);
        assert_eq!(ev.parent, u32::MAX);
    }
}
