//! The online packing algorithm interface.
//!
//! The engine owns the bins and the accounting; an algorithm is a
//! [`BinSelector`] — a strategy that, given the current open bins and an
//! arriving item, either picks an open bin or asks for a new one. The
//! selector never sees departure times ([`ArrivingItem`] has none), which
//! enforces the online model of the paper by construction.

use crate::bin::{BinId, BinTag, OpenBinView};
use crate::item::{ArrivingItem, Size};

/// The decision a selector makes for an arriving item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Pack the item into this open bin. The engine validates fit and
    /// panics on a selector bug (a bin that does not fit), since a wrong
    /// placement would silently corrupt every downstream measurement.
    Use(BinId),
    /// Open a new bin carrying `tag` and pack the item there.
    Open {
        /// Tag the new bin will carry for its whole lifetime.
        tag: BinTag,
    },
}

impl Decision {
    /// Open a new, untagged bin.
    pub const OPEN: Decision = Decision::Open {
        tag: BinTag::DEFAULT,
    };
}

/// An online packing strategy.
///
/// Implementations must be deterministic given their construction (randomized
/// strategies own a seeded RNG), so that every experiment is reproducible.
pub trait BinSelector {
    /// Short stable name used in reports ("FF", "BF", ...).
    fn name(&self) -> &'static str;

    /// Choose where the arriving `item` goes. `bins` holds *all* currently
    /// open bins in opening order (ascending id); the selector is
    /// responsible for checking fit via [`OpenBinView::fits`]. `capacity` is
    /// the public bin capacity `W` (needed e.g. by MFF's size
    /// classification even when no bin is open yet).
    fn select(&mut self, bins: &[OpenBinView], item: &ArrivingItem, capacity: Size) -> Decision;

    /// Notification that a bin emptied and was closed by the engine.
    fn on_bin_closed(&mut self, _bin: BinId) {}

    /// Whether the strategy belongs to the Any Fit family: it never opens a
    /// new bin while some open bin can accommodate the item. This is a
    /// *claim* checked by property tests, not an enforcement.
    fn is_any_fit(&self) -> bool {
        false
    }
}

/// Blanket impl so `&mut S` can be passed where a selector is expected.
impl<S: BinSelector + ?Sized> BinSelector for &mut S {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn select(&mut self, bins: &[OpenBinView], item: &ArrivingItem, capacity: Size) -> Decision {
        (**self).select(bins, item, capacity)
    }
    fn on_bin_closed(&mut self, bin: BinId) {
        (**self).on_bin_closed(bin)
    }
    fn is_any_fit(&self) -> bool {
        (**self).is_any_fit()
    }
}

/// A boxed factory for selectors, letting experiment harnesses iterate over
/// algorithm families generically.
pub struct SelectorFactory {
    name: &'static str,
    make: Box<dyn Fn() -> Box<dyn BinSelector> + Send + Sync>,
}

impl SelectorFactory {
    /// Wrap a constructor closure under a roster name.
    pub fn new(
        name: &'static str,
        make: impl Fn() -> Box<dyn BinSelector> + Send + Sync + 'static,
    ) -> SelectorFactory {
        SelectorFactory {
            name,
            make: Box::new(make),
        }
    }

    /// The roster name of this factory.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Construct a fresh selector.
    pub fn build(&self) -> Box<dyn BinSelector> {
        (self.make)()
    }
}

impl core::fmt::Debug for SelectorFactory {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SelectorFactory")
            .field("name", &self.name)
            .finish()
    }
}
