//! The online packing algorithm interface.
//!
//! The engine owns the bins and the accounting; an algorithm is a
//! [`BinSelector`] — a strategy that, given the current open bins and an
//! arriving item, either picks an open bin or asks for a new one. The
//! selector never sees departure times ([`ArrivingItem`] has none), which
//! enforces the online model of the paper by construction.

use crate::bin::{BinId, BinTag, GOpenBinView};
use crate::demand::Demand;
use crate::item::{GArrivingItem, Size};

/// The decision a selector makes for an arriving item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Pack the item into this open bin. The engine validates fit and
    /// panics on a selector bug (a bin that does not fit), since a wrong
    /// placement would silently corrupt every downstream measurement.
    Use(BinId),
    /// Open a new bin carrying `tag` and pack the item there.
    Open {
        /// Tag the new bin will carry for its whole lifetime.
        tag: BinTag,
    },
}

impl Decision {
    /// Open a new, untagged bin.
    pub const OPEN: Decision = Decision::Open {
        tag: BinTag::DEFAULT,
    };
}

/// An online packing strategy.
///
/// Implementations must be deterministic given their construction (randomized
/// strategies own a seeded RNG), so that every experiment is reproducible.
///
/// ## State-change notifications
///
/// Beyond [`select`](BinSelector::select), the engine notifies the selector
/// of every bin state change it performs: [`on_bin_opened`],
/// [`on_item_placed`], [`on_item_departed`] and [`on_bin_closed`]. Plain
/// selectors ignore them (the defaults are no-ops); *indexed* selectors
/// (`crate::algorithms::indexed`) use them to maintain O(log m) search
/// structures and return `false` from [`needs_views`], which lets the
/// engine skip open-bin view maintenance entirely on the hot path.
///
/// Every driver of a selector (the engine, `dbp-cloudsim`'s resilient
/// dispatcher) must invoke the hooks faithfully; a hook referring to a bin
/// id the selector has never seen opened must be tolerated (the fault
/// injection layer burns ids on failed boots).
///
/// [`on_bin_opened`]: BinSelector::on_bin_opened
/// [`on_item_placed`]: BinSelector::on_item_placed
/// [`on_item_departed`]: BinSelector::on_item_departed
/// [`on_bin_closed`]: BinSelector::on_bin_closed
/// [`needs_views`]: BinSelector::needs_views
pub trait BinSelector<Sz: Demand = Size> {
    /// Short stable name used in reports ("FF", "BF", ...).
    fn name(&self) -> &'static str;

    /// Choose where the arriving `item` goes. `bins` holds *all* currently
    /// open bins in opening order (ascending id); the selector is
    /// responsible for checking fit via [`OpenBinView::fits`]. `capacity` is
    /// the public bin capacity `W` (needed e.g. by MFF's size
    /// classification even when no bin is open yet).
    ///
    /// When [`needs_views`](BinSelector::needs_views) is `false`, `bins`
    /// may be empty regardless of the true open set — the selector answers
    /// from its own hook-maintained index.
    fn select(
        &mut self,
        bins: &[GOpenBinView<Sz>],
        item: &GArrivingItem<Sz>,
        capacity: Sz,
    ) -> Decision;

    /// Whether this selector reads the `bins` slice passed to
    /// [`select`](BinSelector::select). Must be constant for the lifetime
    /// of the selector. Indexed selectors return `false`, letting the
    /// engine drop per-arrival view maintenance from the hot path.
    fn needs_views(&self) -> bool {
        true
    }

    /// Notification that a new bin materialized carrying `tag`, holding its
    /// first item (bin level = `level`). Follows the selector's own
    /// `Decision::Open` under the engine; under fault injection a delayed
    /// boot may deliver it later, or never (failed boot — see
    /// [`on_bin_closed`](BinSelector::on_bin_closed)).
    fn on_bin_opened(&mut self, _bin: BinId, _tag: BinTag, _level: Sz) {}

    /// Notification that an item was added to an already open bin; `level`
    /// is the bin's level *after* the placement.
    fn on_item_placed(&mut self, _bin: BinId, _level: Sz) {}

    /// Notification that an item left its bin; `level` is the bin's level
    /// *after* the departure. If the bin closes as a result,
    /// [`on_bin_closed`](BinSelector::on_bin_closed) follows immediately.
    fn on_item_departed(&mut self, _bin: BinId, _level: Sz) {}

    /// Notification that a bin is gone: it emptied and was closed, crashed
    /// (fault injection, possibly non-empty), or its id was burned by a
    /// failed boot without ever opening. Ids are never reused.
    fn on_bin_closed(&mut self, _bin: BinId) {}

    /// Snapshot-resume replay is re-applying a decision this selector (an
    /// identically constructed instance of it) made in a previous process,
    /// *instead of* calling [`select`](BinSelector::select). Selectors whose
    /// select-time state is a function of their own decisions must advance
    /// it here exactly as `select` would have: Next Fit updates its current
    /// bin on `Open`, Random Fit consumes the RNG draw a `Use` implies.
    /// Stateless selectors and purely hook-maintained (indexed) selectors
    /// keep the default no-op. The usual state hooks (`on_bin_opened` etc.)
    /// still fire during replay, after this call. `capacity` is the same
    /// value `select` would have received.
    fn on_decision_replayed(
        &mut self,
        _item: &GArrivingItem<Sz>,
        _decision: Decision,
        _capacity: Sz,
    ) {
    }

    /// Whether the strategy belongs to the Any Fit family: it never opens a
    /// new bin while some open bin can accommodate the item. This is a
    /// *claim* checked by property tests, not an enforcement.
    fn is_any_fit(&self) -> bool {
        false
    }
}

/// Blanket impl so `&mut S` can be passed where a selector is expected.
impl<Sz: Demand, S: BinSelector<Sz> + ?Sized> BinSelector<Sz> for &mut S {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn select(
        &mut self,
        bins: &[GOpenBinView<Sz>],
        item: &GArrivingItem<Sz>,
        capacity: Sz,
    ) -> Decision {
        (**self).select(bins, item, capacity)
    }
    fn needs_views(&self) -> bool {
        (**self).needs_views()
    }
    fn on_bin_opened(&mut self, bin: BinId, tag: BinTag, level: Sz) {
        (**self).on_bin_opened(bin, tag, level)
    }
    fn on_item_placed(&mut self, bin: BinId, level: Sz) {
        (**self).on_item_placed(bin, level)
    }
    fn on_item_departed(&mut self, bin: BinId, level: Sz) {
        (**self).on_item_departed(bin, level)
    }
    fn on_bin_closed(&mut self, bin: BinId) {
        (**self).on_bin_closed(bin)
    }
    fn on_decision_replayed(&mut self, item: &GArrivingItem<Sz>, decision: Decision, capacity: Sz) {
        (**self).on_decision_replayed(item, decision, capacity)
    }
    fn is_any_fit(&self) -> bool {
        (**self).is_any_fit()
    }
}

/// Forwarding impl so `Box<dyn BinSelector>` is itself a selector — the
/// streaming engine owns its selector, and long-running daemons pick the
/// algorithm at run time.
impl<Sz: Demand, S: BinSelector<Sz> + ?Sized> BinSelector<Sz> for Box<S> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn select(
        &mut self,
        bins: &[GOpenBinView<Sz>],
        item: &GArrivingItem<Sz>,
        capacity: Sz,
    ) -> Decision {
        (**self).select(bins, item, capacity)
    }
    fn needs_views(&self) -> bool {
        (**self).needs_views()
    }
    fn on_bin_opened(&mut self, bin: BinId, tag: BinTag, level: Sz) {
        (**self).on_bin_opened(bin, tag, level)
    }
    fn on_item_placed(&mut self, bin: BinId, level: Sz) {
        (**self).on_item_placed(bin, level)
    }
    fn on_item_departed(&mut self, bin: BinId, level: Sz) {
        (**self).on_item_departed(bin, level)
    }
    fn on_bin_closed(&mut self, bin: BinId) {
        (**self).on_bin_closed(bin)
    }
    fn on_decision_replayed(&mut self, item: &GArrivingItem<Sz>, decision: Decision, capacity: Sz) {
        (**self).on_decision_replayed(item, decision, capacity)
    }
    fn is_any_fit(&self) -> bool {
        (**self).is_any_fit()
    }
}

/// A boxed factory for selectors, letting experiment harnesses iterate over
/// algorithm families generically.
pub struct SelectorFactory {
    name: &'static str,
    make: Box<dyn Fn() -> Box<dyn BinSelector> + Send + Sync>,
}

impl SelectorFactory {
    /// Wrap a constructor closure under a roster name.
    pub fn new(
        name: &'static str,
        make: impl Fn() -> Box<dyn BinSelector> + Send + Sync + 'static,
    ) -> SelectorFactory {
        SelectorFactory {
            name,
            make: Box::new(make),
        }
    }

    /// The roster name of this factory.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Construct a fresh selector.
    pub fn build(&self) -> Box<dyn BinSelector> {
        (self.make)()
    }
}

impl core::fmt::Debug for SelectorFactory {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SelectorFactory")
            .field("name", &self.name)
            .finish()
    }
}
