//! Bounded-memory event-time streaming core.
//!
//! The batch entry points ([`simulate_probed`]) replay a pre-materialized,
//! pre-sorted `Vec` of events — fine for experiments, impossible for a live
//! dispatcher that sees arrivals one at a time and must never look ahead.
//! [`StreamingEngine`] drives the exact same struct-of-arrays arena as the
//! batch engine from an *incremental* push stream:
//!
//! * arrivals enter via [`push_arrival`] (departure known up front, as in a
//!   replayed workload) or [`push_open_arrival`] + [`push_departure`] (the
//!   live-daemon shape, where the departure is a separate future message);
//! * pending departures wait in a binary heap keyed `(tick, item id)` — the
//!   same order the batch scheduler's stable sort produces, so equal-tick
//!   departures drain in item-id order and *before* equal-tick arrivals;
//! * event time only moves forward: a push behind the engine's horizon is a
//!   typed [`StreamError::TimeTravel`], never silent reordering;
//! * memory is bounded by the *live* state (open bins + in-flight items +
//!   closed-bin records), not by the stream length processed so far per
//!   tick — there is no materialized schedule.
//!
//! Fed the same stream, the streaming engine is **byte-identical** to
//! [`simulate_probed`]: same [`PackingTrace`], same probe event sequence
//! (hence same JSONL export and digest). The equivalence proptests in
//! `proptests.rs` keep this honest across every shipped selector.
//!
//! Wall time is injected, never read ambiently: a [`Clock`] maps whatever
//! the caller's time source is onto monotonic ticks, with [`ManualClock`]
//! for tests/replays and [`WallClock`] for daemons.
//!
//! [`simulate_probed`]: crate::engine::simulate_probed
//! [`push_arrival`]: StreamingEngine::push_arrival
//! [`push_open_arrival`]: StreamingEngine::push_open_arrival
//! [`push_departure`]: StreamingEngine::push_departure

use crate::bin::BinId;
use crate::demand::Demand;
use crate::engine::State;
use crate::item::{GArrivingItem, GItem, ItemId, RegionId, Size};
use crate::packer::BinSelector;
use crate::probe::{GProbeEvent, Probe};
use crate::time::Tick;
use crate::trace::GPackingTrace;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// A monotonic tick source injected into streaming drivers. Implementations
/// must never go backwards; the engine still checks and returns
/// [`StreamError::TimeTravel`] if one does.
pub trait Clock {
    /// The current tick.
    fn now(&mut self) -> Tick;
}

/// A hand-advanced clock for tests and event-time replays: [`now`] returns
/// whatever the last [`advance_to`] set, and never moves on its own.
///
/// [`now`]: ManualClock::now
/// [`advance_to`]: ManualClock::advance_to
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ManualClock {
    now: Tick,
}

impl ManualClock {
    /// A clock starting at `start`.
    pub fn new(start: Tick) -> ManualClock {
        ManualClock { now: start }
    }

    /// Move the clock forward to `t`. Saturating: a target behind the
    /// current reading leaves the clock unchanged (clocks never rewind).
    pub fn advance_to(&mut self, t: Tick) {
        if t > self.now {
            self.now = t;
        }
    }
}

impl Clock for ManualClock {
    fn now(&mut self) -> Tick {
        self.now
    }
}

/// Wall-clock ticks for live daemons: tick 0 is the moment of construction,
/// and the reading advances at `ticks_per_sec` against
/// [`std::time::Instant`] (monotonic by construction).
#[derive(Debug, Clone, Copy)]
pub struct WallClock {
    epoch: std::time::Instant,
    ticks_per_sec: u64,
}

impl WallClock {
    /// A clock whose tick 0 is now.
    ///
    /// # Panics
    /// Panics if `ticks_per_sec` is zero.
    pub fn starting_now(ticks_per_sec: u64) -> WallClock {
        assert!(ticks_per_sec > 0, "a clock needs a nonzero rate");
        WallClock {
            epoch: std::time::Instant::now(),
            ticks_per_sec,
        }
    }
}

impl Clock for WallClock {
    fn now(&mut self) -> Tick {
        let elapsed = self.epoch.elapsed();
        let whole = elapsed.as_secs().saturating_mul(self.ticks_per_sec);
        let frac = elapsed.subsec_nanos() as u64 * self.ticks_per_sec / 1_000_000_000;
        Tick(whole.saturating_add(frac))
    }
}

/// Typed rejection from the streaming engine, generic over the demand type
/// (scalar [`Size`] via the [`StreamError`] alias). Every variant is a
/// *caller* error: the engine's own state stays consistent after returning
/// one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GStreamError<Sz> {
    /// The push carried a tick behind the engine's event-time horizon.
    TimeTravel {
        /// The offending tick.
        at: Tick,
        /// The horizon it would have to rewind past.
        horizon: Tick,
    },
    /// An arrival stamped after the clock reading it was pushed with — the
    /// item claims to arrive in the caller's future.
    ArrivalInFuture {
        /// The item.
        item: ItemId,
        /// Its claimed arrival tick.
        arrival: Tick,
        /// The clock reading supplied with the push.
        now: Tick,
    },
    /// A departure tick not strictly after the arrival tick.
    DepartureNotAfterArrival {
        /// The item.
        item: ItemId,
        /// Its arrival tick.
        arrival: Tick,
        /// The offending departure tick.
        departure: Tick,
    },
    /// Zero-size items carry no demand and are rejected, matching
    /// `Instance` validation.
    ZeroSize {
        /// The item.
        item: ItemId,
    },
    /// The item does not fit an empty bin (some demand component exceeds
    /// the matching capacity component).
    Oversized {
        /// The item.
        item: ItemId,
        /// Its size.
        size: Sz,
        /// The bin capacity it exceeds.
        capacity: Sz,
    },
    /// An item id was pushed twice.
    DuplicateItem {
        /// The repeated id.
        item: ItemId,
    },
    /// A departure for an id that never arrived.
    UnknownItem {
        /// The unknown id.
        item: ItemId,
    },
    /// A departure for an item that already departed, or whose departure is
    /// already scheduled on the heap.
    AlreadyDeparted {
        /// The item.
        item: ItemId,
    },
    /// [`finish`](StreamingEngine::finish) was called while open-mode items
    /// were still in flight (no departure pushed yet).
    ItemsStillOpen {
        /// How many items have not departed.
        open: usize,
    },
    /// [`finish`](StreamingEngine::finish) requires dense ids `0..n` (the
    /// trace's assignment table is indexed by id); this id was never pushed.
    MissingItem {
        /// The gap.
        item: ItemId,
    },
}

/// The scalar stream error of the source paper's model.
pub type StreamError = GStreamError<Size>;

impl<Sz: fmt::Display> fmt::Display for GStreamError<Sz> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GStreamError::TimeTravel { at, horizon } => {
                write!(f, "time travel: tick {at} is behind the horizon {horizon}")
            }
            GStreamError::ArrivalInFuture { item, arrival, now } => {
                write!(
                    f,
                    "item {item} arrives at {arrival}, after the clock reading {now}"
                )
            }
            GStreamError::DepartureNotAfterArrival {
                item,
                arrival,
                departure,
            } => write!(
                f,
                "item {item} departs at {departure}, not after its arrival {arrival}"
            ),
            GStreamError::ZeroSize { item } => write!(f, "item {item} has size 0"),
            GStreamError::Oversized {
                item,
                size,
                capacity,
            } => write!(f, "item {item} (size {size}) exceeds capacity {capacity}"),
            GStreamError::DuplicateItem { item } => write!(f, "item {item} was pushed twice"),
            GStreamError::UnknownItem { item } => {
                write!(f, "departure for unknown item {item}")
            }
            GStreamError::AlreadyDeparted { item } => {
                write!(f, "item {item} already departed")
            }
            GStreamError::ItemsStillOpen { open } => {
                write!(f, "{open} item(s) still open at finish")
            }
            GStreamError::MissingItem { item } => {
                write!(f, "id space has a gap: item {item} was never pushed")
            }
        }
    }
}

impl<Sz: fmt::Debug + fmt::Display> std::error::Error for GStreamError<Sz> {}

/// Per-item lifecycle in the streaming engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ItemPhase {
    /// Never seen.
    Absent,
    /// Placed; departure scheduled on the heap.
    Scheduled,
    /// Placed via [`StreamingEngine::push_open_arrival`]; departure will
    /// arrive as a future [`StreamingEngine::push_departure`].
    Open,
    /// Departed.
    Departed,
}

/// The bounded-memory event-time engine. See the module docs for the
/// contract; construction takes ownership of the selector and probe because
/// a streaming run has no instance-scoped borrow to hang them on.
pub struct StreamingEngine<S: BinSelector<Sz>, P: Probe<Sz>, Sz: Demand = Size> {
    capacity: Sz,
    selector: S,
    probe: P,
    keep_views: bool,
    st: State<Sz>,
    /// Min-heap of scheduled departures keyed `(tick, item id)` — exactly
    /// the order the batch scheduler's stable sort yields for equal-tick
    /// departures.
    departures: BinaryHeap<Reverse<(Tick, ItemId)>>,
    /// Per-item size (needed at departure) and lifecycle phase, indexed by
    /// item id like the arena's per-item columns.
    sizes: Vec<Sz>,
    phase: Vec<ItemPhase>,
    /// Event-time horizon: no processed event may carry a smaller tick.
    horizon: Tick,
    /// Tick of the batch currently accumulating (its open-bin step is
    /// recorded lazily, once a later tick proves the batch ended).
    pending_step: Option<Tick>,
    /// Items currently placed and not yet departed.
    in_flight: usize,
    /// Arrivals accepted so far.
    arrived: u64,
}

impl<Sz: Demand, S: BinSelector<Sz>, P: Probe<Sz>> StreamingEngine<S, P, Sz> {
    /// A fresh engine for bins of the given `capacity`.
    ///
    /// # Panics
    /// Panics if any capacity component is zero.
    pub fn new(capacity: Sz, selector: S, probe: P) -> StreamingEngine<S, P, Sz> {
        assert!(
            !capacity.has_zero_component(),
            "bin capacity must be positive in every dimension"
        );
        let keep_views = P::ENABLED || selector.needs_views();
        StreamingEngine {
            capacity,
            selector,
            probe,
            keep_views,
            st: State::with_items(0),
            departures: BinaryHeap::new(),
            sizes: Vec::new(),
            phase: Vec::new(),
            horizon: Tick(0),
            pending_step: None,
            in_flight: 0,
            arrived: 0,
        }
    }

    /// The event-time horizon: the largest tick of any processed event.
    pub fn horizon(&self) -> Tick {
        self.horizon
    }

    /// Bins currently open.
    pub fn open_bins(&self) -> usize {
        self.st.open_count
    }

    /// Bins ever opened.
    pub fn bins_opened(&self) -> usize {
        self.st.bins()
    }

    /// Items currently placed and not yet departed.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Arrivals accepted so far.
    pub fn arrivals(&self) -> u64 {
        self.arrived
    }

    /// Departures scheduled on the heap but not yet fired.
    pub fn pending_departures(&self) -> usize {
        self.departures.len()
    }

    /// Borrow the probe (for live scraping of metrics-bearing probes).
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// Mutably borrow the probe (for flushing journal-bearing probes).
    pub fn probe_mut(&mut self) -> &mut P {
        &mut self.probe
    }

    /// Grow the per-item columns to cover `idx` and report its phase.
    fn phase_of(&mut self, idx: usize) -> ItemPhase {
        if idx >= self.phase.len() {
            self.sizes.resize(idx + 1, Sz::ZERO);
            self.phase.resize(idx + 1, ItemPhase::Absent);
            self.st.ensure_item(idx);
        }
        self.phase[idx]
    }

    /// Lazy step recording: called with each event's tick, in order. When
    /// the tick moves past the pending batch, the batch's open-bin count is
    /// recorded — reproducing the batch engine's record-at-batch-end rule.
    fn note_tick(&mut self, t: Tick) {
        match self.pending_step {
            Some(p) if p == t => {}
            Some(p) => {
                self.st.record_step(p);
                self.pending_step = Some(t);
            }
            None => self.pending_step = Some(t),
        }
    }

    /// Fire every scheduled departure with tick ≤ `up_to` (departures run
    /// before arrivals at the same tick, per the engine's event order).
    fn drain_departures(&mut self, up_to: Tick) {
        while let Some(&Reverse((t, id))) = self.departures.peek() {
            if t > up_to {
                break;
            }
            self.departures.pop();
            self.note_tick(t);
            self.st.apply_departure(
                self.sizes[id.index()],
                &mut self.selector,
                &mut self.probe,
                self.keep_views,
                t,
                id,
            );
            self.phase[id.index()] = ItemPhase::Departed;
            self.in_flight -= 1;
            self.horizon = t;
        }
    }

    /// Shared arrival path: mirrors the batch engine's probe emission order
    /// exactly (`ItemArrived` → timed `select` → placement events →
    /// `on_decision_ns`).
    fn process_arrival(&mut self, arriving: GArrivingItem<Sz>) -> BinId {
        let tick = arriving.arrival;
        self.note_tick(tick);
        if P::ENABLED {
            self.probe.record(GProbeEvent::ItemArrived {
                at: tick,
                item: arriving.id,
                size: arriving.size,
            });
        }
        let started = if P::ENABLED {
            Some(std::time::Instant::now())
        } else {
            None
        };
        let decision = self
            .selector
            .select(&self.st.views, &arriving, self.capacity);
        self.st.apply_arrival(
            arriving.size,
            &mut self.selector,
            &mut self.probe,
            self.keep_views,
            self.capacity,
            tick,
            arriving.id,
            decision,
        );
        if let Some(started) = started {
            self.probe
                .on_decision_ns(started.elapsed().as_nanos() as u64);
        }
        self.horizon = tick;
        self.in_flight += 1;
        self.arrived += 1;
        self.st.assignment[arriving.id.index()].expect("apply_arrival always assigns")
    }

    /// Validate the parts of an arrival shared by both push flavors.
    fn check_arrival(
        &mut self,
        id: ItemId,
        arrival: Tick,
        size: Sz,
        now: Tick,
    ) -> Result<(), GStreamError<Sz>> {
        if arrival < self.horizon {
            return Err(GStreamError::TimeTravel {
                at: arrival,
                horizon: self.horizon,
            });
        }
        if arrival > now {
            return Err(GStreamError::ArrivalInFuture {
                item: id,
                arrival,
                now,
            });
        }
        if size.is_zero() {
            return Err(GStreamError::ZeroSize { item: id });
        }
        if !size.fits_within(self.capacity) {
            return Err(GStreamError::Oversized {
                item: id,
                size,
                capacity: self.capacity,
            });
        }
        if self.phase_of(id.index()) != ItemPhase::Absent {
            return Err(GStreamError::DuplicateItem { item: id });
        }
        Ok(())
    }

    /// Push one arrival whose departure is already known (the replayed-
    /// workload shape), processing it at `item.arrival` and scheduling the
    /// departure on the heap. `now` is the caller's clock reading; the
    /// arrival may not lie in its future. Returns the bin the item landed
    /// in.
    ///
    /// # Panics
    /// Panics if the selector returns an invalid decision — same contract
    /// as [`simulate`](crate::engine::simulate).
    pub fn push_arrival(&mut self, item: GItem<Sz>, now: Tick) -> Result<BinId, GStreamError<Sz>> {
        if item.departure <= item.arrival {
            return Err(GStreamError::DepartureNotAfterArrival {
                item: item.id,
                arrival: item.arrival,
                departure: item.departure,
            });
        }
        self.check_arrival(item.id, item.arrival, item.size, now)?;
        self.drain_departures(item.arrival);
        self.sizes[item.id.index()] = item.size;
        self.phase[item.id.index()] = ItemPhase::Scheduled;
        self.departures.push(Reverse((item.departure, item.id)));
        Ok(self.process_arrival(GArrivingItem::of(&item)))
    }

    /// Push one arrival whose departure is *not* known — the live-daemon
    /// shape, where the departure arrives later via [`push_departure`].
    ///
    /// [`push_departure`]: StreamingEngine::push_departure
    ///
    /// # Panics
    /// Same contract as [`push_arrival`](StreamingEngine::push_arrival).
    pub fn push_open_arrival(
        &mut self,
        id: ItemId,
        size: Sz,
        region: RegionId,
        now: Tick,
    ) -> Result<BinId, GStreamError<Sz>> {
        self.check_arrival(id, now, size, now)?;
        self.drain_departures(now);
        self.sizes[id.index()] = size;
        self.phase[id.index()] = ItemPhase::Open;
        Ok(self.process_arrival(GArrivingItem {
            id,
            arrival: now,
            size,
            region,
        }))
    }

    /// Depart an open-mode item at tick `now`. Scheduled departures with
    /// ticks ≤ `now` fire first, preserving heap order.
    pub fn push_departure(&mut self, id: ItemId, now: Tick) -> Result<(), GStreamError<Sz>> {
        if now < self.horizon {
            return Err(GStreamError::TimeTravel {
                at: now,
                horizon: self.horizon,
            });
        }
        match self.phase_of(id.index()) {
            ItemPhase::Absent => return Err(GStreamError::UnknownItem { item: id }),
            ItemPhase::Scheduled | ItemPhase::Departed => {
                return Err(GStreamError::AlreadyDeparted { item: id })
            }
            ItemPhase::Open => {}
        }
        self.drain_departures(now);
        self.note_tick(now);
        self.st.apply_departure(
            self.sizes[id.index()],
            &mut self.selector,
            &mut self.probe,
            self.keep_views,
            now,
            id,
        );
        self.phase[id.index()] = ItemPhase::Departed;
        self.in_flight -= 1;
        self.horizon = now;
        Ok(())
    }

    /// Advance event time to `now` without pushing anything: scheduled
    /// departures up to `now` fire. A reading behind the horizon is a
    /// [`StreamError::TimeTravel`].
    pub fn advance_to(&mut self, now: Tick) -> Result<(), GStreamError<Sz>> {
        if now < self.horizon {
            return Err(GStreamError::TimeTravel {
                at: now,
                horizon: self.horizon,
            });
        }
        self.drain_departures(now);
        self.horizon = now;
        Ok(())
    }

    /// Drain every scheduled departure, seal the step function, and build
    /// the trace — the streaming counterpart of
    /// [`EngineRun::finish`](crate::engine::EngineRun::finish). Requires a
    /// dense id space `0..n` with every item departed.
    pub fn finish(mut self) -> Result<GPackingTrace<Sz>, GStreamError<Sz>> {
        while let Some(&Reverse((t, _))) = self.departures.peek() {
            self.drain_departures(t);
        }
        if self.in_flight > 0 {
            return Err(GStreamError::ItemsStillOpen {
                open: self.in_flight,
            });
        }
        if let Some(p) = self.pending_step.take() {
            self.st.record_step(p);
        }
        debug_assert_eq!(self.st.open_count, 0, "no in-flight items but open bins");
        let mut assignment = Vec::with_capacity(self.st.assignment.len());
        for (i, b) in self.st.assignment.iter().enumerate() {
            match b {
                Some(b) => assignment.push(*b),
                None => {
                    return Err(GStreamError::MissingItem {
                        item: ItemId(i as u32),
                    })
                }
            }
        }
        Ok(GPackingTrace {
            algorithm: self.selector.name().to_string(),
            capacity: self.capacity,
            bins: self.st.materialize_records(),
            assignment,
            open_bins_steps: self.st.steps,
        })
    }

    /// Tear the engine down without requiring a complete stream, returning
    /// the probe (so journals can be sealed) and the final ledger-relevant
    /// counters `(arrivals, in_flight, open_bins)` — the daemon's drain
    /// path, where in-flight sessions are expected.
    pub fn into_probe(self) -> (P, u64, usize, usize) {
        (self.probe, self.arrived, self.in_flight, self.st.open_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::FirstFit;
    use crate::engine::simulate_probed;
    use crate::instance::InstanceBuilder;
    use crate::item::Item;
    use crate::probe::FnProbe;

    fn demo() -> crate::instance::Instance {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 10, 6);
        b.add(0, 4, 6);
        b.add(2, 8, 4);
        b.add(5, 9, 6);
        b.build().unwrap()
    }

    fn stream_order(inst: &crate::instance::Instance) -> Vec<Item> {
        let mut items: Vec<Item> = inst.items().to_vec();
        items.sort_by_key(|it| (it.arrival, it.id));
        items
    }

    #[test]
    fn streaming_matches_batch_trace_and_events() {
        let inst = demo();
        let mut batch_events = Vec::new();
        let batch = simulate_probed(
            &inst,
            &mut FirstFit::new(),
            &mut FnProbe::new(|ev| batch_events.push(ev)),
        );

        let mut stream_events = Vec::new();
        let mut eng = StreamingEngine::new(
            inst.capacity(),
            FirstFit::new(),
            FnProbe::new(|ev| stream_events.push(ev)),
        );
        for it in stream_order(&inst) {
            eng.push_arrival(it, it.arrival).unwrap();
        }
        let trace = eng.finish().unwrap();
        assert_eq!(trace, batch);
        assert_eq!(stream_events, batch_events);
    }

    #[test]
    fn time_travel_and_validation_errors() {
        let mut eng = StreamingEngine::new(Size(10), FirstFit::new(), crate::probe::NoProbe);
        eng.push_arrival(Item::new(0, 5, 9, 4), Tick(5)).unwrap();
        assert_eq!(
            eng.push_arrival(Item::new(1, 3, 7, 2), Tick(6)),
            Err(StreamError::TimeTravel {
                at: Tick(3),
                horizon: Tick(5)
            })
        );
        assert_eq!(
            eng.push_arrival(Item::new(1, 9, 12, 2), Tick(7)),
            Err(StreamError::ArrivalInFuture {
                item: ItemId(1),
                arrival: Tick(9),
                now: Tick(7)
            })
        );
        assert_eq!(
            eng.push_arrival(Item::new(1, 6, 6, 2), Tick(6)),
            Err(StreamError::DepartureNotAfterArrival {
                item: ItemId(1),
                arrival: Tick(6),
                departure: Tick(6)
            })
        );
        assert_eq!(
            eng.push_arrival(Item::new(1, 6, 9, 0), Tick(6)),
            Err(StreamError::ZeroSize { item: ItemId(1) })
        );
        assert_eq!(
            eng.push_arrival(Item::new(1, 6, 9, 11), Tick(6)),
            Err(StreamError::Oversized {
                item: ItemId(1),
                size: Size(11),
                capacity: Size(10)
            })
        );
        assert_eq!(
            eng.push_arrival(Item::new(0, 6, 9, 2), Tick(6)),
            Err(StreamError::DuplicateItem { item: ItemId(0) })
        );
        // The rejected pushes left the engine usable.
        eng.push_arrival(Item::new(1, 6, 9, 2), Tick(6)).unwrap();
        let trace = eng.finish().unwrap();
        assert_eq!(trace.bins_used(), 1);
    }

    #[test]
    fn open_mode_lifecycle_and_ledger_counters() {
        let mut eng = StreamingEngine::new(Size(10), FirstFit::new(), crate::probe::NoProbe);
        eng.push_open_arrival(ItemId(0), Size(6), RegionId::GLOBAL, Tick(0))
            .unwrap();
        eng.push_open_arrival(ItemId(1), Size(6), RegionId::GLOBAL, Tick(1))
            .unwrap();
        assert_eq!(eng.open_bins(), 2);
        assert_eq!(eng.in_flight(), 2);
        assert_eq!(
            eng.push_departure(ItemId(2), Tick(2)),
            Err(StreamError::UnknownItem { item: ItemId(2) })
        );
        eng.push_departure(ItemId(0), Tick(3)).unwrap();
        assert_eq!(
            eng.push_departure(ItemId(0), Tick(3)),
            Err(StreamError::AlreadyDeparted { item: ItemId(0) })
        );
        assert_eq!(eng.finish(), Err(StreamError::ItemsStillOpen { open: 1 }));
    }

    #[test]
    fn open_mode_finish_builds_a_trace() {
        let mut eng = StreamingEngine::new(Size(10), FirstFit::new(), crate::probe::NoProbe);
        eng.push_open_arrival(ItemId(0), Size(6), RegionId::GLOBAL, Tick(0))
            .unwrap();
        eng.push_open_arrival(ItemId(1), Size(4), RegionId::GLOBAL, Tick(1))
            .unwrap();
        eng.push_departure(ItemId(1), Tick(5)).unwrap();
        eng.push_departure(ItemId(0), Tick(8)).unwrap();
        let trace = eng.finish().unwrap();
        assert_eq!(trace.bins_used(), 1);
        assert_eq!(trace.total_cost_ticks(), 8);
    }

    #[test]
    fn advance_to_fires_scheduled_departures() {
        let mut eng = StreamingEngine::new(Size(10), FirstFit::new(), crate::probe::NoProbe);
        eng.push_arrival(Item::new(0, 0, 4, 6), Tick(0)).unwrap();
        assert_eq!(eng.open_bins(), 1);
        eng.advance_to(Tick(4)).unwrap();
        assert_eq!(eng.open_bins(), 0);
        assert_eq!(eng.in_flight(), 0);
        assert_eq!(
            eng.advance_to(Tick(2)),
            Err(StreamError::TimeTravel {
                at: Tick(2),
                horizon: Tick(4)
            })
        );
    }

    #[test]
    fn clocks_are_monotonic() {
        let mut m = ManualClock::new(Tick(3));
        assert_eq!(m.now(), Tick(3));
        m.advance_to(Tick(10));
        m.advance_to(Tick(5)); // saturates, never rewinds
        assert_eq!(m.now(), Tick(10));
        let mut w = WallClock::starting_now(1_000_000);
        let a = w.now();
        let b = w.now();
        assert!(b >= a);
    }

    #[test]
    fn missing_id_is_reported_at_finish() {
        let mut eng = StreamingEngine::new(Size(10), FirstFit::new(), crate::probe::NoProbe);
        eng.push_arrival(Item::new(1, 0, 4, 6), Tick(0)).unwrap();
        assert_eq!(
            eng.finish(),
            Err(StreamError::MissingItem { item: ItemId(0) })
        );
    }
}
