//! Problem instances: an item list `R` plus the bin capacity `W`.
//!
//! The instance owns everything the *offline* adversary knows. Aggregate
//! statistics defined in §3.1 of the paper — `span(R)`, `u(R)`, the max/min
//! interval-length ratio µ — are computed here exactly.

use crate::demand::Demand;
use crate::item::{GItem, Item, ItemId, RegionId, Size};
use crate::ratio::Ratio;
use crate::time::{union_intervals, union_length, Dur, Interval, Tick};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Validation errors for [`Instance::new`], generic over the demand type
/// (scalar via the [`InstanceError`] alias).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GInstanceError<Sz> {
    /// The capacity must be positive.
    ZeroCapacity,
    /// Item ids must equal their index in the list.
    BadItemId {
        /// Index in the item list where the mismatch occurred.
        index: usize,
        /// The id actually found there.
        found: ItemId,
    },
    /// `d(r) > a(r)` must hold for every item.
    EmptyInterval {
        /// The offending item.
        id: ItemId,
    },
    /// Items must have positive size.
    ZeroSize {
        /// The offending item.
        id: ItemId,
    },
    /// No single item may exceed the bin capacity in any dimension.
    Oversized {
        /// The offending item.
        id: ItemId,
        /// Its size.
        size: Sz,
        /// The bin capacity it exceeds.
        capacity: Sz,
    },
}

/// The scalar instance-validation error of the source paper's model.
pub type InstanceError = GInstanceError<Size>;

impl<Sz: fmt::Display> fmt::Display for GInstanceError<Sz> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GInstanceError::ZeroCapacity => {
                write!(f, "bin capacity must be positive in every dimension")
            }
            GInstanceError::BadItemId { index, found } => {
                write!(f, "item at index {index} has id {found}, expected r{index}")
            }
            GInstanceError::EmptyInterval { id } => {
                write!(f, "item {id} has departure <= arrival")
            }
            GInstanceError::ZeroSize { id } => write!(f, "item {id} has zero size"),
            GInstanceError::Oversized { id, size, capacity } => {
                write!(f, "item {id} has size {size} > capacity {capacity}")
            }
        }
    }
}

impl<Sz: fmt::Debug + fmt::Display> std::error::Error for GInstanceError<Sz> {}

/// An immutable, validated MinTotal DBP instance, generic over the demand
/// type (scalar via the [`Instance`] alias, vector via
/// [`VSize<D>`](crate::demand::VSize)).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GInstance<Sz> {
    capacity: Sz,
    items: Vec<GItem<Sz>>,
}

/// The scalar instance of the source paper.
pub type Instance = GInstance<Size>;

impl<Sz: Demand> GInstance<Sz> {
    /// Validate and build an instance. Items keep their given order — the
    /// order is meaningful: simultaneous arrivals are presented to online
    /// algorithms in list order (the adversarial constructions rely on it).
    pub fn new(capacity: Sz, items: Vec<GItem<Sz>>) -> Result<GInstance<Sz>, GInstanceError<Sz>> {
        if capacity.has_zero_component() {
            return Err(GInstanceError::ZeroCapacity);
        }
        for (index, it) in items.iter().enumerate() {
            if it.id.index() != index {
                return Err(GInstanceError::BadItemId {
                    index,
                    found: it.id,
                });
            }
            if it.departure <= it.arrival {
                return Err(GInstanceError::EmptyInterval { id: it.id });
            }
            if it.size.is_zero() {
                return Err(GInstanceError::ZeroSize { id: it.id });
            }
            if !it.size.fits_within(capacity) {
                return Err(GInstanceError::Oversized {
                    id: it.id,
                    size: it.size,
                    capacity,
                });
            }
        }
        Ok(GInstance { capacity, items })
    }

    /// Bin capacity `W`.
    #[inline]
    pub fn capacity(&self) -> Sz {
        self.capacity
    }

    #[inline]
    /// The items, in instance (arrival-presentation) order.
    pub fn items(&self) -> &[GItem<Sz>] {
        &self.items
    }

    #[inline]
    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    #[inline]
    /// Whether the instance has no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    #[inline]
    /// Look up an item by id.
    pub fn item(&self, id: ItemId) -> &GItem<Sz> {
        &self.items[id.index()]
    }

    /// Start of the packing period: `min a(r)`.
    pub fn first_arrival(&self) -> Option<Tick> {
        self.items.iter().map(|r| r.arrival).min()
    }

    /// End of the packing period: `max d(r)`.
    pub fn last_departure(&self) -> Option<Tick> {
        self.items.iter().map(|r| r.departure).max()
    }

    /// The packing period `[min a(r), max d(r))`.
    pub fn packing_period(&self) -> Option<Interval> {
        Some(Interval::new(self.first_arrival()?, self.last_departure()?))
    }

    /// `span(R)`: length of the union of all item intervals (Figure 1).
    ///
    /// ```
    /// use dbp_core::instance::InstanceBuilder;
    /// let mut b = InstanceBuilder::new(10);
    /// b.add(0, 4, 1);
    /// b.add(2, 6, 1);  // overlaps the first
    /// b.add(9, 12, 1); // after a gap
    /// let inst = b.build().unwrap();
    /// assert_eq!(inst.span().raw(), 9); // [0,6) ∪ [9,12)
    /// ```
    pub fn span(&self) -> Dur {
        let ivs: Vec<Interval> = self.items.iter().map(|r| r.interval()).collect();
        union_length(&ivs)
    }

    /// The maximal disjoint intervals covering all item activity.
    pub fn active_intervals(&self) -> Vec<Interval> {
        let ivs: Vec<Interval> = self.items.iter().map(|r| r.interval()).collect();
        union_intervals(&ivs)
    }

    /// `u(R) = Σ s(r)·len(I(r))`, in size·ticks.
    pub fn total_demand(&self) -> u128 {
        self.items.iter().map(|r| r.demand()).sum()
    }

    /// Minimum interval length ∆.
    pub fn min_interval_len(&self) -> Option<Dur> {
        self.items.iter().map(|r| r.interval_len()).min()
    }

    /// Maximum interval length µ∆.
    pub fn max_interval_len(&self) -> Option<Dur> {
        self.items.iter().map(|r| r.interval_len()).max()
    }

    /// The max/min item interval length ratio µ, exactly.
    pub fn mu(&self) -> Option<Ratio> {
        let min = self.min_interval_len()?;
        let max = self.max_interval_len()?;
        Some(Ratio::new(max.0 as u128, min.0 as u128))
    }

    /// Items active at time `t` (arrival inclusive, departure exclusive).
    pub fn active_at(&self, t: Tick) -> Vec<ItemId> {
        self.items
            .iter()
            .filter(|r| r.is_active_at(t))
            .map(|r| r.id)
            .collect()
    }

    /// All distinct regions present in the instance.
    pub fn regions(&self) -> Vec<RegionId> {
        let mut rs: Vec<RegionId> = self.items.iter().map(|r| r.region).collect();
        rs.sort_unstable();
        rs.dedup();
        rs
    }

    /// The sub-instance of items satisfying `keep`, with ids renumbered to
    /// stay index-consistent. Returns the new instance and, for each new
    /// item, the original [`ItemId`] it came from. Relative arrival order
    /// (and hence online presentation order) is preserved.
    pub fn restrict(
        &self,
        mut keep: impl FnMut(&GItem<Sz>) -> bool,
    ) -> (GInstance<Sz>, Vec<ItemId>) {
        let mut items = Vec::new();
        let mut back = Vec::new();
        for it in &self.items {
            if keep(it) {
                let mut renumbered = *it;
                renumbered.id = ItemId(items.len() as u32);
                items.push(renumbered);
                back.push(it.id);
            }
        }
        let inst = GInstance {
            capacity: self.capacity,
            items,
        };
        (inst, back)
    }

    /// The same instance with every arrival/departure shifted `dt` ticks
    /// later — useful for composing adversarial phases.
    ///
    /// # Panics
    /// Panics on tick overflow.
    pub fn shifted(&self, dt: u64) -> GInstance<Sz> {
        let items = self
            .items
            .iter()
            .map(|it| GItem {
                arrival: it.arrival + crate::time::Dur(dt),
                departure: it.departure + crate::time::Dur(dt),
                ..*it
            })
            .collect();
        GInstance {
            capacity: self.capacity,
            items,
        }
    }

    /// Concatenate two instances over the same capacity: `other`'s items
    /// are appended (renumbered) after `self`'s, preserving both lists'
    /// internal orders. Simultaneous arrivals from `self` are presented
    /// first.
    ///
    /// # Panics
    /// Panics if the capacities differ.
    pub fn concat(&self, other: &GInstance<Sz>) -> GInstance<Sz> {
        assert_eq!(
            self.capacity, other.capacity,
            "concat requires equal capacities"
        );
        let mut items = self.items.clone();
        for it in &other.items {
            let mut renumbered = *it;
            renumbered.id = ItemId(items.len() as u32);
            items.push(renumbered);
        }
        GInstance {
            capacity: self.capacity,
            items,
        }
    }

    /// Per-dimension demand `u_d(R) = Σ s_d(r)·len(I(r))` — the exact
    /// per-resource ledger a vector run's cost audit checks against.
    pub fn total_demand_per_dim(&self) -> Vec<u128> {
        let mut out = vec![0u128; Sz::DIMS];
        for r in &self.items {
            let len = r.interval_len().0 as u128;
            for (d, slot) in out.iter_mut().enumerate() {
                *slot += r.size.component(d) as u128 * len;
            }
        }
        out
    }

    /// The same instance with every demand mapped through `f`; `None` if
    /// the mapped instance fails validation (e.g. `f` produced a demand
    /// exceeding the mapped capacity). The D=1 equivalence suite uses this
    /// to lift scalar instances into vector space and back.
    pub fn map_demand<T: Demand>(
        &self,
        mut f: impl FnMut(Sz) -> T,
    ) -> Result<GInstance<T>, GInstanceError<T>> {
        let capacity = f(self.capacity);
        let items = self.items.iter().map(|it| it.map_demand(&mut f)).collect();
        GInstance::new(capacity, items)
    }

    /// Summary statistics used by experiment reports.
    pub fn stats(&self) -> GInstanceStats<Sz> {
        GInstanceStats {
            n_items: self.items.len(),
            capacity: self.capacity,
            span: self.span(),
            total_demand: self.total_demand(),
            min_interval_len: self.min_interval_len().unwrap_or(Dur::ZERO),
            max_interval_len: self.max_interval_len().unwrap_or(Dur::ZERO),
            mu: self.mu().unwrap_or(Ratio::ONE),
            min_size: self.items.iter().map(|r| r.size).min().unwrap_or(Sz::ZERO),
            max_size: self.items.iter().map(|r| r.size).max().unwrap_or(Sz::ZERO),
        }
    }
}

/// Aggregate instance statistics (§3.1 quantities), generic over the
/// demand type (scalar via the [`InstanceStats`] alias).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GInstanceStats<Sz> {
    /// Number of items.
    pub n_items: usize,
    /// Bin capacity `W`.
    pub capacity: Sz,
    /// `span(R)`.
    pub span: Dur,
    /// `u(R)` in size·ticks.
    pub total_demand: u128,
    /// Minimum interval length ∆.
    pub min_interval_len: Dur,
    /// Maximum interval length µ∆.
    pub max_interval_len: Dur,
    /// Max/min interval length ratio µ.
    pub mu: Ratio,
    /// Smallest item size (lexicographic minimum for vectors).
    pub min_size: Sz,
    /// Largest item size (lexicographic maximum for vectors).
    pub max_size: Sz,
}

/// The scalar instance statistics of the source paper.
pub type InstanceStats = GInstanceStats<Size>;

/// Incremental builder for instances; assigns ids in insertion order.
#[derive(Debug, Clone, Default)]
pub struct InstanceBuilder {
    capacity: Size,
    items: Vec<Item>,
}

impl InstanceBuilder {
    /// Start a builder for bins of the given capacity.
    pub fn new(capacity: u64) -> InstanceBuilder {
        InstanceBuilder {
            capacity: Size(capacity),
            items: Vec::new(),
        }
    }

    /// Add an item; returns its id.
    pub fn add(&mut self, arrival: u64, departure: u64, size: u64) -> ItemId {
        let id = ItemId(self.items.len() as u32);
        self.items.push(Item {
            id,
            arrival: Tick(arrival),
            departure: Tick(departure),
            size: Size(size),
            region: RegionId::GLOBAL,
        });
        id
    }

    /// Add an item with a region tag (constrained-DBP extension).
    pub fn add_in_region(
        &mut self,
        arrival: u64,
        departure: u64,
        size: u64,
        region: RegionId,
    ) -> ItemId {
        let id = self.add(arrival, departure, size);
        self.items[id.index()].region = region;
        id
    }

    /// Number of items added so far.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no items have been added.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Validate and build the instance.
    pub fn build(self) -> Result<Instance, InstanceError> {
        Instance::new(self.capacity, self.items)
    }
}

/// Incremental builder for generic (vector-demand) instances; assigns ids
/// in insertion order. The scalar [`InstanceBuilder`] keeps its `u64` API.
#[derive(Debug, Clone)]
pub struct GInstanceBuilder<Sz> {
    capacity: Sz,
    items: Vec<GItem<Sz>>,
}

impl<Sz: Demand> GInstanceBuilder<Sz> {
    /// Start a builder for bins of the given (vector) capacity.
    pub fn new(capacity: Sz) -> GInstanceBuilder<Sz> {
        GInstanceBuilder {
            capacity,
            items: Vec::new(),
        }
    }

    /// Add an item; returns its id.
    pub fn add(&mut self, arrival: u64, departure: u64, size: Sz) -> ItemId {
        let id = ItemId(self.items.len() as u32);
        self.items.push(GItem {
            id,
            arrival: Tick(arrival),
            departure: Tick(departure),
            size,
            region: RegionId::GLOBAL,
        });
        id
    }

    /// Add an item with a region tag (constrained-DBP extension).
    pub fn add_in_region(
        &mut self,
        arrival: u64,
        departure: u64,
        size: Sz,
        region: RegionId,
    ) -> ItemId {
        let id = self.add(arrival, departure, size);
        self.items[id.index()].region = region;
        id
    }

    /// Number of items added so far.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no items have been added.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Validate and build the instance.
    pub fn build(self) -> Result<GInstance<Sz>, GInstanceError<Sz>> {
        GInstance::new(self.capacity, self.items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Instance {
        // The Figure 1 example shape: three items, two overlapping then a gap.
        let mut b = InstanceBuilder::new(10);
        b.add(0, 4, 5);
        b.add(2, 6, 5);
        b.add(9, 12, 3);
        b.build().unwrap()
    }

    #[test]
    fn fig1_span_example() {
        let inst = small();
        assert_eq!(inst.span(), Dur(9));
        assert_eq!(
            inst.packing_period(),
            Some(Interval::new(Tick(0), Tick(12)))
        );
        assert_eq!(inst.active_intervals().len(), 2);
    }

    #[test]
    fn stats_are_exact() {
        let inst = small();
        let s = inst.stats();
        assert_eq!(s.n_items, 3);
        assert_eq!(s.total_demand, 4 * 5 + 4 * 5 + 3 * 3);
        assert_eq!(s.min_interval_len, Dur(3));
        assert_eq!(s.max_interval_len, Dur(4));
        assert_eq!(s.mu, Ratio::new(4, 3));
        assert_eq!(s.max_size, Size(5));
        assert_eq!(s.min_size, Size(3));
    }

    #[test]
    fn active_set_respects_half_open_intervals() {
        let inst = small();
        assert_eq!(inst.active_at(Tick(0)), vec![ItemId(0)]);
        assert_eq!(inst.active_at(Tick(3)), vec![ItemId(0), ItemId(1)]);
        assert_eq!(inst.active_at(Tick(4)), vec![ItemId(1)]);
        assert_eq!(inst.active_at(Tick(6)), Vec::<ItemId>::new());
        assert_eq!(inst.active_at(Tick(9)), vec![ItemId(2)]);
    }

    #[test]
    fn validation_rejects_bad_instances() {
        assert_eq!(
            Instance::new(Size(0), vec![]),
            Err(InstanceError::ZeroCapacity)
        );
        let bad_interval = vec![Item::new(0, 5, 5, 1)];
        assert!(matches!(
            Instance::new(Size(10), bad_interval),
            Err(InstanceError::EmptyInterval { .. })
        ));
        let zero_size = vec![Item::new(0, 0, 1, 0)];
        assert!(matches!(
            Instance::new(Size(10), zero_size),
            Err(InstanceError::ZeroSize { .. })
        ));
        let oversized = vec![Item::new(0, 0, 1, 11)];
        assert!(matches!(
            Instance::new(Size(10), oversized),
            Err(InstanceError::Oversized { .. })
        ));
        let bad_id = vec![Item::new(3, 0, 1, 1)];
        assert!(matches!(
            Instance::new(Size(10), bad_id),
            Err(InstanceError::BadItemId { .. })
        ));
    }

    #[test]
    fn empty_instance_is_fine() {
        let inst = Instance::new(Size(5), vec![]).unwrap();
        assert!(inst.is_empty());
        assert_eq!(inst.span(), Dur::ZERO);
        assert_eq!(inst.mu(), None);
        assert_eq!(inst.packing_period(), None);
    }

    #[test]
    fn serde_round_trip() {
        let inst = small();
        let json = serde_json::to_string(&inst).unwrap();
        let back: Instance = serde_json::from_str(&json).unwrap();
        assert_eq!(inst, back);
    }

    #[test]
    fn restrict_renumbers_and_maps_back() {
        let inst = small();
        let (sub, back) = inst.restrict(|r| r.size.raw() == 5);
        assert_eq!(sub.len(), 2);
        assert_eq!(back, vec![ItemId(0), ItemId(1)]);
        for (i, it) in sub.items().iter().enumerate() {
            assert_eq!(it.id.index(), i);
            assert_eq!(it.size, inst.item(back[i]).size);
            assert_eq!(it.arrival, inst.item(back[i]).arrival);
        }
        let (empty, back) = inst.restrict(|_| false);
        assert!(empty.is_empty());
        assert!(back.is_empty());
    }

    #[test]
    fn shifted_moves_everything_uniformly() {
        let inst = small();
        let moved = inst.shifted(100);
        assert_eq!(moved.span(), inst.span());
        assert_eq!(moved.total_demand(), inst.total_demand());
        assert_eq!(moved.mu(), inst.mu());
        assert_eq!(moved.first_arrival(), Some(Tick(100)));
        assert_eq!(moved.last_departure(), Some(Tick(112)));
    }

    #[test]
    fn concat_renumbers_and_preserves_order() {
        let a = small();
        let b = small().shifted(50);
        let joined = a.concat(&b);
        assert_eq!(joined.len(), 6);
        for (i, it) in joined.items().iter().enumerate() {
            assert_eq!(it.id.index(), i);
        }
        assert_eq!(joined.total_demand(), 2 * a.total_demand());
        // Two disjoint activity windows.
        assert_eq!(joined.active_intervals().len(), 4);
    }

    #[test]
    #[should_panic(expected = "equal capacities")]
    fn concat_rejects_capacity_mismatch() {
        let a = small();
        let mut bld = InstanceBuilder::new(99);
        bld.add(0, 5, 1);
        let b = bld.build().unwrap();
        let _ = a.concat(&b);
    }

    #[test]
    fn regions_deduplicated() {
        let mut b = InstanceBuilder::new(10);
        b.add_in_region(0, 5, 1, RegionId(2));
        b.add_in_region(0, 5, 1, RegionId(1));
        b.add_in_region(1, 6, 1, RegionId(2));
        let inst = b.build().unwrap();
        assert_eq!(inst.regions(), vec![RegionId(1), RegionId(2)]);
    }
}
