//! Derived metrics for comparing packings in experiments.

use crate::bounds::combined_lower_bound;
use crate::instance::Instance;
use crate::ratio::Ratio;
use crate::trace::PackingTrace;
use serde::{Deserialize, Serialize};

/// Summary of one algorithm's run on one instance, ready for tabulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Algorithm name.
    pub algorithm: String,
    /// Number of items in the instance.
    pub n_items: usize,
    /// Total cost in bin-ticks (`A_total`, with C = 1 per tick).
    pub total_cost_ticks: u128,
    /// Number of distinct bins ever opened.
    pub bins_used: usize,
    /// Maximum simultaneously open bins (classical DBP objective).
    pub max_open_bins: u32,
    /// `max{u(R)/W, span(R)}` — a lower bound on `OPT_total`.
    pub opt_lower_bound: Ratio,
    /// `total_cost / opt_lower_bound`: an *upper* bound estimate of the
    /// achieved competitive ratio (the true ratio vs `OPT_total` is at most
    /// this).
    pub ratio_vs_lower_bound: Ratio,
    /// Mean bin utilization: `u(R) / (W · total_cost_ticks)`, in `[0, 1]`.
    pub mean_utilization: Ratio,
}

/// Summarize a trace against its instance.
pub fn summarize(instance: &Instance, trace: &PackingTrace) -> RunSummary {
    let cost = trace.total_cost_ticks();
    let lb = combined_lower_bound(instance);
    let ratio = if lb.is_zero() {
        Ratio::ONE
    } else {
        Ratio::from_int(cost) / lb
    };
    let util = if cost == 0 {
        Ratio::ZERO
    } else {
        Ratio::new(
            instance.total_demand(),
            instance.capacity().raw() as u128 * cost,
        )
    };
    RunSummary {
        algorithm: trace.algorithm.clone(),
        n_items: instance.len(),
        total_cost_ticks: cost,
        bins_used: trace.bins_used(),
        max_open_bins: trace.max_open_bins(),
        opt_lower_bound: lb,
        ratio_vs_lower_bound: ratio,
        mean_utilization: util,
    }
}

/// Time-weighted distribution statistics of the open-bin count, plus bin
/// lifetime aggregates — the fleet-sizing view of a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetStats {
    /// Time-weighted mean number of open bins over the packing period.
    pub mean_open: f64,
    /// Time-weighted median open bins.
    pub p50_open: u32,
    /// Time-weighted 95th percentile open bins.
    pub p95_open: u32,
    /// Maximum open bins.
    pub max_open: u32,
    /// Shortest bin lifetime in ticks.
    pub min_bin_life: u64,
    /// Mean bin lifetime in ticks.
    pub mean_bin_life: f64,
    /// Longest bin lifetime in ticks.
    pub max_bin_life: u64,
}

/// Compute fleet statistics from a trace. Returns `None` for empty traces.
pub fn fleet_stats(trace: &PackingTrace) -> Option<FleetStats> {
    if trace.bins.is_empty() {
        return None;
    }
    // Time-weighted histogram of the step function.
    let mut weighted: Vec<(u32, u128)> = Vec::new();
    let mut total_time: u128 = 0;
    for w in trace.open_bins_steps.windows(2) {
        let dur = (w[1].0 - w[0].0).raw() as u128;
        if dur > 0 {
            weighted.push((w[0].1, dur));
            total_time += dur;
        }
    }
    weighted.sort_unstable_by_key(|&(n, _)| n);
    let percentile = |p: f64| -> u32 {
        let target = (total_time as f64 * p) as u128;
        let mut acc: u128 = 0;
        for &(n, d) in &weighted {
            acc += d;
            if acc > target {
                return n;
            }
        }
        weighted.last().map(|&(n, _)| n).unwrap_or(0)
    };
    let mean_open = trace.total_cost_ticks() as f64 / total_time.max(1) as f64;

    let lives: Vec<u64> = trace.bins.iter().map(|b| b.usage_len().raw()).collect();
    let sum: u128 = lives.iter().map(|&l| l as u128).sum();
    Some(FleetStats {
        mean_open,
        p50_open: percentile(0.50),
        p95_open: percentile(0.95),
        max_open: trace.max_open_bins(),
        min_bin_life: lives.iter().copied().min().unwrap_or(0),
        mean_bin_life: sum as f64 / lives.len() as f64,
        max_bin_life: lives.iter().copied().max().unwrap_or(0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::FirstFit;
    use crate::engine::simulate_validated;
    use crate::instance::InstanceBuilder;

    #[test]
    fn summary_quantities() {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 10, 5);
        b.add(0, 10, 5);
        let inst = b.build().unwrap();
        let trace = simulate_validated(&inst, &mut FirstFit::new());
        let s = summarize(&inst, &trace);
        // One bin, perfectly packed for 10 ticks.
        assert_eq!(s.total_cost_ticks, 10);
        assert_eq!(s.bins_used, 1);
        assert_eq!(s.max_open_bins, 1);
        assert_eq!(s.opt_lower_bound, Ratio::from_int(10));
        assert_eq!(s.ratio_vs_lower_bound, Ratio::ONE);
        assert_eq!(s.mean_utilization, Ratio::ONE);
    }

    #[test]
    fn fleet_stats_on_simple_staircase() {
        // Two overlapping bins: counts 1 (10 ticks), 2 (10 ticks), 1 (10).
        let mut b = InstanceBuilder::new(10);
        b.add(0, 20, 8);
        b.add(10, 30, 8);
        let inst = b.build().unwrap();
        let trace = simulate_validated(&inst, &mut FirstFit::new());
        let f = fleet_stats(&trace).unwrap();
        assert_eq!(f.max_open, 2);
        assert!((f.mean_open - 40.0 / 30.0).abs() < 1e-12);
        assert_eq!(f.p50_open, 1);
        assert_eq!(f.p95_open, 2);
        assert_eq!(f.min_bin_life, 20);
        assert_eq!(f.max_bin_life, 20);
        assert!((f.mean_bin_life - 20.0).abs() < 1e-12);
    }

    #[test]
    fn fleet_stats_none_on_empty_trace() {
        let inst = crate::instance::Instance::new(crate::item::Size(5), vec![]).unwrap();
        let trace = simulate_validated(&inst, &mut FirstFit::new());
        assert_eq!(fleet_stats(&trace), None);
    }

    #[test]
    fn utilization_reflects_waste() {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 10, 5); // alone in its bin: 50% utilization
        let inst = b.build().unwrap();
        let trace = simulate_validated(&inst, &mut FirstFit::new());
        let s = summarize(&inst, &trace);
        assert_eq!(s.mean_utilization, Ratio::new(1, 2));
        assert_eq!(s.ratio_vs_lower_bound, Ratio::ONE); // span LB dominates
    }
}
