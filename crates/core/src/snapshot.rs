//! Durable engine state for crash-safe resume.
//!
//! A [`Snapshot`] is the complete, serializable image of one
//! [`EngineRun`](crate::engine::EngineRun) between two schedule events:
//! per-bin levels and membership, the open set, the per-item slot map, the
//! bin records and assignment built so far, the open-bin step function, and
//! the replay cursor (how many schedule events have been processed).
//!
//! ## Invariants
//!
//! A well-formed snapshot satisfies, and [`EngineRun::resume`] verifies by
//! deterministic replay:
//!
//! * `levels`, `bin_items`, `is_open`, `records` all have one entry per bin
//!   ever opened, indexed by bin id;
//! * `open_count` equals the number of `true` entries in `is_open`, and an
//!   open bin's `level` is the sum of its members' sizes;
//! * `assignment[i]` is `Some` exactly for the items whose arrival lies in
//!   the processed prefix (`cursor` events of the schedule);
//! * replaying the first `cursor` schedule events of the instance, taking
//!   the recorded decision for each arrival, reproduces every field
//!   bit-for-bit.
//!
//! Selector-internal state (Next Fit's current bin, Random Fit's RNG
//! cursor) is deliberately **not** stored: it is restored by replaying the
//! decided prefix against a fresh selector through the [`BinSelector`]
//! hooks plus [`BinSelector::on_decision_replayed`]. That keeps the
//! snapshot format algorithm-independent — any selector whose select-time
//! state is a function of its own past decisions can resume.
//!
//! The open-bin *view mirror* is also absent: it is derived state, rebuilt
//! during replay.
//!
//! [`BinSelector`]: crate::packer::BinSelector
//! [`BinSelector::on_decision_replayed`]: crate::packer::BinSelector::on_decision_replayed
//! [`EngineRun::resume`]: crate::engine::EngineRun::resume

use crate::bin::BinId;
use crate::demand::Demand;
use crate::item::{ItemId, Size};
use crate::time::Tick;
use crate::trace::BinRecord;
use serde::{Deserialize, Serialize};

/// Complete engine state between two schedule events, generic over the
/// demand type (scalar [`Size`] via the [`Snapshot`] alias). See the module
/// docs for the invariants; construct via
/// [`EngineRun::snapshot`](crate::engine::EngineRun::snapshot) or
/// [`rebuild_snapshot`](crate::engine::rebuild_snapshot).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GSnapshot<Sz> {
    /// Name of the algorithm that produced the prefix (checked against the
    /// fresh selector on resume).
    pub algorithm: String,
    /// Bin capacity `W` of the instance.
    pub capacity: Sz,
    /// Item count of the instance (sanity check on resume).
    pub n_items: u64,
    /// Number of schedule events already processed (the resume point).
    pub cursor: u64,
    /// Current level of every bin ever opened, by bin id.
    pub levels: Vec<Sz>,
    /// Current members of every bin, by bin id (empty for closed bins),
    /// in placement (insertion) order — materialized from the engine's
    /// intrusive membership lists at snapshot time.
    pub bin_items: Vec<Vec<ItemId>>,
    /// Whether each bin is currently open, by bin id.
    pub is_open: Vec<bool>,
    /// Number of currently open bins.
    pub open_count: u64,
    /// Each present item's index within its bin's `bin_items` list; 0 for
    /// items that are absent (departed or not yet arrived). Replay
    /// materializes the same values, so equality checks stay exact.
    pub slot: Vec<u32>,
    /// Lifetime record of every bin opened so far, by bin id.
    pub records: Vec<BinRecord>,
    /// Bin each item was packed into; `None` for items not yet arrived.
    pub assignment: Vec<Option<BinId>>,
    /// Open-bin step function recorded so far.
    pub steps: Vec<(Tick, u32)>,
}

/// The scalar snapshot of the source paper's model.
pub type Snapshot = GSnapshot<Size>;

impl<Sz: Demand> GSnapshot<Sz> {
    /// Whether the snapshot covers a completed run (every schedule event
    /// processed). The schedule has two events per item.
    pub fn is_complete(&self) -> bool {
        self.cursor == 2 * self.n_items
    }

    /// Exact cost in bin-ticks of the *closed* bins so far
    /// (`Σ len([opened_at, closed_at))`). For a complete run this equals
    /// [`PackingTrace::total_cost_ticks`](crate::trace::PackingTrace::total_cost_ticks).
    pub fn closed_cost_ticks(&self) -> u128 {
        self.records
            .iter()
            .zip(&self.is_open)
            .filter(|(_, open)| !**open)
            .map(|(r, _)| r.usage_len().0 as u128)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bin::BinTag;

    fn sample() -> Snapshot {
        Snapshot {
            algorithm: "FF".to_string(),
            capacity: Size(10),
            n_items: 2,
            cursor: 3,
            levels: vec![Size(0), Size(4)],
            bin_items: vec![vec![], vec![ItemId(1)]],
            is_open: vec![false, true],
            open_count: 1,
            slot: vec![0, 0],
            records: vec![
                BinRecord {
                    id: BinId(0),
                    tag: BinTag::DEFAULT,
                    opened_at: Tick(0),
                    closed_at: Tick(5),
                    items: vec![ItemId(0)],
                },
                BinRecord {
                    id: BinId(1),
                    tag: BinTag::DEFAULT,
                    opened_at: Tick(2),
                    closed_at: Tick(2),
                    items: vec![ItemId(1)],
                },
            ],
            assignment: vec![Some(BinId(0)), Some(BinId(1))],
            steps: vec![(Tick(0), 1), (Tick(2), 2)],
        }
    }

    #[test]
    fn snapshot_serde_round_trip() {
        let snap = sample();
        let json = serde_json::to_string(&snap).unwrap();
        let back: Snapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn completion_and_closed_cost() {
        let mut snap = sample();
        assert!(!snap.is_complete());
        assert_eq!(snap.closed_cost_ticks(), 5); // only bin 0 is closed
        snap.cursor = 4;
        assert!(snap.is_complete());
    }
}
