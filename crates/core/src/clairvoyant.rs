//! Clairvoyant (departure-aware) packing — the interval-scheduling baseline.
//!
//! The paper's model hides departure times from the packer; the related
//! interval-scheduling work it contrasts against (Flammini et al. \[14\],
//! Mertzios et al. \[21\] — busy-time minimization) assumes the end time of a
//! job *is* known at assignment. This module provides that semi-online
//! regime as a baseline family, quantifying the *value of clairvoyance*:
//!
//! * [`ExtendFit`] — place the item into the open bin whose closing time it
//!   extends the least (greedy busy-time minimization, the natural online
//!   analogue of \[14\]'s objective);
//! * [`AlignedFit`] — place the item into the fitting bin whose current
//!   closing time is nearest its own departure, so bins hold items that die
//!   together.
//!
//! A [`ClairvoyantSelector`] receives the full [`Item`] (departure
//! included). The [`Clairvoyant`] adapter lets the standard engine run it:
//! the adapter looks the arriving item up in the instance, so the ordinary
//! [`BinSelector`] plumbing, traces and validators all apply unchanged.
//!
//! [`BinSelector`]: crate::packer::BinSelector

use crate::bin::{BinId, OpenBinView};
use crate::engine::simulate;
use crate::instance::Instance;
use crate::item::{ArrivingItem, Item, Size};
use crate::packer::{BinSelector, Decision};
use crate::time::Tick;
use crate::trace::PackingTrace;
use std::collections::HashMap;

/// A packing strategy that is told departure times at assignment.
pub trait ClairvoyantSelector {
    /// Roster name.
    fn name(&self) -> &'static str;
    /// Choose a bin for `item` (full knowledge, including `item.departure`).
    fn select(&mut self, bins: &[OpenBinView], item: &Item, capacity: Size) -> Decision;
    /// A bin closed.
    fn on_bin_closed(&mut self, _bin: BinId) {}
}

/// Adapter running a [`ClairvoyantSelector`] on the standard engine by
/// resolving each [`ArrivingItem`] back to its full [`Item`].
pub struct Clairvoyant<'a, S> {
    instance: &'a Instance,
    inner: S,
}

impl<'a, S: ClairvoyantSelector> Clairvoyant<'a, S> {
    /// Wrap `inner` for packing `instance`.
    pub fn new(instance: &'a Instance, inner: S) -> Self {
        Clairvoyant { instance, inner }
    }
}

impl<S: ClairvoyantSelector> BinSelector for Clairvoyant<'_, S> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }
    fn select(&mut self, bins: &[OpenBinView], item: &ArrivingItem, capacity: Size) -> Decision {
        let full = self.instance.item(item.id);
        debug_assert_eq!(full.arrival, item.arrival);
        self.inner.select(bins, full, capacity)
    }
    fn on_bin_closed(&mut self, bin: BinId) {
        self.inner.on_bin_closed(bin);
    }
}

/// Simulate a clairvoyant selector on an instance.
pub fn simulate_clairvoyant<S: ClairvoyantSelector>(
    instance: &Instance,
    selector: S,
) -> PackingTrace {
    let mut adapted = Clairvoyant::new(instance, selector);
    simulate(instance, &mut adapted)
}

/// Shared bookkeeping: the latest departure among items ever placed in each
/// open bin (an upper bound on — and with our engine exactly — the bin's
/// closing time).
#[derive(Debug, Default)]
struct CloseTimes {
    by_bin: HashMap<BinId, Tick>,
    opened: u32,
}

impl CloseTimes {
    /// Current closing time of `bin`.
    fn get(&self, bin: BinId) -> Tick {
        *self.by_bin.get(&bin).expect("untracked bin")
    }

    /// Record a placement; returns the id a new bin would get.
    fn place(&mut self, decision: Decision, departure: Tick) -> Decision {
        match decision {
            Decision::Use(id) => {
                let e = self.by_bin.get_mut(&id).expect("untracked bin");
                *e = (*e).max(departure);
            }
            Decision::Open { .. } => {
                self.by_bin.insert(BinId(self.opened), departure);
                self.opened += 1;
            }
        }
        decision
    }

    fn close(&mut self, bin: BinId) {
        self.by_bin.remove(&bin);
    }
}

/// Extend Fit: among fitting bins, pick the one whose closing time grows the
/// least by accepting the item (0 if the bin already outlives it); open a
/// new bin only when nothing fits. Ties break toward the earliest bin.
#[derive(Debug, Default)]
pub struct ExtendFit {
    closes: CloseTimes,
}

impl ExtendFit {
    /// Create an Extend Fit selector.
    pub fn new() -> ExtendFit {
        ExtendFit::default()
    }
}

impl ClairvoyantSelector for ExtendFit {
    fn name(&self) -> &'static str {
        "XF"
    }
    fn select(&mut self, bins: &[OpenBinView], item: &Item, _capacity: Size) -> Decision {
        let mut best: Option<(u64, BinId)> = None;
        for b in bins.iter().filter(|b| b.fits(item.size)) {
            let close = self.closes.get(b.id);
            let extension = item.departure.raw().saturating_sub(close.raw());
            if best.is_none_or(|(e, _)| extension < e) {
                best = Some((extension, b.id));
            }
        }
        let decision = match best {
            Some((_, id)) => Decision::Use(id),
            None => Decision::OPEN,
        };
        self.closes.place(decision, item.departure)
    }
    fn on_bin_closed(&mut self, bin: BinId) {
        self.closes.close(bin);
    }
}

/// Aligned Fit: among fitting bins, pick the one whose closing time is
/// nearest the item's departure (in absolute distance) — group items that
/// die together. Opens only when nothing fits.
#[derive(Debug, Default)]
pub struct AlignedFit {
    closes: CloseTimes,
}

impl AlignedFit {
    /// Create an Aligned Fit selector.
    pub fn new() -> AlignedFit {
        AlignedFit::default()
    }
}

impl ClairvoyantSelector for AlignedFit {
    fn name(&self) -> &'static str {
        "AL"
    }
    fn select(&mut self, bins: &[OpenBinView], item: &Item, _capacity: Size) -> Decision {
        let mut best: Option<(u64, BinId)> = None;
        for b in bins.iter().filter(|b| b.fits(item.size)) {
            let close = self.closes.get(b.id).raw();
            let d = item.departure.raw();
            let dist = close.abs_diff(d);
            if best.is_none_or(|(e, _)| dist < e) {
                best = Some((dist, b.id));
            }
        }
        let decision = match best {
            Some((_, id)) => Decision::Use(id),
            None => Decision::OPEN,
        };
        self.closes.place(decision, item.departure)
    }
    fn on_bin_closed(&mut self, bin: BinId) {
        self.closes.close(bin);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::any_fit_violations;
    use crate::instance::InstanceBuilder;

    #[test]
    fn extend_fit_prefers_bins_that_outlive_the_item() {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 100, 5); // b0: closes at 100
        b.add(0, 20, 5); // b1? fits b0 (5+5) -> extension 0 into b0
        let inst = b.build().unwrap();
        let trace = simulate_clairvoyant(&inst, ExtendFit::new());
        assert_eq!(trace.bins_used(), 1);
        assert_eq!(trace.total_cost_ticks(), 100);
    }

    #[test]
    fn extend_fit_minimizes_extension_among_choices() {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 50, 6); // b0 closes 50
        b.add(0, 90, 6); // b1 closes 90 (6+6 > 10)
        b.add(1, 95, 3); // extends b0 by 45, b1 by 5 -> b1
        let inst = b.build().unwrap();
        let trace = simulate_clairvoyant(&inst, ExtendFit::new());
        assert_eq!(trace.bin_of(crate::item::ItemId(2)), BinId(1));
    }

    #[test]
    fn aligned_fit_groups_similar_departures() {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 50, 6); // b0 closes 50
        b.add(0, 90, 6); // b1 closes 90
        b.add(1, 52, 3); // |50-52| = 2 vs |90-52| = 38 -> b0
        let inst = b.build().unwrap();
        let trace = simulate_clairvoyant(&inst, AlignedFit::new());
        assert_eq!(trace.bin_of(crate::item::ItemId(2)), BinId(0));
    }

    #[test]
    fn clairvoyant_selectors_are_any_fit() {
        // Both open a bin only when nothing fits, so the µ lower bound of
        // Theorem 1 still applies to them — clairvoyance does not rescue
        // the Any Fit family from the burst construction.
        let mut b = InstanceBuilder::new(10);
        let mut t = 0;
        for i in 0..60u64 {
            b.add(t, t + 30 + (i % 13), 3 + (i % 5));
            t += 2;
        }
        let inst = b.build().unwrap();
        for trace in [
            simulate_clairvoyant(&inst, ExtendFit::new()),
            simulate_clairvoyant(&inst, AlignedFit::new()),
        ] {
            assert!(any_fit_violations(&inst, &trace).is_empty());
            assert!(trace.validate(&inst).is_empty());
        }
    }

    #[test]
    fn clairvoyance_beats_ff_on_a_mixed_lifetime_pattern() {
        // Two long-lived anchors plus short-lived churn: FF mixes short
        // items into long bins (keeping them large forever harms nobody
        // here) — but mixes long items into *short* bins, extending them.
        // Construct: pairs of (long, short) arriving alternately.
        let mut b = InstanceBuilder::new(10);
        let mut t = 0;
        for _ in 0..20 {
            b.add(t, t + 500, 5); // long
            b.add(t + 1, t + 40, 5); // short
            t += 45;
        }
        let inst = b.build().unwrap();
        let ff = simulate(&inst, &mut crate::algorithms::FirstFit::new());
        let xf = simulate_clairvoyant(&inst, ExtendFit::new());
        let al = simulate_clairvoyant(&inst, AlignedFit::new());
        assert!(
            xf.total_cost_ticks() <= ff.total_cost_ticks(),
            "ExtendFit {} vs FF {}",
            xf.total_cost_ticks(),
            ff.total_cost_ticks()
        );
        assert!(al.total_cost_ticks() <= ff.total_cost_ticks());
    }
}
