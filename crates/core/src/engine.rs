//! The event-driven packing engine.
//!
//! The engine replays an instance's event schedule, consults a
//! [`BinSelector`] on every arrival, maintains open-bin state, and records a
//! [`PackingTrace`]. All accounting is exact integer arithmetic.
//!
//! Two entry points exist: the one-shot [`simulate_probed`] (the hot path —
//! identical codegen to the pre-stepping engine), and the stepping
//! [`EngineRun`] used by crash-safe drivers that need to [`snapshot`] the
//! engine mid-run and [`resume`] it later. Both process the same schedule
//! event-by-event and produce identical traces and probe event streams.
//!
//! [`snapshot`]: EngineRun::snapshot
//! [`resume`]: EngineRun::resume

use crate::bin::{BinId, BinTag, GOpenBinView};
use crate::demand::Demand;
use crate::events::{schedule, Event, EventKind};
use crate::instance::GInstance;
use crate::item::{GArrivingItem, ItemId, Size};
use crate::packer::{BinSelector, Decision};
use crate::probe::{GProbeEvent, NoProbe, Probe};
use crate::snapshot::GSnapshot;
use crate::span::{stage, NoSpans, SpanRecorder};
use crate::time::Tick;
use crate::trace::{BinRecord, GPackingTrace};

/// Simulate packing `instance` with `selector`, producing the full trace.
///
/// Equivalent to [`simulate_probed`] with [`NoProbe`]; the probe seam
/// compiles away entirely on this path.
///
/// # Panics
/// Panics if the selector returns an invalid decision (unknown bin, or a bin
/// the item does not fit) — that is a bug in the algorithm under test, and
/// continuing would corrupt every measurement derived from the trace.
pub fn simulate<Sz: Demand, S: BinSelector<Sz> + ?Sized>(
    instance: &GInstance<Sz>,
    selector: &mut S,
) -> GPackingTrace<Sz> {
    simulate_probed(instance, selector, &mut NoProbe)
}

/// Simulate packing `instance` with `selector`, reporting every engine
/// event to `probe` (see [`crate::probe`] for the event vocabulary and the
/// zero-cost contract).
///
/// # Panics
/// Same contract as [`simulate`].
pub fn simulate_probed<Sz: Demand, S: BinSelector<Sz> + ?Sized, P: Probe<Sz>>(
    instance: &GInstance<Sz>,
    selector: &mut S,
    probe: &mut P,
) -> GPackingTrace<Sz> {
    EngineRun::new(instance, selector, probe).finish()
}

/// [`simulate_probed`] with a [`SpanRecorder`] attached: every arrival is
/// wrapped in an `arrival` span containing `decide` (the selector call) and
/// `place` (the engine's bookkeeping), and every departure in a `departure`
/// span. Pass `&mut recorder` to keep ownership of the recorded spans.
/// With [`NoSpans`] this is byte-for-byte [`simulate_probed`].
///
/// # Panics
/// Same contract as [`simulate`].
pub fn simulate_traced<Sz: Demand, S: BinSelector<Sz> + ?Sized, P: Probe<Sz>, R: SpanRecorder>(
    instance: &GInstance<Sz>,
    selector: &mut S,
    probe: &mut P,
    spans: R,
) -> GPackingTrace<Sz> {
    EngineRun::traced(instance, selector, probe, spans).finish()
}

/// Resume a run from `snapshot` and drive it to completion. Convenience
/// wrapper over [`EngineRun::resume`] + [`EngineRun::finish`]: the returned
/// trace, and the probe events emitted from the snapshot point onward, are
/// identical to the corresponding suffix of an uninterrupted run.
pub fn simulate_resumed_probed<Sz: Demand, S: BinSelector<Sz> + ?Sized, P: Probe<Sz>>(
    instance: &GInstance<Sz>,
    selector: &mut S,
    probe: &mut P,
    snapshot: &GSnapshot<Sz>,
) -> Result<GPackingTrace<Sz>, String> {
    Ok(EngineRun::resume(instance, selector, probe, snapshot)?.finish())
}

/// Sentinel for "no item" in the intrusive membership lists.
pub(crate) const NO_ITEM: u32 = u32::MAX;

/// Dense per-bin engine state as a struct-of-arrays flat arena: every
/// per-bin attribute is its own `Vec` indexed directly by bin id (ids are
/// assigned 0, 1, 2, … in opening order and never reused), and bin
/// membership is an intrusive doubly-linked list threaded through two
/// per-item arrays sized once at construction. The arrival path therefore
/// performs **no per-arrival heap allocation**: placing an item is a
/// handful of array writes (opening a bin appends one element to each bin
/// column, which is amortized O(1) with no per-bin `Vec` to allocate).
///
/// The nested representations a [`Snapshot`] / [`PackingTrace`] expose
/// (`Vec<Vec<ItemId>>` membership, `BinRecord` item lists) are materialized
/// on demand from this arena — snapshots and `finish()` are cold paths.
///
/// Shared (`pub(crate)`) with the [`crate::streaming`] engine, which drives
/// the same arena from an unbounded push stream instead of a schedule; the
/// per-item columns then grow on demand via [`State::ensure_item`].
pub(crate) struct State<Sz> {
    /// Index of the next schedule event to process.
    cursor: usize,
    // ---- per-bin columns, indexed by bin id ----
    levels: Vec<Sz>,
    tags: Vec<BinTag>,
    opened_at: Vec<Tick>,
    /// Placeholder (== `opened_at`) until the bin closes.
    closed_at: Vec<Tick>,
    is_open: Vec<bool>,
    /// First / last current member of the bin (`NO_ITEM` when empty).
    head: Vec<u32>,
    tail: Vec<u32>,
    /// Current member count of the bin.
    n_items: Vec<u32>,
    pub(crate) open_count: usize,
    // ---- per-item columns, sized `instance.len()` at construction ----
    /// Intrusive membership links: `next_in_bin[i]` / `prev_in_bin[i]`
    /// chain item `i` into its bin's current member list, in placement
    /// order. Stale once the item departs (each item departs exactly once).
    next_in_bin: Vec<u32>,
    prev_in_bin: Vec<u32>,
    pub(crate) assignment: Vec<Option<BinId>>,
    /// Append-only placement log in decision order; capacity reserved for
    /// the whole instance upfront, so pushes never reallocate.
    placed: Vec<ItemId>,
    /// Selector-facing mirror of the open set, ascending id, updated
    /// incrementally (one entry per state change instead of a full rebuild
    /// per arrival). Skipped entirely when the selector answers from its own
    /// hook-maintained index and no probe needs scan ranks. Not part of a
    /// snapshot: it is rebuilt deterministically during replay.
    pub(crate) views: Vec<GOpenBinView<Sz>>,
    pub(crate) steps: Vec<(Tick, u32)>,
}

impl<Sz: Demand> State<Sz> {
    fn new(instance: &GInstance<Sz>) -> State<Sz> {
        State::with_items(instance.len())
    }

    /// An empty arena with the per-item columns pre-sized for `n` items.
    /// Streaming callers may start at `n = 0` and grow via
    /// [`State::ensure_item`].
    pub(crate) fn with_items(n: usize) -> State<Sz> {
        State {
            cursor: 0,
            levels: Vec::new(),
            tags: Vec::new(),
            opened_at: Vec::new(),
            closed_at: Vec::new(),
            is_open: Vec::new(),
            head: Vec::new(),
            tail: Vec::new(),
            n_items: Vec::new(),
            open_count: 0,
            next_in_bin: vec![NO_ITEM; n],
            prev_in_bin: vec![NO_ITEM; n],
            assignment: vec![None; n],
            placed: Vec::with_capacity(n),
            views: Vec::new(),
            steps: Vec::new(),
        }
    }

    /// Grow the per-item columns so index `idx` is addressable. No-op when
    /// the columns already cover it.
    pub(crate) fn ensure_item(&mut self, idx: usize) {
        if idx >= self.assignment.len() {
            self.next_in_bin.resize(idx + 1, NO_ITEM);
            self.prev_in_bin.resize(idx + 1, NO_ITEM);
            self.assignment.resize(idx + 1, None);
        }
    }

    /// Number of bins ever opened.
    #[inline]
    pub(crate) fn bins(&self) -> usize {
        self.levels.len()
    }

    /// Append item `i` to bin `b`'s member list in O(1).
    #[inline]
    fn link(&mut self, b: usize, i: usize) {
        let t = self.tail[b];
        self.prev_in_bin[i] = t;
        self.next_in_bin[i] = NO_ITEM;
        if t == NO_ITEM {
            self.head[b] = i as u32;
        } else {
            self.next_in_bin[t as usize] = i as u32;
        }
        self.tail[b] = i as u32;
        self.n_items[b] += 1;
    }

    /// Remove item `i` from bin `b`'s member list in O(1).
    #[inline]
    fn unlink(&mut self, b: usize, i: usize) {
        let p = self.prev_in_bin[i];
        let nx = self.next_in_bin[i];
        if p == NO_ITEM {
            self.head[b] = nx;
        } else {
            self.next_in_bin[p as usize] = nx;
        }
        if nx == NO_ITEM {
            self.tail[b] = p;
        } else {
            self.prev_in_bin[nx as usize] = p;
        }
        self.n_items[b] -= 1;
    }

    /// Materialize the nested current-membership representation a
    /// [`Snapshot`] carries: per-bin member lists in placement order, plus
    /// each present item's index in its list (0 for absent items).
    fn materialize_membership(&self) -> (Vec<Vec<ItemId>>, Vec<u32>) {
        let mut bin_items = Vec::with_capacity(self.bins());
        let mut slot = vec![0u32; self.assignment.len()];
        for b in 0..self.bins() {
            let mut members = Vec::with_capacity(self.n_items[b] as usize);
            let mut cur = self.head[b];
            while cur != NO_ITEM {
                slot[cur as usize] = members.len() as u32;
                members.push(ItemId(cur));
                cur = self.next_in_bin[cur as usize];
            }
            bin_items.push(members);
        }
        (bin_items, slot)
    }

    /// Materialize the full per-bin lifetime records from the columns and
    /// the placement log: `items` holds every item ever placed in the bin,
    /// in placement order.
    pub(crate) fn materialize_records(&self) -> Vec<BinRecord> {
        let mut items: Vec<Vec<ItemId>> = vec![Vec::new(); self.bins()];
        for &it in &self.placed {
            let b = self.assignment[it.index()].expect("placed item lacks an assignment");
            items[b.index()].push(it);
        }
        items
            .into_iter()
            .enumerate()
            .map(|(b, items)| BinRecord {
                id: BinId(b as u32),
                tag: self.tags[b],
                opened_at: self.opened_at[b],
                closed_at: self.closed_at[b],
                items,
            })
            .collect()
    }

    /// Process one departure: remove the item (of the given `size`) from its
    /// bin, closing the bin if it empties. Takes the size rather than an
    /// `Instance` so the streaming engine — which has no instance — can
    /// drive the same arena.
    pub(crate) fn apply_departure<S: BinSelector<Sz> + ?Sized, P: Probe<Sz>>(
        &mut self,
        size: Sz,
        selector: &mut S,
        probe: &mut P,
        keep_views: bool,
        tick: Tick,
        item_id: ItemId,
    ) {
        let bin_id =
            self.assignment[item_id.index()].expect("departure for an item that was never packed");
        let b = bin_id.index();
        assert!(self.is_open[b], "departure from a closed bin");
        self.levels[b] = self.levels[b].sub(size);
        debug_assert!(self.n_items[b] > 0, "membership list out of sync");
        self.unlink(b, item_id.index());
        let emptied = self.n_items[b] == 0;
        if keep_views {
            let vpos = self
                .views
                .binary_search_by_key(&bin_id, |v| v.id)
                .expect("open bin missing from view mirror");
            if emptied {
                self.views.remove(vpos);
            } else {
                self.views[vpos].level = self.levels[b];
                self.views[vpos].n_items -= 1;
            }
        }
        if P::ENABLED {
            probe.record(GProbeEvent::ItemDeparted {
                at: tick,
                item: item_id,
                bin: bin_id,
                level: self.levels[b],
            });
        }
        selector.on_item_departed(bin_id, self.levels[b]);
        if emptied {
            debug_assert!(self.levels[b].is_zero(), "empty bin with nonzero level");
            self.closed_at[b] = tick;
            if P::ENABLED {
                probe.record(GProbeEvent::BinClosed {
                    at: tick,
                    bin: bin_id,
                    open_ticks: tick.0 - self.opened_at[b].0,
                });
            }
            self.is_open[b] = false;
            self.open_count -= 1;
            selector.on_bin_closed(bin_id);
        }
    }

    /// Apply an already-made decision for an arriving item: validate it,
    /// update bin state, emit probe events, and notify the selector. Takes
    /// the item's `size` rather than an `Instance` (see
    /// [`State::apply_departure`]).
    #[allow(clippy::too_many_arguments)] // internal seam shared by run/resume
    pub(crate) fn apply_arrival<S: BinSelector<Sz> + ?Sized, P: Probe<Sz>>(
        &mut self,
        size: Sz,
        selector: &mut S,
        probe: &mut P,
        keep_views: bool,
        capacity: Sz,
        tick: Tick,
        item_id: ItemId,
        decision: Decision,
    ) {
        let bin_id = match decision {
            Decision::Use(id) => {
                let b = id.index();
                assert!(
                    b < self.is_open.len() && self.is_open[b],
                    "{}: selected bin {id} is not open",
                    selector.name()
                );
                assert!(
                    self.levels[b]
                        .checked_add(size)
                        .is_some_and(|l| l.fits_within(capacity)),
                    "{}: item {} (size {}) does not fit bin {} (level {})",
                    selector.name(),
                    item_id,
                    size,
                    id,
                    self.levels[b]
                );
                self.levels[b] = self.levels[b]
                    .checked_add(size)
                    .expect("level overflow past the fit assertion");
                self.link(b, item_id.index());
                self.placed.push(item_id);
                if keep_views {
                    let vpos = self
                        .views
                        .binary_search_by_key(&id, |v| v.id)
                        .expect("open bin missing from view mirror");
                    self.views[vpos].level = self.levels[b];
                    self.views[vpos].n_items += 1;
                    if P::ENABLED {
                        // Scan depth of a reuse: the chosen bin's 1-based
                        // position in opening order.
                        probe.record(GProbeEvent::FitAttempt {
                            at: tick,
                            item: item_id,
                            bins_scanned: vpos as u32 + 1,
                            open_bins: self.open_count as u32,
                        });
                        probe.record(GProbeEvent::ItemPlaced {
                            at: tick,
                            item: item_id,
                            bin: id,
                            level: self.levels[b],
                        });
                    }
                }
                selector.on_item_placed(id, self.levels[b]);
                id
            }
            Decision::Open { tag } => {
                let id = BinId(self.bins() as u32);
                if P::ENABLED {
                    // Scan depth of an open: every open bin was
                    // (conceptually) scanned and rejected.
                    probe.record(GProbeEvent::FitAttempt {
                        at: tick,
                        item: item_id,
                        bins_scanned: self.open_count as u32,
                        open_bins: self.open_count as u32,
                    });
                    probe.record(GProbeEvent::BinOpened {
                        at: tick,
                        bin: id,
                        tag,
                        item: item_id,
                    });
                    probe.record(GProbeEvent::ItemPlaced {
                        at: tick,
                        item: item_id,
                        bin: id,
                        level: size,
                    });
                }
                let b = self.bins();
                self.levels.push(size);
                self.tags.push(tag);
                self.opened_at.push(tick);
                // Placeholder; overwritten when the bin closes.
                self.closed_at.push(tick);
                self.is_open.push(true);
                self.head.push(NO_ITEM);
                self.tail.push(NO_ITEM);
                self.n_items.push(0);
                self.open_count += 1;
                self.link(b, item_id.index());
                self.placed.push(item_id);
                if keep_views {
                    // Ids are assigned in increasing order, so pushing
                    // preserves the mirror's sortedness.
                    self.views.push(GOpenBinView {
                        id,
                        opened_at: tick,
                        level: size,
                        capacity,
                        n_items: 1,
                        tag,
                    });
                }
                selector.on_bin_opened(id, tag, size);
                id
            }
        };
        self.assignment[item_id.index()] = Some(bin_id);
    }

    /// Record the open-bin count after a tick's batch, if the event just
    /// processed was the last one at `tick` and the count changed.
    #[inline]
    fn record_step_if_batch_end(&mut self, events: &[Event], tick: Tick) {
        if self.cursor == events.len() || events[self.cursor].at != tick {
            self.record_step(tick);
        }
    }

    /// Record the open-bin count at the end of `tick`'s batch, deduplicating
    /// consecutive equal counts. The streaming engine calls this directly
    /// (it learns a batch ended only when a later tick arrives).
    #[inline]
    pub(crate) fn record_step(&mut self, tick: Tick) {
        let n = self.open_count as u32;
        match self.steps.last() {
            Some(&(_, last_n)) if last_n == n => {}
            _ => self.steps.push((tick, n)),
        }
    }
}

/// A stepping handle on one packing run: the crash-safe counterpart of
/// [`simulate_probed`].
///
/// Drive it with [`step`](EngineRun::step) (one schedule event at a time),
/// capture a [`Snapshot`] between steps, and [`finish`](EngineRun::finish)
/// to obtain the trace. A run resumed from a snapshot via
/// [`resume`](EngineRun::resume) continues *exactly* where the snapshot was
/// taken: the remaining probe events and the final trace are identical to
/// the corresponding parts of an uninterrupted run.
pub struct EngineRun<
    'a,
    S: BinSelector<Sz> + ?Sized,
    P: Probe<Sz>,
    R: SpanRecorder = NoSpans,
    Sz: Demand = Size,
> {
    instance: &'a GInstance<Sz>,
    capacity: Sz,
    events: Vec<Event>,
    selector: &'a mut S,
    probe: &'a mut P,
    spans: R,
    keep_views: bool,
    st: State<Sz>,
}

impl<'a, Sz: Demand, S: BinSelector<Sz> + ?Sized, P: Probe<Sz>> EngineRun<'a, S, P, NoSpans, Sz> {
    /// Start a fresh run at the beginning of the schedule.
    pub fn new(instance: &'a GInstance<Sz>, selector: &'a mut S, probe: &'a mut P) -> Self {
        EngineRun::traced(instance, selector, probe, NoSpans)
    }

    /// Rebuild a run from a [`Snapshot`], positioned exactly where the
    /// snapshot was taken.
    ///
    /// `selector` must be a **fresh** instance of the same algorithm
    /// (same construction — including the seed, for randomized selectors)
    /// that produced the snapshot. Its internal state is restored by
    /// replaying the already-decided event prefix against it: every state
    /// hook fires as in the original run, and
    /// [`BinSelector::on_decision_replayed`] stands in for each `select`
    /// call so select-time state (NF's current bin, RF's RNG cursor) is
    /// advanced identically. The probe sees nothing during replay; events
    /// emitted after this call are exactly the suffix an uninterrupted run
    /// would have produced.
    ///
    /// Errors (never panics) if the snapshot is inconsistent with
    /// `instance` and `selector`: wrong algorithm name, capacity or item
    /// count, an impossible assignment, or replayed state that does not
    /// reproduce the snapshot bit-for-bit.
    pub fn resume(
        instance: &'a GInstance<Sz>,
        selector: &'a mut S,
        probe: &'a mut P,
        snapshot: &GSnapshot<Sz>,
    ) -> Result<Self, String> {
        let mut run = EngineRun::new(instance, selector, probe);
        if snapshot.algorithm != run.selector.name() {
            return Err(format!(
                "snapshot algorithm {:?} does not match selector {:?}",
                snapshot.algorithm,
                run.selector.name()
            ));
        }
        if snapshot.capacity != run.capacity {
            return Err(format!(
                "snapshot capacity {} does not match instance capacity {}",
                snapshot.capacity, run.capacity
            ));
        }
        if snapshot.n_items as usize != instance.len() {
            return Err(format!(
                "snapshot has {} items, instance has {}",
                snapshot.n_items,
                instance.len()
            ));
        }
        if snapshot.cursor as usize > run.events.len() {
            return Err(format!(
                "snapshot cursor {} beyond schedule length {}",
                snapshot.cursor,
                run.events.len()
            ));
        }
        if snapshot.assignment.len() != instance.len() {
            return Err(format!(
                "snapshot assignment covers {} items, instance has {}",
                snapshot.assignment.len(),
                instance.len()
            ));
        }
        let tag_of = |b: usize| snapshot.records.get(b).map(|r| r.tag);
        for k in 0..snapshot.cursor as usize {
            run.replay_step(&snapshot.assignment, &tag_of)
                .map_err(|e| format!("snapshot replay failed at event {k}: {e}"))?;
        }
        run.verify_state(snapshot)?;
        Ok(run)
    }
}

impl<'a, Sz: Demand, S: BinSelector<Sz> + ?Sized, P: Probe<Sz>, R: SpanRecorder>
    EngineRun<'a, S, P, R, Sz>
{
    /// Start a fresh run with a [`SpanRecorder`] attached (see
    /// [`simulate_traced`]). Pass `&mut recorder` to keep ownership of the
    /// recorder across the run; pass [`NoSpans`] to get [`new`] exactly.
    ///
    /// [`new`]: EngineRun::new
    pub fn traced(
        instance: &'a GInstance<Sz>,
        selector: &'a mut S,
        probe: &'a mut P,
        spans: R,
    ) -> Self {
        let keep_views = P::ENABLED || selector.needs_views();
        EngineRun {
            instance,
            capacity: instance.capacity(),
            events: schedule(instance),
            selector,
            probe,
            spans,
            keep_views,
            st: State::new(instance),
        }
    }

    /// Process the next schedule event. Returns `false` when the schedule
    /// is exhausted (the run is complete).
    ///
    /// # Panics
    /// Same contract as [`simulate`]: an invalid selector decision panics.
    pub fn step(&mut self) -> bool {
        let Some(&ev) = self.events.get(self.st.cursor) else {
            return false;
        };
        let tick = ev.at;
        match ev.kind {
            EventKind::Departure => {
                if R::ENABLED {
                    self.spans.enter(stage::DEPARTURE);
                }
                self.st.apply_departure(
                    self.instance.item(ev.item).size,
                    &mut *self.selector,
                    &mut *self.probe,
                    self.keep_views,
                    tick,
                    ev.item,
                );
                if R::ENABLED {
                    self.spans.exit();
                }
            }
            EventKind::Arrival => {
                let item = self.instance.item(ev.item);
                let arriving = GArrivingItem::of(item);
                if R::ENABLED {
                    self.spans.enter(stage::ARRIVAL);
                }
                if P::ENABLED {
                    self.probe.record(GProbeEvent::ItemArrived {
                        at: tick,
                        item: ev.item,
                        size: item.size,
                    });
                }
                // Timed span: the *whole* arrival handling — selection plus
                // placement bookkeeping — so `on_decision_ns` reflects the
                // per-arrival cost users actually observe.
                let started = if P::ENABLED {
                    Some(std::time::Instant::now())
                } else {
                    None
                };
                if R::ENABLED {
                    self.spans.enter(stage::DECIDE);
                }
                let decision = self
                    .selector
                    .select(&self.st.views, &arriving, self.capacity);
                if R::ENABLED {
                    self.spans.exit();
                    self.spans.enter(stage::PLACE);
                }
                self.st.apply_arrival(
                    item.size,
                    &mut *self.selector,
                    &mut *self.probe,
                    self.keep_views,
                    self.capacity,
                    tick,
                    ev.item,
                    decision,
                );
                if R::ENABLED {
                    self.spans.exit();
                }
                if let Some(started) = started {
                    self.probe
                        .on_decision_ns(started.elapsed().as_nanos() as u64);
                }
                if R::ENABLED {
                    self.spans.exit();
                }
            }
        }
        self.st.cursor += 1;
        self.st.record_step_if_batch_end(&self.events, tick);
        true
    }

    /// Replay one already-decided event: departures run normally, arrivals
    /// take their recorded decision instead of calling `select`. The probe
    /// is bypassed (replayed events were already observed in the original
    /// run) and every invalid condition is an `Err`, never a panic — a
    /// corrupt snapshot must not take the recovering process down.
    fn replay_step(
        &mut self,
        assignment: &[Option<BinId>],
        tag_of: &dyn Fn(usize) -> Option<crate::bin::BinTag>,
    ) -> Result<(), String> {
        let Some(&ev) = self.events.get(self.st.cursor) else {
            return Err("replay past end of schedule".to_string());
        };
        let tick = ev.at;
        match ev.kind {
            EventKind::Departure => {
                let Some(bin) = self.st.assignment[ev.item.index()] else {
                    return Err(format!("departure of unpacked item {}", ev.item));
                };
                if !self.st.is_open.get(bin.index()).copied().unwrap_or(false) {
                    return Err(format!(
                        "departure of item {} from closed bin {bin}",
                        ev.item
                    ));
                }
                self.st.apply_departure(
                    self.instance.item(ev.item).size,
                    &mut *self.selector,
                    &mut NoProbe,
                    self.keep_views,
                    tick,
                    ev.item,
                );
            }
            EventKind::Arrival => {
                let item = self.instance.item(ev.item);
                let arriving = GArrivingItem::of(item);
                let Some(bin) = assignment.get(ev.item.index()).copied().flatten() else {
                    return Err(format!("no recorded assignment for item {}", ev.item));
                };
                let b = bin.index();
                let decision = if b == self.st.bins() {
                    let Some(tag) = tag_of(b) else {
                        return Err(format!("no recorded tag for newly opened bin {bin}"));
                    };
                    Decision::Open { tag }
                } else if b < self.st.bins() {
                    if !self.st.is_open[b] {
                        return Err(format!("item {} assigned to closed bin {bin}", ev.item));
                    }
                    if self.st.levels[b]
                        .checked_add(item.size)
                        .is_none_or(|l| !l.fits_within(self.capacity))
                    {
                        return Err(format!(
                            "item {} (size {}) does not fit bin {bin} (level {})",
                            ev.item, item.size, self.st.levels[b]
                        ));
                    }
                    Decision::Use(bin)
                } else {
                    return Err(format!(
                        "item {} assigned to bin {bin} but only {} bins exist",
                        ev.item,
                        self.st.bins()
                    ));
                };
                self.selector
                    .on_decision_replayed(&arriving, decision, self.capacity);
                self.st.apply_arrival(
                    item.size,
                    &mut *self.selector,
                    &mut NoProbe,
                    self.keep_views,
                    self.capacity,
                    tick,
                    ev.item,
                    decision,
                );
            }
        }
        self.st.cursor += 1;
        self.st.record_step_if_batch_end(&self.events, tick);
        Ok(())
    }

    /// Check that replayed state reproduces the snapshot exactly.
    fn verify_state(&self, snapshot: &GSnapshot<Sz>) -> Result<(), String> {
        let st = &self.st;
        let (bin_items, slot) = st.materialize_membership();
        let same = st.levels == snapshot.levels
            && bin_items == snapshot.bin_items
            && st.is_open == snapshot.is_open
            && st.open_count as u64 == snapshot.open_count
            && slot == snapshot.slot
            && st.materialize_records() == snapshot.records
            && st.assignment == snapshot.assignment
            && st.steps == snapshot.steps;
        if same {
            Ok(())
        } else {
            Err(
                "snapshot does not match deterministic replay of the event prefix \
                 (wrong instance, wrong selector construction, or corrupted snapshot)"
                    .to_string(),
            )
        }
    }

    /// Number of schedule events processed so far.
    pub fn events_processed(&self) -> usize {
        self.st.cursor
    }

    /// Total number of events in the schedule (2× the item count).
    pub fn events_total(&self) -> usize {
        self.events.len()
    }

    /// Whether the whole schedule has been processed.
    pub fn is_done(&self) -> bool {
        self.st.cursor == self.events.len()
    }

    /// Capture the complete engine state at the current position. The view
    /// mirror is intentionally excluded: it is a derived structure, rebuilt
    /// deterministically on [`resume`](EngineRun::resume).
    pub fn snapshot(&self) -> GSnapshot<Sz> {
        let (bin_items, slot) = self.st.materialize_membership();
        GSnapshot {
            algorithm: self.selector.name().to_string(),
            capacity: self.capacity,
            n_items: self.instance.len() as u64,
            cursor: self.st.cursor as u64,
            levels: self.st.levels.clone(),
            bin_items,
            is_open: self.st.is_open.clone(),
            open_count: self.st.open_count as u64,
            slot,
            records: self.st.materialize_records(),
            assignment: self.st.assignment.clone(),
            steps: self.st.steps.clone(),
        }
    }

    /// Run the schedule to completion and produce the trace.
    ///
    /// # Panics
    /// Same contract as [`simulate`].
    pub fn finish(mut self) -> GPackingTrace<Sz> {
        while self.step() {}
        assert!(
            self.st.open_count == 0,
            "engine invariant: all bins must close by the last departure"
        );
        debug_assert!(self.st.views.is_empty(), "view mirror leaked entries");
        GPackingTrace {
            algorithm: self.selector.name().to_string(),
            capacity: self.capacity,
            bins: self.st.materialize_records(),
            assignment: self
                .st
                .assignment
                .into_iter()
                .map(|b| b.expect("unpacked item at end of simulation"))
                .collect(),
            open_bins_steps: self.st.steps,
        }
    }
}

/// Selector stand-in for assignment-driven replay: [`rebuild_snapshot`]
/// never calls `select`, so this selector has no decisions to make.
struct ReplaySelector;

impl<Sz: Demand> BinSelector<Sz> for ReplaySelector {
    fn name(&self) -> &'static str {
        "REPLAY"
    }
    fn select(&mut self, _: &[GOpenBinView<Sz>], _: &GArrivingItem<Sz>, _: Sz) -> Decision {
        unreachable!("ReplaySelector only replays recorded decisions")
    }
    fn needs_views(&self) -> bool {
        false
    }
}

/// Rebuild the [`Snapshot`] an engine would have after processing the first
/// `cursor` schedule events of `instance`, given the recorded placement of
/// every item in that prefix (`assignment[item] = bin`) and the tag each
/// opened bin carries (`tags[bin id]`). This is how a write-ahead journal —
/// which records placements, not engine internals — is turned back into
/// resumable state.
///
/// `algorithm` is stamped into the snapshot; [`EngineRun::resume`] will
/// check it against the fresh selector.
pub fn rebuild_snapshot<Sz: Demand>(
    instance: &GInstance<Sz>,
    algorithm: &str,
    cursor: usize,
    assignment: &[Option<BinId>],
    tags: &[crate::bin::BinTag],
) -> Result<GSnapshot<Sz>, String> {
    if assignment.len() != instance.len() {
        return Err(format!(
            "assignment covers {} items, instance has {}",
            assignment.len(),
            instance.len()
        ));
    }
    let mut selector = ReplaySelector;
    let mut probe = NoProbe;
    let mut run = EngineRun::new(instance, &mut selector, &mut probe);
    if cursor > run.events.len() {
        return Err(format!(
            "cursor {cursor} beyond schedule length {}",
            run.events.len()
        ));
    }
    let tag_of = |b: usize| tags.get(b).copied();
    for k in 0..cursor {
        run.replay_step(assignment, &tag_of)
            .map_err(|e| format!("journal replay failed at event {k}: {e}"))?;
    }
    let mut snap = run.snapshot();
    snap.algorithm = algorithm.to_string();
    Ok(snap)
}

/// Convenience: simulate and panic (with the violation list) if the trace
/// fails self-validation. Intended for tests and experiments, where a
/// corrupt trace must never be silently measured.
pub fn simulate_validated<Sz: Demand, S: BinSelector<Sz> + ?Sized>(
    instance: &GInstance<Sz>,
    selector: &mut S,
) -> GPackingTrace<Sz> {
    simulate_validated_probed(instance, selector, &mut NoProbe)
}

/// [`simulate_validated`] with a probe attached. Validation failures are
/// reported to the probe as [`ProbeEvent::Violation`] events (so event logs
/// capture *why* a run died) before the panic fires.
pub fn simulate_validated_probed<Sz: Demand, S: BinSelector<Sz> + ?Sized, P: Probe<Sz>>(
    instance: &GInstance<Sz>,
    selector: &mut S,
    probe: &mut P,
) -> GPackingTrace<Sz> {
    let trace = simulate_probed(instance, selector, probe);
    let errs = trace.validate(instance);
    if P::ENABLED {
        for err in &errs {
            probe.record(GProbeEvent::Violation {
                at: Tick(0),
                message: err.clone(),
            });
        }
    }
    assert!(
        errs.is_empty(),
        "trace validation failed for {}:\n{}",
        trace.algorithm,
        errs.join("\n")
    );
    trace
}

/// Check the Any Fit property on a trace: no bin was opened while an already
/// open bin could have accommodated the item. Returns offending item ids.
///
/// This replays the trace against the instance, so it is independent of the
/// selector implementation — used by property tests to certify that FF, BF,
/// WF etc. really are Any Fit algorithms.
pub fn any_fit_violations<Sz: Demand>(
    instance: &GInstance<Sz>,
    trace: &GPackingTrace<Sz>,
) -> Vec<ItemId> {
    let capacity = instance.capacity();
    let events = schedule(instance);
    // level[b] for currently open bins; None = closed or unopened.
    let mut level: Vec<Option<Sz>> = vec![None; trace.bins.len()];
    let mut members: Vec<u32> = vec![0; trace.bins.len()];
    let mut violations = Vec::new();
    for ev in events {
        let item = instance.item(ev.item);
        let bin = trace.bin_of(ev.item);
        match ev.kind {
            EventKind::Departure => {
                let l = level[bin.index()].as_mut().expect("closed bin in replay");
                *l = l.sub(item.size);
                members[bin.index()] -= 1;
                if members[bin.index()] == 0 {
                    level[bin.index()] = None;
                }
            }
            EventKind::Arrival => {
                let opened_new = level[bin.index()].is_none() && members[bin.index()] == 0
                    // A bin is "newly opened" by this item iff the item is
                    // the first in the bin's record.
                    && trace.bins[bin.index()].items.first() == Some(&ev.item);
                if opened_new {
                    let fits_somewhere = level.iter().any(|l| {
                        l.is_some_and(|l| {
                            l.checked_add(item.size)
                                .is_some_and(|x| x.fits_within(capacity))
                        })
                    });
                    if fits_somewhere {
                        violations.push(ev.item);
                    }
                    level[bin.index()] = Some(item.size);
                    members[bin.index()] = 1;
                } else {
                    let l = level[bin.index()]
                        .as_mut()
                        .expect("arrival into closed bin in replay");
                    *l = l.checked_add(item.size).expect("level overflow in replay");
                    members[bin.index()] += 1;
                }
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bin::{BinTag, OpenBinView};
    use crate::instance::InstanceBuilder;
    use crate::item::{ArrivingItem, Size};
    use crate::packer::Decision;

    /// Packs every item into a brand-new bin (the b.3 upper bound).
    struct AlwaysOpen;
    impl BinSelector for AlwaysOpen {
        fn name(&self) -> &'static str {
            "ALWAYS-OPEN"
        }
        fn select(
            &mut self,
            _bins: &[OpenBinView],
            _item: &ArrivingItem,
            _capacity: Size,
        ) -> Decision {
            Decision::OPEN
        }
    }

    /// First Fit written directly against the trait, for engine tests that
    /// must not depend on the algorithms module.
    struct NaiveFirstFit;
    impl BinSelector for NaiveFirstFit {
        fn name(&self) -> &'static str {
            "NAIVE-FF"
        }
        fn select(
            &mut self,
            bins: &[OpenBinView],
            item: &ArrivingItem,
            _capacity: Size,
        ) -> Decision {
            bins.iter()
                .find(|b| b.fits(item.size))
                .map(|b| Decision::Use(b.id))
                .unwrap_or(Decision::OPEN)
        }
        fn is_any_fit(&self) -> bool {
            true
        }
    }

    fn demo_instance() -> crate::instance::Instance {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 10, 6); // r0
        b.add(0, 4, 6); // r1: does not fit with r0 -> second bin
        b.add(2, 8, 4); // r2: fits bin 0 beside r0
        b.add(5, 9, 6); // r3: arrives after r1 left -> bin 1 closed at 4, so new bin under FF? bin1 closed, bin0 has 6+4=10
        b.build().unwrap()
    }

    #[test]
    fn always_open_gives_b3_cost() {
        let inst = demo_instance();
        let trace = simulate_validated(&inst, &mut AlwaysOpen);
        assert_eq!(trace.bins_used(), 4);
        let sum_len: u128 = inst
            .items()
            .iter()
            .map(|r| r.interval_len().0 as u128)
            .sum();
        assert_eq!(trace.total_cost_ticks(), sum_len);
    }

    #[test]
    fn first_fit_packs_and_closes_bins() {
        let inst = demo_instance();
        let trace = simulate_validated(&inst, &mut NaiveFirstFit);
        // r0 -> b0; r1 (6) does not fit (6+6>10) -> b1; r2 (4) fits b0;
        // r1 departs at 4 closing b1; r3 (6) at t=5: b0 level 10 -> b2.
        assert_eq!(trace.bins_used(), 3);
        assert_eq!(trace.bin_of(ItemId(0)), BinId(0));
        assert_eq!(trace.bin_of(ItemId(1)), BinId(1));
        assert_eq!(trace.bin_of(ItemId(2)), BinId(0));
        assert_eq!(trace.bin_of(ItemId(3)), BinId(2));
        // b0: [0,10), b1: [0,4), b2: [5,9) -> 10 + 4 + 4 = 18.
        assert_eq!(trace.total_cost_ticks(), 18);
        assert_eq!(trace.max_open_bins(), 2);
        assert!(any_fit_violations(&inst, &trace).is_empty());
    }

    #[test]
    fn always_open_violates_any_fit() {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 5, 2);
        b.add(1, 5, 2); // would fit in the first bin
        let inst = b.build().unwrap();
        let trace = simulate_validated(&inst, &mut AlwaysOpen);
        assert_eq!(any_fit_violations(&inst, &trace), vec![ItemId(1)]);
    }

    #[test]
    fn departure_before_arrival_at_same_tick_reuses_bin_space() {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 5, 10); // fills bin 0, departs at 5
        b.add(5, 8, 10); // arrives at 5: must fit bin 0? No - bin closed at 5.
        let inst = b.build().unwrap();
        let trace = simulate_validated(&inst, &mut NaiveFirstFit);
        // Bin 0 closes at tick 5 (all items gone), so the second item opens
        // a new bin; the point is the engine does not crash on the same-tick
        // departure/arrival and the step function stays at 1.
        assert_eq!(trace.bins_used(), 2);
        assert_eq!(trace.max_open_bins(), 1);
        assert_eq!(trace.total_cost_ticks(), 8);
    }

    #[test]
    fn same_tick_departure_frees_capacity_in_surviving_bin() {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 5, 6); // departs at 5
        b.add(0, 9, 4); // keeps bin 0 alive
        b.add(5, 9, 6); // arrives at 5; fits bin 0 only if the departure ran first
        let inst = b.build().unwrap();
        let trace = simulate_validated(&inst, &mut NaiveFirstFit);
        assert_eq!(trace.bins_used(), 1);
        assert_eq!(trace.total_cost_ticks(), 9);
    }

    #[test]
    fn empty_instance_yields_empty_trace() {
        let inst = crate::instance::Instance::new(crate::item::Size(5), vec![]).unwrap();
        let trace = simulate_validated(&inst, &mut NaiveFirstFit);
        assert_eq!(trace.bins_used(), 0);
        assert_eq!(trace.total_cost_ticks(), 0);
        assert!(trace.open_bins_steps.is_empty());
    }

    #[test]
    fn step_function_integral_matches_usage_sum() {
        let inst = demo_instance();
        for sel in [&mut NaiveFirstFit as &mut dyn BinSelector, &mut AlwaysOpen] {
            let trace = simulate(&inst, sel);
            assert_eq!(trace.total_cost_ticks(), trace.cost_from_step_function());
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn engine_panics_on_selector_overflow_bug() {
        struct Buggy;
        impl BinSelector for Buggy {
            fn name(&self) -> &'static str {
                "BUGGY"
            }
            fn select(
                &mut self,
                bins: &[OpenBinView],
                _item: &ArrivingItem,
                _capacity: Size,
            ) -> Decision {
                match bins.first() {
                    Some(b) => Decision::Use(b.id),
                    None => Decision::Open {
                        tag: BinTag::DEFAULT,
                    },
                }
            }
        }
        let mut b = InstanceBuilder::new(10);
        b.add(0, 5, 8);
        b.add(0, 5, 8);
        let inst = b.build().unwrap();
        let _ = simulate(&inst, &mut Buggy);
    }

    #[test]
    fn stepping_run_matches_one_shot() {
        let inst = demo_instance();
        let one_shot = simulate(&inst, &mut NaiveFirstFit);
        let mut sel = NaiveFirstFit;
        let mut probe = NoProbe;
        let mut run = EngineRun::new(&inst, &mut sel, &mut probe);
        let mut steps = 0;
        while run.step() {
            steps += 1;
        }
        assert_eq!(steps, run.events_total());
        assert!(run.is_done());
        assert_eq!(run.finish(), one_shot);
    }

    #[test]
    fn snapshot_resume_mid_run_reproduces_trace() {
        let inst = demo_instance();
        let full = simulate(&inst, &mut NaiveFirstFit);
        for k in 0..=2 * inst.len() {
            let mut sel = NaiveFirstFit;
            let mut probe = NoProbe;
            let mut run = EngineRun::new(&inst, &mut sel, &mut probe);
            for _ in 0..k {
                assert!(run.step());
            }
            let snap = run.snapshot();
            let mut sel2 = NaiveFirstFit;
            let mut probe2 = NoProbe;
            let resumed = EngineRun::resume(&inst, &mut sel2, &mut probe2, &snap)
                .unwrap_or_else(|e| panic!("resume at prefix {k}: {e}"))
                .finish();
            assert_eq!(resumed, full, "prefix {k}");
        }
    }

    #[test]
    fn resume_rejects_wrong_algorithm_and_corrupt_snapshot() {
        let inst = demo_instance();
        let mut sel = NaiveFirstFit;
        let mut probe = NoProbe;
        let mut run = EngineRun::new(&inst, &mut sel, &mut probe);
        for _ in 0..3 {
            run.step();
        }
        let snap = run.snapshot();

        let mut wrong = AlwaysOpen;
        let mut p = NoProbe;
        let err = EngineRun::resume(&inst, &mut wrong, &mut p, &snap)
            .err()
            .unwrap();
        assert!(err.contains("algorithm"), "{err}");

        let mut corrupt = snap.clone();
        if let Some(l) = corrupt.levels.first_mut() {
            *l = Size(l.raw() + 1);
        }
        let mut sel2 = NaiveFirstFit;
        let err = EngineRun::resume(&inst, &mut sel2, &mut p, &corrupt)
            .err()
            .unwrap();
        assert!(err.contains("replay") || err.contains("snapshot"), "{err}");
    }

    #[test]
    fn rebuild_snapshot_from_assignment_matches_live_snapshot() {
        let inst = demo_instance();
        for k in 0..=2 * inst.len() {
            let mut sel = NaiveFirstFit;
            let mut probe = NoProbe;
            let mut run = EngineRun::new(&inst, &mut sel, &mut probe);
            for _ in 0..k {
                run.step();
            }
            let live = run.snapshot();
            let tags: Vec<BinTag> = live.records.iter().map(|r| r.tag).collect();
            let rebuilt = rebuild_snapshot(&inst, "NAIVE-FF", k, &live.assignment, &tags).unwrap();
            assert_eq!(rebuilt, live, "prefix {k}");
        }
    }
}
