//! The event-driven packing engine.
//!
//! The engine replays an instance's event schedule, consults a
//! [`BinSelector`] on every arrival, maintains open-bin state, and records a
//! [`PackingTrace`]. All accounting is exact integer arithmetic.

use crate::bin::{BinId, OpenBinView};
use crate::events::{schedule, EventKind};
use crate::instance::Instance;
use crate::item::{ArrivingItem, ItemId, Size};
use crate::packer::{BinSelector, Decision};
use crate::probe::{NoProbe, Probe, ProbeEvent};
use crate::time::Tick;
use crate::trace::{BinRecord, PackingTrace};

/// Simulate packing `instance` with `selector`, producing the full trace.
///
/// Equivalent to [`simulate_probed`] with [`NoProbe`]; the probe seam
/// compiles away entirely on this path.
///
/// # Panics
/// Panics if the selector returns an invalid decision (unknown bin, or a bin
/// the item does not fit) — that is a bug in the algorithm under test, and
/// continuing would corrupt every measurement derived from the trace.
pub fn simulate<S: BinSelector + ?Sized>(instance: &Instance, selector: &mut S) -> PackingTrace {
    simulate_probed(instance, selector, &mut NoProbe)
}

/// Simulate packing `instance` with `selector`, reporting every engine
/// event to `probe` (see [`crate::probe`] for the event vocabulary and the
/// zero-cost contract).
///
/// # Panics
/// Same contract as [`simulate`].
pub fn simulate_probed<S: BinSelector + ?Sized, P: Probe>(
    instance: &Instance,
    selector: &mut S,
    probe: &mut P,
) -> PackingTrace {
    let capacity = instance.capacity();
    let events = schedule(instance);

    // Dense per-bin state, indexed directly by bin id (ids are assigned
    // 0, 1, 2, … in opening order and never reused), so departures and
    // placements touch their bin in O(1) with no search.
    let mut levels: Vec<Size> = Vec::new();
    let mut bin_items: Vec<Vec<ItemId>> = Vec::new();
    let mut is_open: Vec<bool> = Vec::new();
    let mut open_count: usize = 0;
    // Each packed item's slot in its bin's item list, so a departure finds
    // it in O(1) instead of scanning (`swap_remove` keeps the slot map
    // exact by re-homing the displaced last item).
    let mut slot: Vec<u32> = vec![0; instance.len()];
    // Selector-facing mirror of the open set, ascending id, updated
    // incrementally (one entry per state change instead of a full rebuild
    // per arrival). Skipped entirely when the selector answers from its own
    // hook-maintained index and no probe needs scan ranks.
    let keep_views = P::ENABLED || selector.needs_views();
    let mut views: Vec<OpenBinView> = Vec::new();
    // Full per-bin records; index == bin id.
    let mut records: Vec<BinRecord> = Vec::new();
    let mut assignment: Vec<Option<BinId>> = vec![None; instance.len()];
    let mut steps: Vec<(Tick, u32)> = Vec::new();

    let mut i = 0;
    while i < events.len() {
        let tick = events[i].at;
        // Process every event at this tick (departures first — the schedule
        // is ordered that way).
        while i < events.len() && events[i].at == tick {
            let ev = events[i];
            i += 1;
            match ev.kind {
                EventKind::Departure => {
                    let item = instance.item(ev.item);
                    let bin_id = assignment[ev.item.index()]
                        .expect("departure for an item that was never packed");
                    let b = bin_id.index();
                    assert!(is_open[b], "departure from a closed bin");
                    levels[b] -= item.size;
                    let s = slot[ev.item.index()] as usize;
                    let items = &mut bin_items[b];
                    debug_assert_eq!(items[s], ev.item, "slot map out of sync");
                    items.swap_remove(s);
                    if let Some(&moved) = items.get(s) {
                        slot[moved.index()] = s as u32;
                    }
                    let emptied = items.is_empty();
                    if keep_views {
                        let vpos = views
                            .binary_search_by_key(&bin_id, |v| v.id)
                            .expect("open bin missing from view mirror");
                        if emptied {
                            views.remove(vpos);
                        } else {
                            views[vpos].level = levels[b];
                            views[vpos].n_items -= 1;
                        }
                    }
                    if P::ENABLED {
                        probe.record(ProbeEvent::ItemDeparted {
                            at: tick,
                            item: ev.item,
                            bin: bin_id,
                            level: levels[b],
                        });
                    }
                    selector.on_item_departed(bin_id, levels[b]);
                    if emptied {
                        debug_assert_eq!(levels[b].raw(), 0, "empty bin with nonzero level");
                        records[b].closed_at = tick;
                        if P::ENABLED {
                            probe.record(ProbeEvent::BinClosed {
                                at: tick,
                                bin: bin_id,
                                open_ticks: tick.0 - records[b].opened_at.0,
                            });
                        }
                        is_open[b] = false;
                        open_count -= 1;
                        selector.on_bin_closed(bin_id);
                    }
                }
                EventKind::Arrival => {
                    let item = instance.item(ev.item);
                    let arriving = ArrivingItem::of(item);
                    if P::ENABLED {
                        probe.record(ProbeEvent::ItemArrived {
                            at: tick,
                            item: ev.item,
                            size: item.size,
                        });
                    }
                    // Timed span: the *whole* arrival handling — selection
                    // plus placement bookkeeping — so `on_decision_ns`
                    // reflects the per-arrival cost users actually observe.
                    let started = if P::ENABLED {
                        Some(std::time::Instant::now())
                    } else {
                        None
                    };
                    let decision = selector.select(&views, &arriving, capacity);
                    let bin_id = match decision {
                        Decision::Use(id) => {
                            let b = id.index();
                            assert!(
                                b < is_open.len() && is_open[b],
                                "{}: selected bin {id} is not open",
                                selector.name()
                            );
                            assert!(
                                levels[b]
                                    .checked_add(item.size)
                                    .is_some_and(|l| l <= capacity),
                                "{}: item {} (size {}) does not fit bin {} (level {})",
                                selector.name(),
                                item.id,
                                item.size,
                                id,
                                levels[b]
                            );
                            levels[b] += item.size;
                            slot[ev.item.index()] = bin_items[b].len() as u32;
                            bin_items[b].push(ev.item);
                            records[b].items.push(ev.item);
                            if keep_views {
                                let vpos = views
                                    .binary_search_by_key(&id, |v| v.id)
                                    .expect("open bin missing from view mirror");
                                views[vpos].level = levels[b];
                                views[vpos].n_items += 1;
                                if P::ENABLED {
                                    // Scan depth of a reuse: the chosen
                                    // bin's 1-based position in opening
                                    // order.
                                    probe.record(ProbeEvent::FitAttempt {
                                        at: tick,
                                        item: ev.item,
                                        bins_scanned: vpos as u32 + 1,
                                        open_bins: open_count as u32,
                                    });
                                    probe.record(ProbeEvent::ItemPlaced {
                                        at: tick,
                                        item: ev.item,
                                        bin: id,
                                        level: levels[b],
                                    });
                                }
                            }
                            selector.on_item_placed(id, levels[b]);
                            id
                        }
                        Decision::Open { tag } => {
                            let id = BinId(records.len() as u32);
                            if P::ENABLED {
                                // Scan depth of an open: every open bin was
                                // (conceptually) scanned and rejected.
                                probe.record(ProbeEvent::FitAttempt {
                                    at: tick,
                                    item: ev.item,
                                    bins_scanned: open_count as u32,
                                    open_bins: open_count as u32,
                                });
                                probe.record(ProbeEvent::BinOpened {
                                    at: tick,
                                    bin: id,
                                    tag,
                                    item: ev.item,
                                });
                                probe.record(ProbeEvent::ItemPlaced {
                                    at: tick,
                                    item: ev.item,
                                    bin: id,
                                    level: item.size,
                                });
                            }
                            levels.push(item.size);
                            bin_items.push(vec![ev.item]);
                            is_open.push(true);
                            open_count += 1;
                            slot[ev.item.index()] = 0;
                            if keep_views {
                                // Ids are assigned in increasing order, so
                                // pushing preserves the mirror's sortedness.
                                views.push(OpenBinView {
                                    id,
                                    opened_at: tick,
                                    level: item.size,
                                    capacity,
                                    n_items: 1,
                                    tag,
                                });
                            }
                            records.push(BinRecord {
                                id,
                                tag,
                                opened_at: tick,
                                // Placeholder; overwritten when the bin closes.
                                closed_at: tick,
                                items: vec![ev.item],
                            });
                            selector.on_bin_opened(id, tag, item.size);
                            id
                        }
                    };
                    assignment[ev.item.index()] = Some(bin_id);
                    if let Some(started) = started {
                        probe.on_decision_ns(started.elapsed().as_nanos() as u64);
                    }
                }
            }
        }
        // Record the open-bin count after this tick's batch, if it changed.
        let n = open_count as u32;
        match steps.last() {
            Some(&(_, last_n)) if last_n == n => {}
            _ => steps.push((tick, n)),
        }
    }

    assert!(
        open_count == 0,
        "engine invariant: all bins must close by the last departure"
    );
    debug_assert!(views.is_empty(), "view mirror leaked entries");

    PackingTrace {
        algorithm: selector.name().to_string(),
        capacity,
        bins: records,
        assignment: assignment
            .into_iter()
            .map(|b| b.expect("unpacked item at end of simulation"))
            .collect(),
        open_bins_steps: steps,
    }
}

/// Convenience: simulate and panic (with the violation list) if the trace
/// fails self-validation. Intended for tests and experiments, where a
/// corrupt trace must never be silently measured.
pub fn simulate_validated<S: BinSelector + ?Sized>(
    instance: &Instance,
    selector: &mut S,
) -> PackingTrace {
    simulate_validated_probed(instance, selector, &mut NoProbe)
}

/// [`simulate_validated`] with a probe attached. Validation failures are
/// reported to the probe as [`ProbeEvent::Violation`] events (so event logs
/// capture *why* a run died) before the panic fires.
pub fn simulate_validated_probed<S: BinSelector + ?Sized, P: Probe>(
    instance: &Instance,
    selector: &mut S,
    probe: &mut P,
) -> PackingTrace {
    let trace = simulate_probed(instance, selector, probe);
    let errs = trace.validate(instance);
    if P::ENABLED {
        for err in &errs {
            probe.record(ProbeEvent::Violation {
                at: Tick(0),
                message: err.clone(),
            });
        }
    }
    assert!(
        errs.is_empty(),
        "trace validation failed for {}:\n{}",
        trace.algorithm,
        errs.join("\n")
    );
    trace
}

/// Check the Any Fit property on a trace: no bin was opened while an already
/// open bin could have accommodated the item. Returns offending item ids.
///
/// This replays the trace against the instance, so it is independent of the
/// selector implementation — used by property tests to certify that FF, BF,
/// WF etc. really are Any Fit algorithms.
pub fn any_fit_violations(instance: &Instance, trace: &PackingTrace) -> Vec<ItemId> {
    let capacity = instance.capacity();
    let events = schedule(instance);
    // level[b] for currently open bins; None = closed or unopened.
    let mut level: Vec<Option<u64>> = vec![None; trace.bins.len()];
    let mut members: Vec<u32> = vec![0; trace.bins.len()];
    let mut violations = Vec::new();
    for ev in events {
        let item = instance.item(ev.item);
        let bin = trace.bin_of(ev.item);
        match ev.kind {
            EventKind::Departure => {
                let l = level[bin.index()].as_mut().expect("closed bin in replay");
                *l -= item.size.raw();
                members[bin.index()] -= 1;
                if members[bin.index()] == 0 {
                    level[bin.index()] = None;
                }
            }
            EventKind::Arrival => {
                let opened_new = level[bin.index()].is_none() && members[bin.index()] == 0
                    // A bin is "newly opened" by this item iff the item is
                    // the first in the bin's record.
                    && trace.bins[bin.index()].items.first() == Some(&ev.item);
                if opened_new {
                    let fits_somewhere = level
                        .iter()
                        .any(|l| l.is_some_and(|l| l + item.size.raw() <= capacity.raw()));
                    if fits_somewhere {
                        violations.push(ev.item);
                    }
                    level[bin.index()] = Some(item.size.raw());
                    members[bin.index()] = 1;
                } else {
                    let l = level[bin.index()]
                        .as_mut()
                        .expect("arrival into closed bin in replay");
                    *l += item.size.raw();
                    members[bin.index()] += 1;
                }
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bin::BinTag;
    use crate::instance::InstanceBuilder;
    use crate::item::Size;
    use crate::packer::Decision;

    /// Packs every item into a brand-new bin (the b.3 upper bound).
    struct AlwaysOpen;
    impl BinSelector for AlwaysOpen {
        fn name(&self) -> &'static str {
            "ALWAYS-OPEN"
        }
        fn select(
            &mut self,
            _bins: &[OpenBinView],
            _item: &ArrivingItem,
            _capacity: Size,
        ) -> Decision {
            Decision::OPEN
        }
    }

    /// First Fit written directly against the trait, for engine tests that
    /// must not depend on the algorithms module.
    struct NaiveFirstFit;
    impl BinSelector for NaiveFirstFit {
        fn name(&self) -> &'static str {
            "NAIVE-FF"
        }
        fn select(
            &mut self,
            bins: &[OpenBinView],
            item: &ArrivingItem,
            _capacity: Size,
        ) -> Decision {
            bins.iter()
                .find(|b| b.fits(item.size))
                .map(|b| Decision::Use(b.id))
                .unwrap_or(Decision::OPEN)
        }
        fn is_any_fit(&self) -> bool {
            true
        }
    }

    fn demo_instance() -> crate::instance::Instance {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 10, 6); // r0
        b.add(0, 4, 6); // r1: does not fit with r0 -> second bin
        b.add(2, 8, 4); // r2: fits bin 0 beside r0
        b.add(5, 9, 6); // r3: arrives after r1 left -> bin 1 closed at 4, so new bin under FF? bin1 closed, bin0 has 6+4=10
        b.build().unwrap()
    }

    #[test]
    fn always_open_gives_b3_cost() {
        let inst = demo_instance();
        let trace = simulate_validated(&inst, &mut AlwaysOpen);
        assert_eq!(trace.bins_used(), 4);
        let sum_len: u128 = inst
            .items()
            .iter()
            .map(|r| r.interval_len().0 as u128)
            .sum();
        assert_eq!(trace.total_cost_ticks(), sum_len);
    }

    #[test]
    fn first_fit_packs_and_closes_bins() {
        let inst = demo_instance();
        let trace = simulate_validated(&inst, &mut NaiveFirstFit);
        // r0 -> b0; r1 (6) does not fit (6+6>10) -> b1; r2 (4) fits b0;
        // r1 departs at 4 closing b1; r3 (6) at t=5: b0 level 10 -> b2.
        assert_eq!(trace.bins_used(), 3);
        assert_eq!(trace.bin_of(ItemId(0)), BinId(0));
        assert_eq!(trace.bin_of(ItemId(1)), BinId(1));
        assert_eq!(trace.bin_of(ItemId(2)), BinId(0));
        assert_eq!(trace.bin_of(ItemId(3)), BinId(2));
        // b0: [0,10), b1: [0,4), b2: [5,9) -> 10 + 4 + 4 = 18.
        assert_eq!(trace.total_cost_ticks(), 18);
        assert_eq!(trace.max_open_bins(), 2);
        assert!(any_fit_violations(&inst, &trace).is_empty());
    }

    #[test]
    fn always_open_violates_any_fit() {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 5, 2);
        b.add(1, 5, 2); // would fit in the first bin
        let inst = b.build().unwrap();
        let trace = simulate_validated(&inst, &mut AlwaysOpen);
        assert_eq!(any_fit_violations(&inst, &trace), vec![ItemId(1)]);
    }

    #[test]
    fn departure_before_arrival_at_same_tick_reuses_bin_space() {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 5, 10); // fills bin 0, departs at 5
        b.add(5, 8, 10); // arrives at 5: must fit bin 0? No - bin closed at 5.
        let inst = b.build().unwrap();
        let trace = simulate_validated(&inst, &mut NaiveFirstFit);
        // Bin 0 closes at tick 5 (all items gone), so the second item opens
        // a new bin; the point is the engine does not crash on the same-tick
        // departure/arrival and the step function stays at 1.
        assert_eq!(trace.bins_used(), 2);
        assert_eq!(trace.max_open_bins(), 1);
        assert_eq!(trace.total_cost_ticks(), 8);
    }

    #[test]
    fn same_tick_departure_frees_capacity_in_surviving_bin() {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 5, 6); // departs at 5
        b.add(0, 9, 4); // keeps bin 0 alive
        b.add(5, 9, 6); // arrives at 5; fits bin 0 only if the departure ran first
        let inst = b.build().unwrap();
        let trace = simulate_validated(&inst, &mut NaiveFirstFit);
        assert_eq!(trace.bins_used(), 1);
        assert_eq!(trace.total_cost_ticks(), 9);
    }

    #[test]
    fn empty_instance_yields_empty_trace() {
        let inst = crate::instance::Instance::new(crate::item::Size(5), vec![]).unwrap();
        let trace = simulate_validated(&inst, &mut NaiveFirstFit);
        assert_eq!(trace.bins_used(), 0);
        assert_eq!(trace.total_cost_ticks(), 0);
        assert!(trace.open_bins_steps.is_empty());
    }

    #[test]
    fn step_function_integral_matches_usage_sum() {
        let inst = demo_instance();
        for sel in [&mut NaiveFirstFit as &mut dyn BinSelector, &mut AlwaysOpen] {
            let trace = simulate(&inst, sel);
            assert_eq!(trace.total_cost_ticks(), trace.cost_from_step_function());
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn engine_panics_on_selector_overflow_bug() {
        struct Buggy;
        impl BinSelector for Buggy {
            fn name(&self) -> &'static str {
                "BUGGY"
            }
            fn select(
                &mut self,
                bins: &[OpenBinView],
                _item: &ArrivingItem,
                _capacity: Size,
            ) -> Decision {
                match bins.first() {
                    Some(b) => Decision::Use(b.id),
                    None => Decision::Open {
                        tag: BinTag::DEFAULT,
                    },
                }
            }
        }
        let mut b = InstanceBuilder::new(10);
        b.add(0, 5, 8);
        b.add(0, 5, 8);
        let inst = b.build().unwrap();
        let _ = simulate(&inst, &mut Buggy);
    }
}
