//! Exact non-negative rational arithmetic for costs and competitive ratios.
//!
//! Measured total costs are `u128` bin-tick counts; the paper's bounds are
//! rational functions of integer parameters (µ, k). Representing both as
//! reduced `u128/u128` rationals lets tests assert *exact* equality between
//! measured ratios and closed forms — no floating-point tolerance anywhere in
//! the reproduction path.

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, Div, Mul, Sub};
use serde::{Deserialize, Serialize};

/// A non-negative rational number `num / den`, kept in lowest terms.
///
/// ```
/// use dbp_core::ratio::Ratio;
/// let measured = Ratio::new(80_000, 17_000); // cost / OPT in bin-ticks
/// let formula = Ratio::new(8, 1) * Ratio::from_int(10) / Ratio::from_int(17);
/// assert_eq!(measured, formula); // exact — no float tolerance
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ratio {
    num: u128,
    den: u128,
}

const fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Ratio {
    /// The rational zero.
    pub const ZERO: Ratio = Ratio { num: 0, den: 1 };
    /// The rational one.
    pub const ONE: Ratio = Ratio { num: 1, den: 1 };

    /// Create `num / den` in lowest terms.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: u128, den: u128) -> Ratio {
        assert!(den != 0, "Ratio::new: zero denominator");
        if num == 0 {
            return Ratio::ZERO;
        }
        let g = gcd(num, den);
        Ratio {
            num: num / g,
            den: den / g,
        }
    }

    #[inline]
    /// The ratio `v / 1`.
    pub fn from_int(v: u128) -> Ratio {
        Ratio { num: v, den: 1 }
    }

    #[inline]
    /// Numerator in lowest terms.
    pub fn numerator(self) -> u128 {
        self.num
    }

    #[inline]
    /// Denominator in lowest terms.
    pub fn denominator(self) -> u128 {
        self.den
    }

    #[inline]
    /// Whether the ratio is zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// Whether the ratio is an integer.
    #[inline]
    pub fn is_integer(self) -> bool {
        self.den == 1
    }

    /// Lossy conversion for reporting.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Reciprocal.
    ///
    /// # Panics
    /// Panics if the ratio is zero.
    pub fn recip(self) -> Ratio {
        assert!(self.num != 0, "Ratio::recip of zero");
        Ratio {
            num: self.den,
            den: self.num,
        }
    }

    /// Checked subtraction: `None` if `self < rhs`.
    pub fn checked_sub(self, rhs: Ratio) -> Option<Ratio> {
        if self < rhs {
            return None;
        }
        Some(self - rhs)
    }

    /// The smaller of two ratios.
    pub fn min(self, other: Ratio) -> Ratio {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two ratios.
    pub fn max(self, other: Ratio) -> Ratio {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Ceiling of the rational.
    pub fn ceil(self) -> u128 {
        self.num.div_ceil(self.den)
    }

    /// Floor of the rational.
    pub fn floor(self) -> u128 {
        self.num / self.den
    }

    fn mul_checked(a: u128, b: u128, what: &str) -> u128 {
        a.checked_mul(b)
            .unwrap_or_else(|| panic!("Ratio arithmetic overflow in {what}: {a} * {b}"))
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Ratio) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Ratio) -> Ordering {
        // Cross-multiplication on reduced forms. Our magnitudes (costs up to
        // ~1e20 bin-ticks) are far below the u128 overflow threshold after
        // reduction; overflow panics loudly rather than corrupting results.
        let lhs = Ratio::mul_checked(self.num, other.den, "cmp");
        let rhs = Ratio::mul_checked(other.num, self.den, "cmp");
        lhs.cmp(&rhs)
    }
}

impl Add for Ratio {
    type Output = Ratio;
    fn add(self, rhs: Ratio) -> Ratio {
        let num = Ratio::mul_checked(self.num, rhs.den, "add")
            .checked_add(Ratio::mul_checked(rhs.num, self.den, "add"))
            .expect("Ratio add overflow");
        Ratio::new(num, Ratio::mul_checked(self.den, rhs.den, "add"))
    }
}

impl Sub for Ratio {
    type Output = Ratio;
    fn sub(self, rhs: Ratio) -> Ratio {
        let lhs = Ratio::mul_checked(self.num, rhs.den, "sub");
        let sub = Ratio::mul_checked(rhs.num, self.den, "sub");
        let num = lhs
            .checked_sub(sub)
            .expect("Ratio subtraction would be negative");
        Ratio::new(num, Ratio::mul_checked(self.den, rhs.den, "sub"))
    }
}

impl Mul for Ratio {
    type Output = Ratio;
    fn mul(self, rhs: Ratio) -> Ratio {
        // Cross-reduce first to keep intermediates small.
        let g1 = gcd(self.num.max(1), rhs.den);
        let g2 = gcd(rhs.num.max(1), self.den);
        let num = Ratio::mul_checked(self.num / g1.max(1), rhs.num / g2.max(1), "mul");
        let den = Ratio::mul_checked(self.den / g2.max(1), rhs.den / g1.max(1), "mul");
        Ratio::new(num, den)
    }
}

impl Div for Ratio {
    type Output = Ratio;
    // a/b = a * (1/b) is the intended arithmetic, not a typo.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Ratio) -> Ratio {
        self * rhs.recip()
    }
}

impl From<u64> for Ratio {
    fn from(v: u64) -> Ratio {
        Ratio::from_int(v as u128)
    }
}

impl From<u128> for Ratio {
    fn from(v: u128) -> Ratio {
        Ratio::from_int(v)
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduces_to_lowest_terms() {
        let r = Ratio::new(6, 8);
        assert_eq!(r.numerator(), 3);
        assert_eq!(r.denominator(), 4);
        assert_eq!(Ratio::new(0, 5), Ratio::ZERO);
    }

    #[test]
    fn arithmetic_identities() {
        let a = Ratio::new(1, 3);
        let b = Ratio::new(1, 6);
        assert_eq!(a + b, Ratio::new(1, 2));
        assert_eq!(a - b, Ratio::new(1, 6));
        assert_eq!(a * b, Ratio::new(1, 18));
        assert_eq!(a / b, Ratio::from_int(2));
        assert_eq!((a / b).recip(), Ratio::new(1, 2));
    }

    #[test]
    fn ordering_via_cross_multiplication() {
        assert!(Ratio::new(2, 3) < Ratio::new(3, 4));
        assert!(Ratio::new(5, 1) > Ratio::new(9, 2));
        assert_eq!(Ratio::new(10, 4), Ratio::new(5, 2));
        assert_eq!(Ratio::new(1, 2).max(Ratio::new(2, 3)), Ratio::new(2, 3));
        assert_eq!(Ratio::new(1, 2).min(Ratio::new(2, 3)), Ratio::new(1, 2));
    }

    #[test]
    fn floor_and_ceil() {
        assert_eq!(Ratio::new(7, 2).ceil(), 4);
        assert_eq!(Ratio::new(7, 2).floor(), 3);
        assert_eq!(Ratio::new(8, 2).ceil(), 4);
        assert_eq!(Ratio::from_int(0).ceil(), 0);
    }

    #[test]
    fn checked_sub_refuses_negative() {
        assert_eq!(Ratio::new(1, 3).checked_sub(Ratio::new(1, 2)), None);
        assert_eq!(
            Ratio::new(1, 2).checked_sub(Ratio::new(1, 3)),
            Some(Ratio::new(1, 6))
        );
    }

    #[test]
    fn paper_bound_expressible() {
        // 8/7 µ + 55/7 at µ = 10 is 135/7.
        let mu = Ratio::from_int(10);
        let bound = Ratio::new(8, 7) * mu + Ratio::new(55, 7);
        assert_eq!(bound, Ratio::new(135, 7));
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Ratio::new(1, 0);
    }
}
