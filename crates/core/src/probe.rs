//! Zero-cost instrumentation seam for the packing engine.
//!
//! A [`Probe`] receives typed [`ProbeEvent`]s from
//! [`simulate_probed`](crate::engine::simulate_probed) as the event loop
//! runs: arrivals, fit attempts (with scan depth), placements, departures,
//! bin opens/closes, and validation violations. Observability consumers
//! (`dbp-obs`) build event logs, metrics registries, and time-series
//! samplers on top of this trait without the engine knowing about any of
//! them.
//!
//! ## Zero cost when off
//!
//! The seam is monomorphized: every emission site is guarded by
//! `if P::ENABLED`, an associated `const` that is `false` for [`NoProbe`].
//! The optimizer deletes the guarded blocks — including the `Instant::now()`
//! calls used for decision timing — so `simulate` (which forwards to
//! `simulate_probed` with [`NoProbe`]) compiles to the same code as the
//! uninstrumented engine. The `packing_throughput` benchmark keeps this
//! honest.

use crate::bin::{BinId, BinTag};
use crate::demand::Demand;
use crate::item::{ItemId, Size};
use crate::time::Tick;
use serde::{Deserialize, Serialize};

/// One typed engine event, stamped with the simulation tick it occurred at.
///
/// Serialization (via the JSONL exporter in `dbp-obs`) uses serde's
/// externally-tagged enum form: `{"ItemArrived": {"at": 3, ...}}`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum GProbeEvent<Sz> {
    /// An item reached the engine and a decision is about to be requested.
    ItemArrived {
        /// Simulation tick.
        at: Tick,
        /// The arriving item.
        item: ItemId,
        /// Its size.
        size: Sz,
    },
    /// The selector returned a decision; `bins_scanned` is the First-Fit
    /// scan depth it implies: the 1-based position of the chosen bin in
    /// opening order, or the full open-bin count when a new bin is opened.
    FitAttempt {
        /// Simulation tick.
        at: Tick,
        /// The item being placed.
        item: ItemId,
        /// Scan depth (see above).
        bins_scanned: u32,
        /// Number of bins open when the decision was made.
        open_bins: u32,
    },
    /// A new bin was opened for an item.
    BinOpened {
        /// Simulation tick.
        at: Tick,
        /// The new bin (ids are assigned in opening order).
        bin: BinId,
        /// Tag the selector attached to the bin.
        tag: BinTag,
        /// The item that caused the open.
        item: ItemId,
    },
    /// An item was placed into a bin (newly opened or existing).
    ItemPlaced {
        /// Simulation tick.
        at: Tick,
        /// The placed item.
        item: ItemId,
        /// The receiving bin.
        bin: BinId,
        /// Bin level *after* the placement.
        level: Sz,
    },
    /// An item departed from its bin.
    ItemDeparted {
        /// Simulation tick.
        at: Tick,
        /// The departing item.
        item: ItemId,
        /// The bin it left.
        bin: BinId,
        /// Bin level *after* the departure.
        level: Sz,
    },
    /// A bin became empty and closed.
    BinClosed {
        /// Simulation tick.
        at: Tick,
        /// The closed bin.
        bin: BinId,
        /// Total ticks the bin stayed open.
        open_ticks: u64,
    },
    /// A trace-validation violation (emitted by
    /// [`simulate_validated_probed`](crate::engine::simulate_validated_probed)
    /// before it panics).
    Violation {
        /// Simulation tick the violation refers to (0 when unknown).
        at: Tick,
        /// Human-readable description.
        message: String,
    },
    /// A bin (server) was killed by fault injection; its items were
    /// orphaned and handed back to the dispatcher for re-placement.
    BinCrashed {
        /// Simulation tick.
        at: Tick,
        /// The crashed bin.
        bin: BinId,
        /// Number of items orphaned by the crash.
        orphans: u32,
    },
    /// A provisioning attempt for a new bin failed (flaky boot).
    ProvisionFailed {
        /// Simulation tick.
        at: Tick,
        /// The item whose placement triggered the provisioning.
        item: ItemId,
        /// 1-based attempt number for this item.
        attempt: u32,
    },
    /// A retry was scheduled with exponential backoff after a failed
    /// provision or a rejected dispatch.
    RetryScheduled {
        /// Simulation tick.
        at: Tick,
        /// The waiting item.
        item: ItemId,
        /// The attempt number the retry will carry.
        attempt: u32,
        /// The tick the retry will fire at.
        next: Tick,
    },
    /// An open bin transiently rejected a dispatch (the placement did not
    /// happen; the item retries or drops).
    DispatchRejected {
        /// Simulation tick.
        at: Tick,
        /// The rejected item.
        item: ItemId,
        /// The bin that refused it.
        bin: BinId,
    },
    /// An item left the system without (further) service — an accounted
    /// SLA violation, never a panic.
    ItemDropped {
        /// Simulation tick.
        at: Tick,
        /// The dropped item.
        item: ItemId,
        /// Why it was dropped.
        reason: DropReason,
    },
    /// An orphaned item was placed again on a different bin after a crash —
    /// the one event where the no-migration rule is forcibly broken.
    ItemRedispatched {
        /// Simulation tick.
        at: Tick,
        /// The re-placed item.
        item: ItemId,
        /// The crashed bin it was orphaned from.
        from: BinId,
        /// The bin it landed on.
        to: BinId,
        /// Level of the receiving bin *after* the placement.
        level: Sz,
    },
    /// Every orphan of one crash reached a terminal state (re-placed or
    /// dropped); `at - crash_at` is the crash's recovery time.
    RecoveryEnded {
        /// Simulation tick recovery completed at.
        at: Tick,
        /// The crashed bin this recovery belonged to.
        bin: BinId,
        /// Orphans successfully re-dispatched.
        redispatched: u32,
        /// Orphans lost.
        lost: u32,
    },
    /// A whole dispatcher shard died mid-run (injected kill or contained
    /// panic). `events_done` is how many engine events the shard had
    /// journaled before it went down.
    ShardKilled {
        /// Simulation tick of the shard's last journaled event.
        at: Tick,
        /// The dead shard.
        shard: u32,
        /// Engine events the shard emitted before dying.
        events_done: u64,
    },
    /// A killed shard came back up: its engine state was rebuilt from the
    /// shard's write-ahead event stream and the run continued.
    ShardRestarted {
        /// Simulation tick the restart resumed from.
        at: Tick,
        /// The resurrected shard.
        shard: u32,
        /// 1-based restart attempt for this shard.
        attempt: u32,
        /// Events replayed from the WAL to rebuild state.
        replayed: u64,
    },
    /// A shard exhausted its restart budget and was abandoned: in-flight
    /// sessions are billed lost, unarrived ones rerouted to healthy shards.
    ShardAbandoned {
        /// Simulation tick the shard was abandoned at.
        at: Tick,
        /// The abandoned shard.
        shard: u32,
        /// In-flight sessions lost with the shard.
        lost: u32,
        /// Unarrived sessions rerouted to healthy shards.
        rerouted: u32,
    },
}

/// The scalar probe event of the source paper's engine.
pub type ProbeEvent = GProbeEvent<Size>;

/// Why an item was dropped instead of served (see
/// [`ProbeEvent::ItemDropped`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropReason {
    /// The bounded admission queue was full on arrival.
    QueueFull,
    /// The item waited longer than the admission queue timeout.
    QueueTimeout,
    /// Provisioning/dispatch retries were exhausted.
    RetriesExhausted,
    /// The item was orphaned by a crash and could not be re-placed.
    CrashLost,
}

impl DropReason {
    /// Stable lower-snake name for reports and metrics labels.
    pub fn name(self) -> &'static str {
        match self {
            DropReason::QueueFull => "queue_full",
            DropReason::QueueTimeout => "queue_timeout",
            DropReason::RetriesExhausted => "retries_exhausted",
            DropReason::CrashLost => "crash_lost",
        }
    }
}

impl<Sz> GProbeEvent<Sz> {
    /// The tick the event is stamped with.
    pub fn at(&self) -> Tick {
        match self {
            GProbeEvent::ItemArrived { at, .. }
            | GProbeEvent::FitAttempt { at, .. }
            | GProbeEvent::BinOpened { at, .. }
            | GProbeEvent::ItemPlaced { at, .. }
            | GProbeEvent::ItemDeparted { at, .. }
            | GProbeEvent::BinClosed { at, .. }
            | GProbeEvent::Violation { at, .. }
            | GProbeEvent::BinCrashed { at, .. }
            | GProbeEvent::ProvisionFailed { at, .. }
            | GProbeEvent::RetryScheduled { at, .. }
            | GProbeEvent::DispatchRejected { at, .. }
            | GProbeEvent::ItemDropped { at, .. }
            | GProbeEvent::ItemRedispatched { at, .. }
            | GProbeEvent::RecoveryEnded { at, .. }
            | GProbeEvent::ShardKilled { at, .. }
            | GProbeEvent::ShardRestarted { at, .. }
            | GProbeEvent::ShardAbandoned { at, .. } => *at,
        }
    }

    /// Stable event-kind name (the serde variant tag).
    pub fn kind(&self) -> &'static str {
        match self {
            GProbeEvent::ItemArrived { .. } => "ItemArrived",
            GProbeEvent::FitAttempt { .. } => "FitAttempt",
            GProbeEvent::BinOpened { .. } => "BinOpened",
            GProbeEvent::ItemPlaced { .. } => "ItemPlaced",
            GProbeEvent::ItemDeparted { .. } => "ItemDeparted",
            GProbeEvent::BinClosed { .. } => "BinClosed",
            GProbeEvent::Violation { .. } => "Violation",
            GProbeEvent::BinCrashed { .. } => "BinCrashed",
            GProbeEvent::ProvisionFailed { .. } => "ProvisionFailed",
            GProbeEvent::RetryScheduled { .. } => "RetryScheduled",
            GProbeEvent::DispatchRejected { .. } => "DispatchRejected",
            GProbeEvent::ItemDropped { .. } => "ItemDropped",
            GProbeEvent::ItemRedispatched { .. } => "ItemRedispatched",
            GProbeEvent::RecoveryEnded { .. } => "RecoveryEnded",
            GProbeEvent::ShardKilled { .. } => "ShardKilled",
            GProbeEvent::ShardRestarted { .. } => "ShardRestarted",
            GProbeEvent::ShardAbandoned { .. } => "ShardAbandoned",
        }
    }

    /// Whether this event comes from the fault-injection layer (crash,
    /// retry, recovery) rather than the fault-free engine vocabulary.
    pub fn is_fault_event(&self) -> bool {
        matches!(
            self,
            GProbeEvent::BinCrashed { .. }
                | GProbeEvent::ProvisionFailed { .. }
                | GProbeEvent::RetryScheduled { .. }
                | GProbeEvent::DispatchRejected { .. }
                | GProbeEvent::ItemDropped { .. }
                | GProbeEvent::ItemRedispatched { .. }
                | GProbeEvent::RecoveryEnded { .. }
                | GProbeEvent::ShardKilled { .. }
                | GProbeEvent::ShardRestarted { .. }
                | GProbeEvent::ShardAbandoned { .. }
        )
    }
}

impl<Sz> GProbeEvent<Sz> {
    /// The same event with its demand payloads mapped through `f`. The D=1
    /// equivalence suite uses this to compare a `VSize<1>` event stream
    /// against the scalar stream field-for-field.
    pub fn map_demand<T>(self, mut f: impl FnMut(Sz) -> T) -> GProbeEvent<T> {
        match self {
            GProbeEvent::ItemArrived { at, item, size } => GProbeEvent::ItemArrived {
                at,
                item,
                size: f(size),
            },
            GProbeEvent::FitAttempt {
                at,
                item,
                bins_scanned,
                open_bins,
            } => GProbeEvent::FitAttempt {
                at,
                item,
                bins_scanned,
                open_bins,
            },
            GProbeEvent::BinOpened { at, bin, tag, item } => {
                GProbeEvent::BinOpened { at, bin, tag, item }
            }
            GProbeEvent::ItemPlaced {
                at,
                item,
                bin,
                level,
            } => GProbeEvent::ItemPlaced {
                at,
                item,
                bin,
                level: f(level),
            },
            GProbeEvent::ItemDeparted {
                at,
                item,
                bin,
                level,
            } => GProbeEvent::ItemDeparted {
                at,
                item,
                bin,
                level: f(level),
            },
            GProbeEvent::BinClosed {
                at,
                bin,
                open_ticks,
            } => GProbeEvent::BinClosed {
                at,
                bin,
                open_ticks,
            },
            GProbeEvent::Violation { at, message } => GProbeEvent::Violation { at, message },
            GProbeEvent::BinCrashed { at, bin, orphans } => {
                GProbeEvent::BinCrashed { at, bin, orphans }
            }
            GProbeEvent::ProvisionFailed { at, item, attempt } => {
                GProbeEvent::ProvisionFailed { at, item, attempt }
            }
            GProbeEvent::RetryScheduled {
                at,
                item,
                attempt,
                next,
            } => GProbeEvent::RetryScheduled {
                at,
                item,
                attempt,
                next,
            },
            GProbeEvent::DispatchRejected { at, item, bin } => {
                GProbeEvent::DispatchRejected { at, item, bin }
            }
            GProbeEvent::ItemDropped { at, item, reason } => {
                GProbeEvent::ItemDropped { at, item, reason }
            }
            GProbeEvent::ItemRedispatched {
                at,
                item,
                from,
                to,
                level,
            } => GProbeEvent::ItemRedispatched {
                at,
                item,
                from,
                to,
                level: f(level),
            },
            GProbeEvent::RecoveryEnded {
                at,
                bin,
                redispatched,
                lost,
            } => GProbeEvent::RecoveryEnded {
                at,
                bin,
                redispatched,
                lost,
            },
            GProbeEvent::ShardKilled {
                at,
                shard,
                events_done,
            } => GProbeEvent::ShardKilled {
                at,
                shard,
                events_done,
            },
            GProbeEvent::ShardRestarted {
                at,
                shard,
                attempt,
                replayed,
            } => GProbeEvent::ShardRestarted {
                at,
                shard,
                attempt,
                replayed,
            },
            GProbeEvent::ShardAbandoned {
                at,
                shard,
                lost,
                rerouted,
            } => GProbeEvent::ShardAbandoned {
                at,
                shard,
                lost,
                rerouted,
            },
        }
    }
}

/// Receiver of engine events. See the module docs for the zero-cost
/// contract; implementors outside benchmarks normally leave `ENABLED` at
/// its default of `true`.
pub trait Probe<Sz: Demand = Size> {
    /// Compile-time switch: when `false`, the engine skips event
    /// construction and decision timing entirely.
    const ENABLED: bool = true;

    /// Receive one event. Called in simulation order.
    fn record(&mut self, event: GProbeEvent<Sz>);

    /// Receive the wall-clock duration of one full arrival handling — the
    /// `BinSelector::select` call *plus* the engine's placement bookkeeping
    /// (view updates, record pushes, selector notifications) — in
    /// nanoseconds. This is the per-arrival cost a caller of `simulate`
    /// actually observes, not just the selector's share. Only called when
    /// `ENABLED`; separate from [`record`](Probe::record) so the hot path
    /// never allocates for it.
    fn on_decision_ns(&mut self, ns: u64) {
        let _ = ns;
    }
}

/// The default probe: does nothing, costs nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoProbe;

impl<Sz: Demand> Probe<Sz> for NoProbe {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _event: GProbeEvent<Sz>) {}

    #[inline(always)]
    fn on_decision_ns(&mut self, _ns: u64) {}
}

impl<Sz: Demand, P: Probe<Sz>> Probe<Sz> for &mut P {
    const ENABLED: bool = P::ENABLED;

    fn record(&mut self, event: GProbeEvent<Sz>) {
        (**self).record(event);
    }

    fn on_decision_ns(&mut self, ns: u64) {
        (**self).on_decision_ns(ns);
    }
}

/// Fan-out combinator: `(A, B)` forwards every event to both probes, so a
/// run can, say, write a JSONL log *and* aggregate metrics in one pass.
impl<Sz: Demand, A: Probe<Sz>, B: Probe<Sz>> Probe<Sz> for (A, B) {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    fn record(&mut self, event: GProbeEvent<Sz>) {
        if A::ENABLED && B::ENABLED {
            self.0.record(event.clone());
            self.1.record(event);
        } else if A::ENABLED {
            self.0.record(event);
        } else if B::ENABLED {
            self.1.record(event);
        }
    }

    fn on_decision_ns(&mut self, ns: u64) {
        if A::ENABLED {
            self.0.on_decision_ns(ns);
        }
        if B::ENABLED {
            self.1.on_decision_ns(ns);
        }
    }
}

/// Adapter turning any closure into a probe, convenient in tests:
/// `simulate_probed(&inst, &mut ff, &mut FnProbe::new(|ev| events.push(ev)))`.
#[derive(Debug)]
pub struct FnProbe<F> {
    f: F,
}

impl<F> FnProbe<F> {
    /// Wrap a closure as a probe.
    pub fn new(f: F) -> FnProbe<F> {
        FnProbe { f }
    }
}

impl<Sz: Demand, F: FnMut(GProbeEvent<Sz>)> Probe<Sz> for FnProbe<F> {
    fn record(&mut self, event: GProbeEvent<Sz>) {
        (self.f)(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noprobe_is_disabled_and_pairs_compose() {
        // Read through runtime bindings so the flags are checked as values
        // (a direct `assert!(!NoProbe::ENABLED)` is a constant assertion).
        let flags = [
            <NoProbe as Probe<Size>>::ENABLED,
            <(NoProbe, NoProbe) as Probe<Size>>::ENABLED,
        ];
        assert_eq!(flags, [false, false]);
        struct Count(u32);
        impl Probe for Count {
            fn record(&mut self, _: ProbeEvent) {
                self.0 += 1;
            }
        }
        let enabled = [<(Count, NoProbe)>::ENABLED, <(NoProbe, Count)>::ENABLED];
        assert_eq!(enabled, [true, true]);
        let mut pair = (Count(0), Count(0));
        pair.record(ProbeEvent::BinClosed {
            at: Tick(3),
            bin: BinId(0),
            open_ticks: 3,
        });
        assert_eq!((pair.0 .0, pair.1 .0), (1, 1));
    }

    #[test]
    fn event_accessors() {
        let ev = ProbeEvent::ItemArrived {
            at: Tick(7),
            item: ItemId(1),
            size: Size(4),
        };
        assert_eq!(ev.at(), Tick(7));
        assert_eq!(ev.kind(), "ItemArrived");
        assert!(!ev.is_fault_event());
    }

    #[test]
    fn fault_event_accessors() {
        let events = [
            ProbeEvent::BinCrashed {
                at: Tick(5),
                bin: BinId(2),
                orphans: 3,
            },
            ProbeEvent::ProvisionFailed {
                at: Tick(6),
                item: ItemId(0),
                attempt: 1,
            },
            ProbeEvent::RetryScheduled {
                at: Tick(6),
                item: ItemId(0),
                attempt: 2,
                next: Tick(8),
            },
            ProbeEvent::DispatchRejected {
                at: Tick(7),
                item: ItemId(1),
                bin: BinId(0),
            },
            ProbeEvent::ItemDropped {
                at: Tick(9),
                item: ItemId(1),
                reason: DropReason::QueueTimeout,
            },
            ProbeEvent::ItemRedispatched {
                at: Tick(9),
                item: ItemId(2),
                from: BinId(2),
                to: BinId(4),
                level: Size(6),
            },
            ProbeEvent::RecoveryEnded {
                at: Tick(9),
                bin: BinId(2),
                redispatched: 2,
                lost: 1,
            },
            ProbeEvent::ShardKilled {
                at: Tick(10),
                shard: 1,
                events_done: 42,
            },
            ProbeEvent::ShardRestarted {
                at: Tick(10),
                shard: 1,
                attempt: 1,
                replayed: 40,
            },
            ProbeEvent::ShardAbandoned {
                at: Tick(11),
                shard: 2,
                lost: 3,
                rerouted: 5,
            },
        ];
        for ev in &events {
            assert!(ev.is_fault_event(), "{}", ev.kind());
            assert!(ev.at() >= Tick(5));
        }
        let kinds: Vec<&str> = events.iter().map(|e| e.kind()).collect();
        assert_eq!(
            kinds,
            [
                "BinCrashed",
                "ProvisionFailed",
                "RetryScheduled",
                "DispatchRejected",
                "ItemDropped",
                "ItemRedispatched",
                "RecoveryEnded",
                "ShardKilled",
                "ShardRestarted",
                "ShardAbandoned",
            ]
        );
        assert_eq!(DropReason::CrashLost.name(), "crash_lost");
    }
}
