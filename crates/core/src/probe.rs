//! Zero-cost instrumentation seam for the packing engine.
//!
//! A [`Probe`] receives typed [`ProbeEvent`]s from
//! [`simulate_probed`](crate::engine::simulate_probed) as the event loop
//! runs: arrivals, fit attempts (with scan depth), placements, departures,
//! bin opens/closes, and validation violations. Observability consumers
//! (`dbp-obs`) build event logs, metrics registries, and time-series
//! samplers on top of this trait without the engine knowing about any of
//! them.
//!
//! ## Zero cost when off
//!
//! The seam is monomorphized: every emission site is guarded by
//! `if P::ENABLED`, an associated `const` that is `false` for [`NoProbe`].
//! The optimizer deletes the guarded blocks — including the `Instant::now()`
//! calls used for decision timing — so `simulate` (which forwards to
//! `simulate_probed` with [`NoProbe`]) compiles to the same code as the
//! uninstrumented engine. The `packing_throughput` benchmark keeps this
//! honest.

use crate::bin::{BinId, BinTag};
use crate::item::{ItemId, Size};
use crate::time::Tick;
use serde::{Deserialize, Serialize};

/// One typed engine event, stamped with the simulation tick it occurred at.
///
/// Serialization (via the JSONL exporter in `dbp-obs`) uses serde's
/// externally-tagged enum form: `{"ItemArrived": {"at": 3, ...}}`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProbeEvent {
    /// An item reached the engine and a decision is about to be requested.
    ItemArrived {
        /// Simulation tick.
        at: Tick,
        /// The arriving item.
        item: ItemId,
        /// Its size.
        size: Size,
    },
    /// The selector returned a decision; `bins_scanned` is the First-Fit
    /// scan depth it implies: the 1-based position of the chosen bin in
    /// opening order, or the full open-bin count when a new bin is opened.
    FitAttempt {
        /// Simulation tick.
        at: Tick,
        /// The item being placed.
        item: ItemId,
        /// Scan depth (see above).
        bins_scanned: u32,
        /// Number of bins open when the decision was made.
        open_bins: u32,
    },
    /// A new bin was opened for an item.
    BinOpened {
        /// Simulation tick.
        at: Tick,
        /// The new bin (ids are assigned in opening order).
        bin: BinId,
        /// Tag the selector attached to the bin.
        tag: BinTag,
        /// The item that caused the open.
        item: ItemId,
    },
    /// An item was placed into a bin (newly opened or existing).
    ItemPlaced {
        /// Simulation tick.
        at: Tick,
        /// The placed item.
        item: ItemId,
        /// The receiving bin.
        bin: BinId,
        /// Bin level *after* the placement.
        level: Size,
    },
    /// An item departed from its bin.
    ItemDeparted {
        /// Simulation tick.
        at: Tick,
        /// The departing item.
        item: ItemId,
        /// The bin it left.
        bin: BinId,
        /// Bin level *after* the departure.
        level: Size,
    },
    /// A bin became empty and closed.
    BinClosed {
        /// Simulation tick.
        at: Tick,
        /// The closed bin.
        bin: BinId,
        /// Total ticks the bin stayed open.
        open_ticks: u64,
    },
    /// A trace-validation violation (emitted by
    /// [`simulate_validated_probed`](crate::engine::simulate_validated_probed)
    /// before it panics).
    Violation {
        /// Simulation tick the violation refers to (0 when unknown).
        at: Tick,
        /// Human-readable description.
        message: String,
    },
    /// A bin (server) was killed by fault injection; its items were
    /// orphaned and handed back to the dispatcher for re-placement.
    BinCrashed {
        /// Simulation tick.
        at: Tick,
        /// The crashed bin.
        bin: BinId,
        /// Number of items orphaned by the crash.
        orphans: u32,
    },
    /// A provisioning attempt for a new bin failed (flaky boot).
    ProvisionFailed {
        /// Simulation tick.
        at: Tick,
        /// The item whose placement triggered the provisioning.
        item: ItemId,
        /// 1-based attempt number for this item.
        attempt: u32,
    },
    /// A retry was scheduled with exponential backoff after a failed
    /// provision or a rejected dispatch.
    RetryScheduled {
        /// Simulation tick.
        at: Tick,
        /// The waiting item.
        item: ItemId,
        /// The attempt number the retry will carry.
        attempt: u32,
        /// The tick the retry will fire at.
        next: Tick,
    },
    /// An open bin transiently rejected a dispatch (the placement did not
    /// happen; the item retries or drops).
    DispatchRejected {
        /// Simulation tick.
        at: Tick,
        /// The rejected item.
        item: ItemId,
        /// The bin that refused it.
        bin: BinId,
    },
    /// An item left the system without (further) service — an accounted
    /// SLA violation, never a panic.
    ItemDropped {
        /// Simulation tick.
        at: Tick,
        /// The dropped item.
        item: ItemId,
        /// Why it was dropped.
        reason: DropReason,
    },
    /// An orphaned item was placed again on a different bin after a crash —
    /// the one event where the no-migration rule is forcibly broken.
    ItemRedispatched {
        /// Simulation tick.
        at: Tick,
        /// The re-placed item.
        item: ItemId,
        /// The crashed bin it was orphaned from.
        from: BinId,
        /// The bin it landed on.
        to: BinId,
        /// Level of the receiving bin *after* the placement.
        level: Size,
    },
    /// Every orphan of one crash reached a terminal state (re-placed or
    /// dropped); `at - crash_at` is the crash's recovery time.
    RecoveryEnded {
        /// Simulation tick recovery completed at.
        at: Tick,
        /// The crashed bin this recovery belonged to.
        bin: BinId,
        /// Orphans successfully re-dispatched.
        redispatched: u32,
        /// Orphans lost.
        lost: u32,
    },
    /// A whole dispatcher shard died mid-run (injected kill or contained
    /// panic). `events_done` is how many engine events the shard had
    /// journaled before it went down.
    ShardKilled {
        /// Simulation tick of the shard's last journaled event.
        at: Tick,
        /// The dead shard.
        shard: u32,
        /// Engine events the shard emitted before dying.
        events_done: u64,
    },
    /// A killed shard came back up: its engine state was rebuilt from the
    /// shard's write-ahead event stream and the run continued.
    ShardRestarted {
        /// Simulation tick the restart resumed from.
        at: Tick,
        /// The resurrected shard.
        shard: u32,
        /// 1-based restart attempt for this shard.
        attempt: u32,
        /// Events replayed from the WAL to rebuild state.
        replayed: u64,
    },
    /// A shard exhausted its restart budget and was abandoned: in-flight
    /// sessions are billed lost, unarrived ones rerouted to healthy shards.
    ShardAbandoned {
        /// Simulation tick the shard was abandoned at.
        at: Tick,
        /// The abandoned shard.
        shard: u32,
        /// In-flight sessions lost with the shard.
        lost: u32,
        /// Unarrived sessions rerouted to healthy shards.
        rerouted: u32,
    },
}

/// Why an item was dropped instead of served (see
/// [`ProbeEvent::ItemDropped`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropReason {
    /// The bounded admission queue was full on arrival.
    QueueFull,
    /// The item waited longer than the admission queue timeout.
    QueueTimeout,
    /// Provisioning/dispatch retries were exhausted.
    RetriesExhausted,
    /// The item was orphaned by a crash and could not be re-placed.
    CrashLost,
}

impl DropReason {
    /// Stable lower-snake name for reports and metrics labels.
    pub fn name(self) -> &'static str {
        match self {
            DropReason::QueueFull => "queue_full",
            DropReason::QueueTimeout => "queue_timeout",
            DropReason::RetriesExhausted => "retries_exhausted",
            DropReason::CrashLost => "crash_lost",
        }
    }
}

impl ProbeEvent {
    /// The tick the event is stamped with.
    pub fn at(&self) -> Tick {
        match self {
            ProbeEvent::ItemArrived { at, .. }
            | ProbeEvent::FitAttempt { at, .. }
            | ProbeEvent::BinOpened { at, .. }
            | ProbeEvent::ItemPlaced { at, .. }
            | ProbeEvent::ItemDeparted { at, .. }
            | ProbeEvent::BinClosed { at, .. }
            | ProbeEvent::Violation { at, .. }
            | ProbeEvent::BinCrashed { at, .. }
            | ProbeEvent::ProvisionFailed { at, .. }
            | ProbeEvent::RetryScheduled { at, .. }
            | ProbeEvent::DispatchRejected { at, .. }
            | ProbeEvent::ItemDropped { at, .. }
            | ProbeEvent::ItemRedispatched { at, .. }
            | ProbeEvent::RecoveryEnded { at, .. }
            | ProbeEvent::ShardKilled { at, .. }
            | ProbeEvent::ShardRestarted { at, .. }
            | ProbeEvent::ShardAbandoned { at, .. } => *at,
        }
    }

    /// Stable event-kind name (the serde variant tag).
    pub fn kind(&self) -> &'static str {
        match self {
            ProbeEvent::ItemArrived { .. } => "ItemArrived",
            ProbeEvent::FitAttempt { .. } => "FitAttempt",
            ProbeEvent::BinOpened { .. } => "BinOpened",
            ProbeEvent::ItemPlaced { .. } => "ItemPlaced",
            ProbeEvent::ItemDeparted { .. } => "ItemDeparted",
            ProbeEvent::BinClosed { .. } => "BinClosed",
            ProbeEvent::Violation { .. } => "Violation",
            ProbeEvent::BinCrashed { .. } => "BinCrashed",
            ProbeEvent::ProvisionFailed { .. } => "ProvisionFailed",
            ProbeEvent::RetryScheduled { .. } => "RetryScheduled",
            ProbeEvent::DispatchRejected { .. } => "DispatchRejected",
            ProbeEvent::ItemDropped { .. } => "ItemDropped",
            ProbeEvent::ItemRedispatched { .. } => "ItemRedispatched",
            ProbeEvent::RecoveryEnded { .. } => "RecoveryEnded",
            ProbeEvent::ShardKilled { .. } => "ShardKilled",
            ProbeEvent::ShardRestarted { .. } => "ShardRestarted",
            ProbeEvent::ShardAbandoned { .. } => "ShardAbandoned",
        }
    }

    /// Whether this event comes from the fault-injection layer (crash,
    /// retry, recovery) rather than the fault-free engine vocabulary.
    pub fn is_fault_event(&self) -> bool {
        matches!(
            self,
            ProbeEvent::BinCrashed { .. }
                | ProbeEvent::ProvisionFailed { .. }
                | ProbeEvent::RetryScheduled { .. }
                | ProbeEvent::DispatchRejected { .. }
                | ProbeEvent::ItemDropped { .. }
                | ProbeEvent::ItemRedispatched { .. }
                | ProbeEvent::RecoveryEnded { .. }
                | ProbeEvent::ShardKilled { .. }
                | ProbeEvent::ShardRestarted { .. }
                | ProbeEvent::ShardAbandoned { .. }
        )
    }
}

/// Receiver of engine events. See the module docs for the zero-cost
/// contract; implementors outside benchmarks normally leave `ENABLED` at
/// its default of `true`.
pub trait Probe {
    /// Compile-time switch: when `false`, the engine skips event
    /// construction and decision timing entirely.
    const ENABLED: bool = true;

    /// Receive one event. Called in simulation order.
    fn record(&mut self, event: ProbeEvent);

    /// Receive the wall-clock duration of one full arrival handling — the
    /// `BinSelector::select` call *plus* the engine's placement bookkeeping
    /// (view updates, record pushes, selector notifications) — in
    /// nanoseconds. This is the per-arrival cost a caller of `simulate`
    /// actually observes, not just the selector's share. Only called when
    /// `ENABLED`; separate from [`record`](Probe::record) so the hot path
    /// never allocates for it.
    fn on_decision_ns(&mut self, ns: u64) {
        let _ = ns;
    }
}

/// The default probe: does nothing, costs nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoProbe;

impl Probe for NoProbe {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _event: ProbeEvent) {}

    #[inline(always)]
    fn on_decision_ns(&mut self, _ns: u64) {}
}

impl<P: Probe> Probe for &mut P {
    const ENABLED: bool = P::ENABLED;

    fn record(&mut self, event: ProbeEvent) {
        (**self).record(event);
    }

    fn on_decision_ns(&mut self, ns: u64) {
        (**self).on_decision_ns(ns);
    }
}

/// Fan-out combinator: `(A, B)` forwards every event to both probes, so a
/// run can, say, write a JSONL log *and* aggregate metrics in one pass.
impl<A: Probe, B: Probe> Probe for (A, B) {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    fn record(&mut self, event: ProbeEvent) {
        if A::ENABLED && B::ENABLED {
            self.0.record(event.clone());
            self.1.record(event);
        } else if A::ENABLED {
            self.0.record(event);
        } else if B::ENABLED {
            self.1.record(event);
        }
    }

    fn on_decision_ns(&mut self, ns: u64) {
        if A::ENABLED {
            self.0.on_decision_ns(ns);
        }
        if B::ENABLED {
            self.1.on_decision_ns(ns);
        }
    }
}

/// Adapter turning any closure into a probe, convenient in tests:
/// `simulate_probed(&inst, &mut ff, &mut FnProbe::new(|ev| events.push(ev)))`.
#[derive(Debug)]
pub struct FnProbe<F: FnMut(ProbeEvent)> {
    f: F,
}

impl<F: FnMut(ProbeEvent)> FnProbe<F> {
    /// Wrap a closure as a probe.
    pub fn new(f: F) -> FnProbe<F> {
        FnProbe { f }
    }
}

impl<F: FnMut(ProbeEvent)> Probe for FnProbe<F> {
    fn record(&mut self, event: ProbeEvent) {
        (self.f)(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noprobe_is_disabled_and_pairs_compose() {
        // Read through runtime bindings so the flags are checked as values
        // (a direct `assert!(!NoProbe::ENABLED)` is a constant assertion).
        let flags = [NoProbe::ENABLED, <(NoProbe, NoProbe)>::ENABLED];
        assert_eq!(flags, [false, false]);
        struct Count(u32);
        impl Probe for Count {
            fn record(&mut self, _: ProbeEvent) {
                self.0 += 1;
            }
        }
        let enabled = [<(Count, NoProbe)>::ENABLED, <(NoProbe, Count)>::ENABLED];
        assert_eq!(enabled, [true, true]);
        let mut pair = (Count(0), Count(0));
        pair.record(ProbeEvent::BinClosed {
            at: Tick(3),
            bin: BinId(0),
            open_ticks: 3,
        });
        assert_eq!((pair.0 .0, pair.1 .0), (1, 1));
    }

    #[test]
    fn event_accessors() {
        let ev = ProbeEvent::ItemArrived {
            at: Tick(7),
            item: ItemId(1),
            size: Size(4),
        };
        assert_eq!(ev.at(), Tick(7));
        assert_eq!(ev.kind(), "ItemArrived");
        assert!(!ev.is_fault_event());
    }

    #[test]
    fn fault_event_accessors() {
        let events = [
            ProbeEvent::BinCrashed {
                at: Tick(5),
                bin: BinId(2),
                orphans: 3,
            },
            ProbeEvent::ProvisionFailed {
                at: Tick(6),
                item: ItemId(0),
                attempt: 1,
            },
            ProbeEvent::RetryScheduled {
                at: Tick(6),
                item: ItemId(0),
                attempt: 2,
                next: Tick(8),
            },
            ProbeEvent::DispatchRejected {
                at: Tick(7),
                item: ItemId(1),
                bin: BinId(0),
            },
            ProbeEvent::ItemDropped {
                at: Tick(9),
                item: ItemId(1),
                reason: DropReason::QueueTimeout,
            },
            ProbeEvent::ItemRedispatched {
                at: Tick(9),
                item: ItemId(2),
                from: BinId(2),
                to: BinId(4),
                level: Size(6),
            },
            ProbeEvent::RecoveryEnded {
                at: Tick(9),
                bin: BinId(2),
                redispatched: 2,
                lost: 1,
            },
            ProbeEvent::ShardKilled {
                at: Tick(10),
                shard: 1,
                events_done: 42,
            },
            ProbeEvent::ShardRestarted {
                at: Tick(10),
                shard: 1,
                attempt: 1,
                replayed: 40,
            },
            ProbeEvent::ShardAbandoned {
                at: Tick(11),
                shard: 2,
                lost: 3,
                rerouted: 5,
            },
        ];
        for ev in &events {
            assert!(ev.is_fault_event(), "{}", ev.kind());
            assert!(ev.at() >= Tick(5));
        }
        let kinds: Vec<&str> = events.iter().map(|e| e.kind()).collect();
        assert_eq!(
            kinds,
            [
                "BinCrashed",
                "ProvisionFailed",
                "RetryScheduled",
                "DispatchRejected",
                "ItemDropped",
                "ItemRedispatched",
                "RecoveryEnded",
                "ShardKilled",
                "ShardRestarted",
                "ShardAbandoned",
            ]
        );
        assert_eq!(DropReason::CrashLost.name(), "crash_lost");
    }
}
