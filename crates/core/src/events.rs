//! The event schedule driving a simulation.
//!
//! Ordering rules (load-bearing for the paper's constructions):
//!
//! 1. Events are processed in tick order.
//! 2. At equal ticks, **departures precede arrivals** — a bin freed at `t`
//!    can accept an item arriving at `t`, matching the instantaneous
//!    semantics of the proofs.
//! 3. Simultaneous arrivals are presented in instance order; simultaneous
//!    departures likewise. Theorem 2's construction interleaves same-tick
//!    group arrivals this way.

use crate::demand::Demand;
use crate::instance::GInstance;
use crate::item::ItemId;
use crate::time::Tick;

/// What happens to an item at an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// The item leaves the system (processed first at equal ticks).
    Departure,
    /// The item enters the system and must be packed.
    Arrival,
}

/// A single scheduled event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Event {
    /// When the event happens.
    pub at: Tick,
    /// Arrival or departure.
    pub kind: EventKind,
    /// The affected item.
    pub item: ItemId,
}

/// Build the full, sorted event schedule for an instance.
pub fn schedule<Sz: Demand>(instance: &GInstance<Sz>) -> Vec<Event> {
    let mut events = Vec::with_capacity(instance.len() * 2);
    for it in instance.items() {
        events.push(Event {
            at: it.arrival,
            kind: EventKind::Arrival,
            item: it.id,
        });
        events.push(Event {
            at: it.departure,
            kind: EventKind::Departure,
            item: it.id,
        });
    }
    // Stable sort on (tick, kind) preserves instance order among equal keys;
    // EventKind::Departure < EventKind::Arrival by derive order.
    events.sort_by_key(|e| (e.at, e.kind));
    events
}

/// All distinct event ticks of an instance, ascending. The active item set is
/// constant on each half-open segment between consecutive event ticks — the
/// basis for exact piecewise-constant cost integration.
pub fn event_ticks<Sz: Demand>(instance: &GInstance<Sz>) -> Vec<Tick> {
    let mut ticks: Vec<Tick> = instance
        .items()
        .iter()
        .flat_map(|r| [r.arrival, r.departure])
        .collect();
    ticks.sort_unstable();
    ticks.dedup();
    ticks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;

    #[test]
    fn departures_precede_arrivals_at_equal_ticks() {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 5, 1); // departs at 5
        b.add(5, 9, 1); // arrives at 5
        let inst = b.build().unwrap();
        let evs = schedule(&inst);
        assert_eq!(evs.len(), 4);
        assert_eq!(evs[1].kind, EventKind::Departure);
        assert_eq!(evs[1].item, ItemId(0));
        assert_eq!(evs[2].kind, EventKind::Arrival);
        assert_eq!(evs[2].item, ItemId(1));
    }

    #[test]
    fn simultaneous_arrivals_keep_instance_order() {
        let mut b = InstanceBuilder::new(10);
        for _ in 0..5 {
            b.add(3, 7, 2);
        }
        let inst = b.build().unwrap();
        let evs = schedule(&inst);
        let arrivals: Vec<ItemId> = evs
            .iter()
            .filter(|e| e.kind == EventKind::Arrival)
            .map(|e| e.item)
            .collect();
        assert_eq!(arrivals, (0..5).map(ItemId).collect::<Vec<_>>());
    }

    #[test]
    fn event_ticks_deduplicated_and_sorted() {
        let mut b = InstanceBuilder::new(10);
        b.add(4, 9, 1);
        b.add(0, 4, 1);
        b.add(0, 9, 1);
        let inst = b.build().unwrap();
        let ticks = event_ticks(&inst);
        assert_eq!(ticks, vec![Tick(0), Tick(4), Tick(9)]);
    }
}
