//! The cost bounds and competitive-ratio formulas of the paper, as exact
//! rational functions.
//!
//! * Bounds (b.1)–(b.3) of §4 for any algorithm's total cost;
//! * the closed-form competitive-ratio bounds of Theorems 1–5 and §4.4.
//!
//! All costs are in bin-ticks (the cost rate `C` cancels from every ratio).

use crate::instance::Instance;
use crate::ratio::Ratio;

/// Bound (b.1): `A_total(R) ≥ u(R)/W` — no bin capacity is ever wasted.
pub fn demand_lower_bound(instance: &Instance) -> Ratio {
    Ratio::new(instance.total_demand(), instance.capacity().raw() as u128)
}

/// Bound (b.2): `A_total(R) ≥ span(R)` — at least one bin is open whenever
/// an item is active.
pub fn span_lower_bound(instance: &Instance) -> Ratio {
    Ratio::from_int(instance.span().raw() as u128)
}

/// The combined lower bound `max{u(R)/W, span(R)}` used throughout §4; it
/// lower-bounds `OPT_total(R)` as well.
pub fn combined_lower_bound(instance: &Instance) -> Ratio {
    demand_lower_bound(instance).max(span_lower_bound(instance))
}

/// Bound (b.3): `A_total(R) ≤ Σ len(I(r))` — every item in its own bin.
pub fn naive_upper_bound(instance: &Instance) -> Ratio {
    let total: u128 = instance
        .items()
        .iter()
        .map(|r| r.interval_len().raw() as u128)
        .sum();
    Ratio::from_int(total)
}

/// Theorem 1: the competitive ratio of *any* Any Fit algorithm is at least
/// µ; the witness instance with parameters `(k, µ)` achieves exactly
/// `kµ / (k + µ − 1)`.
pub fn theorem1_ratio(k: u64, mu: u64) -> Ratio {
    assert!(k >= 1 && mu >= 1);
    Ratio::new(k as u128 * mu as u128, k as u128 + mu as u128 - 1)
}

/// Theorem 2: on the Best Fit witness with parameter `k` (and enough
/// iterations), `BF_total / OPT_total ≥ k/2` — unbounded in k.
pub fn theorem2_ratio_floor(k: u64) -> Ratio {
    Ratio::new(k as u128, 2)
}

/// Theorem 3: if every size is ≥ W/k, First Fit (indeed any algorithm) costs
/// at most `k · OPT_total(R)`.
pub fn ff_large_items_bound(k: u64) -> Ratio {
    assert!(k > 1, "Theorem 3 requires k > 1");
    Ratio::from_int(k as u128)
}

/// Theorem 4: if every size is < W/k (k > 1), First Fit's competitive ratio
/// is at most `k/(k−1) · µ + 6k/(k−1) + 1`.
pub fn ff_small_items_bound(k: u64, mu: Ratio) -> Ratio {
    assert!(k > 1, "Theorem 4 requires k > 1");
    let kk = Ratio::new(k as u128, k as u128 - 1);
    kk * mu + kk * Ratio::from_int(6) + Ratio::ONE
}

/// Theorem 5: First Fit's general competitive ratio is at most `2µ + 13`.
///
/// ```
/// use dbp_core::bounds::ff_general_bound;
/// use dbp_core::ratio::Ratio;
/// assert_eq!(ff_general_bound(Ratio::from_int(10)), Ratio::from_int(33));
/// ```
pub fn ff_general_bound(mu: Ratio) -> Ratio {
    Ratio::from_int(2) * mu + Ratio::from_int(13)
}

/// §4.4, µ unknown (k = 8): MFF's competitive ratio is at most
/// `8/7 · µ + 55/7`.
///
/// ```
/// use dbp_core::bounds::mff_unknown_mu_bound;
/// use dbp_core::ratio::Ratio;
/// // At µ = 10 the bound is 135/7 ≈ 19.29 — far below FF's 2µ+13 = 33.
/// assert_eq!(mff_unknown_mu_bound(Ratio::from_int(10)), Ratio::new(135, 7));
/// ```
pub fn mff_unknown_mu_bound(mu: Ratio) -> Ratio {
    Ratio::new(8, 7) * mu + Ratio::new(55, 7)
}

/// §4.4, µ known (k = µ + 7): MFF's competitive ratio is at most `µ + 8`.
pub fn mff_known_mu_bound(mu: Ratio) -> Ratio {
    mu + Ratio::from_int(8)
}

/// The objective MFF's k-parameter trades off (§4.4):
/// `max{ k, (µ+6) / (1 − 1/k) }`, exactly. Minimized at `k = µ + 7`.
pub fn mff_k_objective(k: u64, mu: Ratio) -> Ratio {
    assert!(k > 1, "MFF objective requires k > 1");
    let kr = Ratio::from_int(k as u128);
    // (µ+6) / (1 − 1/k) = (µ+6)·k/(k−1)
    let small_term = (mu + Ratio::from_int(6)) * Ratio::new(k as u128, k as u128 - 1);
    kr.max(small_term)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;

    fn demo() -> Instance {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 4, 5);
        b.add(2, 6, 5);
        b.add(9, 12, 3);
        b.build().unwrap()
    }

    #[test]
    fn b1_b2_b3_ordering() {
        let inst = demo();
        // u(R) = 49, W = 10 -> b.1 = 4.9; span = 9 -> b.2 = 9; b.3 = 11.
        assert_eq!(demand_lower_bound(&inst), Ratio::new(49, 10));
        assert_eq!(span_lower_bound(&inst), Ratio::from_int(9));
        assert_eq!(combined_lower_bound(&inst), Ratio::from_int(9));
        assert_eq!(naive_upper_bound(&inst), Ratio::from_int(11));
        assert!(combined_lower_bound(&inst) <= naive_upper_bound(&inst));
    }

    #[test]
    fn theorem1_formula_values() {
        // kµ/(k+µ−1): k=4, µ=10 -> 40/13.
        assert_eq!(theorem1_ratio(4, 10), Ratio::new(40, 13));
        // As k -> ∞ the ratio approaches µ from below.
        assert!(theorem1_ratio(1000, 10) < Ratio::from_int(10));
        assert!(theorem1_ratio(1000, 10) > Ratio::new(99, 10));
        // µ = 1 gives ratio 1 for any k.
        assert_eq!(theorem1_ratio(17, 1), Ratio::ONE);
    }

    #[test]
    fn theorem4_formula_at_k2() {
        // k=2: 2µ + 13.
        let mu = Ratio::from_int(5);
        assert_eq!(
            ff_small_items_bound(2, mu),
            Ratio::from_int(2) * mu + Ratio::from_int(13)
        );
    }

    #[test]
    fn ff_general_matches_theorem4_k2() {
        for m in 1..20u64 {
            let mu = Ratio::from_int(m as u128);
            assert_eq!(ff_general_bound(mu), ff_small_items_bound(2, mu));
        }
    }

    #[test]
    fn mff_bounds_beat_ff_general() {
        for m in 1..=100u64 {
            let mu = Ratio::from_int(m as u128);
            assert!(mff_unknown_mu_bound(mu) < ff_general_bound(mu));
            // µ+8 ≤ 8µ/7 + 55/7 for µ ≥ 1, with equality exactly at µ = 1.
            assert!(mff_known_mu_bound(mu) <= mff_unknown_mu_bound(mu));
            if m > 1 {
                assert!(mff_known_mu_bound(mu) < mff_unknown_mu_bound(mu));
            }
        }
    }

    #[test]
    fn mff_k_objective_minimized_at_mu_plus_7() {
        for mu_int in [1u64, 3, 10, 25] {
            let mu = Ratio::from_int(mu_int as u128);
            let opt_k = mu_int + 7;
            let at_opt = mff_k_objective(opt_k, mu);
            assert_eq!(at_opt, Ratio::from_int(mu_int as u128 + 7));
            for k in 2..=(opt_k + 20) {
                assert!(
                    mff_k_objective(k, mu) >= at_opt,
                    "k={k} beats µ+7 at µ={mu_int}"
                );
            }
        }
    }

    #[test]
    fn mff_unknown_bound_is_objective_at_k8_plus_one() {
        // max{8, 8/7 µ + 48/7} + 1 = 8/7 µ + 55/7 for µ ≥ 1.
        for m in 1..=50u64 {
            let mu = Ratio::from_int(m as u128);
            assert_eq!(
                mff_k_objective(8, mu) + Ratio::ONE,
                mff_unknown_mu_bound(mu)
            );
        }
    }
}
