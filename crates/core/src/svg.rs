//! SVG rendering of packing traces: one lane per bin, one rectangle per
//! item, opacity by size — a publication-quality companion to the text
//! Gantt in [`gantt`](crate::gantt). No dependencies; the output is plain
//! hand-assembled SVG.

use crate::instance::Instance;
use crate::trace::PackingTrace;
use std::fmt::Write as _;

/// Layout constants for the rendering.
#[derive(Debug, Clone, Copy)]
pub struct SvgOptions {
    /// Total drawing width in pixels (time axis).
    pub width: u32,
    /// Height of one bin lane in pixels.
    pub lane_height: u32,
    /// Vertical gap between lanes.
    pub lane_gap: u32,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            width: 900,
            lane_height: 22,
            lane_gap: 4,
        }
    }
}

/// A categorical palette (color-blind friendly Okabe–Ito).
const PALETTE: [&str; 8] = [
    "#0072B2", "#E69F00", "#009E73", "#CC79A7", "#56B4E9", "#D55E00", "#F0E442", "#999999",
];

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Render a trace as an SVG document. Each bin is a horizontal lane with a
/// light outline over its usage period; each item is a rectangle spanning
/// its interval, colored by bin tag and sized (vertically) by its share of
/// the capacity. Returns the SVG text.
pub fn render_svg(instance: &Instance, trace: &PackingTrace, opts: SvgOptions) -> String {
    let Some(period) = instance.packing_period() else {
        return String::from("<svg xmlns=\"http://www.w3.org/2000/svg\"/>");
    };
    let t0 = period.start.raw();
    let t1 = period.end.raw().max(t0 + 1);
    let span = (t1 - t0) as f64;
    let label_w = 48u32;
    let plot_w = opts.width.saturating_sub(label_w).max(1) as f64;
    let x_of = |t: u64| label_w as f64 + (t.saturating_sub(t0)) as f64 / span * plot_w;

    let lane_pitch = (opts.lane_height + opts.lane_gap) as f64;
    let height = (trace.bins.len() as f64 * lane_pitch + opts.lane_gap as f64).ceil() as u32;
    let capacity = trace.capacity.raw().max(1) as f64;

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\" \
         font-family=\"monospace\" font-size=\"11\">",
        opts.width, height
    );
    let _ = writeln!(
        svg,
        "<title>{} — {} bins, {} bin-ticks</title>",
        xml_escape(&trace.algorithm),
        trace.bins.len(),
        trace.total_cost_ticks()
    );

    for (lane, bin) in trace.bins.iter().enumerate() {
        let y = opts.lane_gap as f64 + lane as f64 * lane_pitch;
        // Usage-period outline.
        let (bx0, bx1) = (x_of(bin.opened_at.raw()), x_of(bin.closed_at.raw()));
        let _ = writeln!(
            svg,
            "<rect x=\"{bx0:.1}\" y=\"{y:.1}\" width=\"{:.1}\" height=\"{}\" \
             fill=\"none\" stroke=\"#bbb\" stroke-width=\"1\"/>",
            (bx1 - bx0).max(1.0),
            opts.lane_height
        );
        // Lane label.
        let _ = writeln!(
            svg,
            "<text x=\"2\" y=\"{:.1}\" fill=\"#444\">{}</text>",
            y + opts.lane_height as f64 * 0.7,
            bin.id
        );
        // Item rectangles, stacked by cumulative share of capacity (an
        // approximation: items stack in assignment order; exact per-instant
        // stacking would need fragment splitting, unnecessary for reading).
        let color = PALETTE[bin.tag.0 as usize % PALETTE.len()];
        for &id in &bin.items {
            let it = instance.item(id);
            let (ix0, ix1) = (x_of(it.arrival.raw()), x_of(it.departure.raw()));
            let h = (it.size.raw() as f64 / capacity * opts.lane_height as f64).max(1.5);
            let _ = writeln!(
                svg,
                "<rect x=\"{ix0:.1}\" y=\"{:.1}\" width=\"{:.1}\" height=\"{h:.1}\" \
                 fill=\"{color}\" fill-opacity=\"0.45\" stroke=\"{color}\" \
                 stroke-width=\"0.5\"><title>{} s={} [{}, {})</title></rect>",
                y + 1.0,
                (ix1 - ix0).max(1.0),
                it.id,
                it.size,
                it.arrival.raw(),
                it.departure.raw()
            );
        }
    }
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::FirstFit;
    use crate::engine::simulate_validated;
    use crate::instance::InstanceBuilder;

    fn demo() -> (Instance, PackingTrace) {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 50, 6);
        b.add(5, 40, 6);
        b.add(10, 30, 4);
        let inst = b.build().unwrap();
        let trace = simulate_validated(&inst, &mut FirstFit::new());
        (inst, trace)
    }

    #[test]
    fn svg_has_one_outline_per_bin_and_one_rect_per_item() {
        let (inst, trace) = demo();
        let svg = render_svg(&inst, &trace, SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        let rects = svg.matches("<rect").count();
        assert_eq!(rects, trace.bins.len() + inst.len());
        let titles = svg.matches("<title>").count();
        assert_eq!(titles, 1 + inst.len());
    }

    #[test]
    fn svg_tags_are_balanced() {
        let (inst, trace) = demo();
        let svg = render_svg(&inst, &trace, SvgOptions::default());
        assert_eq!(svg.matches("<svg").count(), svg.matches("</svg>").count());
        assert_eq!(
            svg.matches("<title>").count(),
            svg.matches("</title>").count()
        );
        // Self-closing rects: no closing tag except those carrying titles.
        assert_eq!(
            svg.matches("</rect>").count(),
            inst.len() // item rects carry <title> children
        );
    }

    #[test]
    fn empty_instance_yields_minimal_svg() {
        let inst = Instance::new(crate::item::Size(5), vec![]).unwrap();
        let trace = simulate_validated(&inst, &mut FirstFit::new());
        let svg = render_svg(&inst, &trace, SvgOptions::default());
        assert!(svg.contains("<svg"));
        assert!(!svg.contains("<rect"));
    }

    #[test]
    fn escape_handles_special_chars() {
        assert_eq!(xml_escape("a<b&c>d"), "a&lt;b&amp;c&gt;d");
    }
}
