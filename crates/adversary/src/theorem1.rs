//! The Theorem 1 construction (Figure 2): a witness showing the competitive
//! ratio of *any* Any Fit algorithm is at least `kµ/(k+µ−1) → µ`.
//!
//! At time 0, `k²` items of size `W/k` arrive. Every Any Fit algorithm is
//! forced to fill bins sequentially (a new bin opens only when all open bins
//! are full), so bin `j` receives items `jk..(j+1)k`. At time ∆ all items
//! except one per bin depart; the survivors stay until µ∆. The algorithm
//! holds `k` nearly-empty bins open for `(µ−1)∆` while the optimum repacks
//! the `k` survivors (total size `W`) into a single bin.

use dbp_core::bounds::theorem1_ratio;
use dbp_core::instance::{Instance, InstanceBuilder};
use dbp_core::ratio::Ratio;

/// Parameters of the Theorem 1 witness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Theorem1 {
    /// Number of bins forced open (and items per bin); the ratio approaches
    /// µ as `k → ∞`.
    pub k: u64,
    /// Target max/min interval length ratio (µ ≥ 1, integer).
    pub mu: u64,
    /// Minimum interval length ∆ in ticks.
    pub delta: u64,
    /// Item size; the bin capacity is `k · item_size`.
    pub item_size: u64,
}

impl Theorem1 {
    /// The canonical witness with `∆ = 1000` ticks and unit-ish items.
    ///
    /// # Panics
    /// Panics unless `k ≥ 1` and `µ ≥ 1`.
    pub fn new(k: u64, mu: u64) -> Theorem1 {
        Theorem1 {
            k,
            mu,
            delta: 1000,
            item_size: 1,
        }
    }

    /// Bin capacity `W = k · item_size`.
    pub fn capacity(&self) -> u64 {
        self.k * self.item_size
    }

    /// Build the witness instance.
    ///
    /// # Panics
    /// Panics on degenerate parameters (`k = 0`, `µ = 0`, `∆ = 0`).
    pub fn instance(&self) -> Instance {
        assert!(self.k >= 1 && self.mu >= 1 && self.delta >= 1 && self.item_size >= 1);
        let mut b = InstanceBuilder::new(self.capacity());
        let survivors_leave = self.mu * self.delta;
        for i in 0..self.k * self.k {
            // Sequential fill puts item i into bin i/k; the first item of
            // each bin survives to µ∆, the rest depart at ∆.
            let departure = if i % self.k == 0 {
                survivors_leave
            } else {
                self.delta
            };
            b.add(0, departure, self.item_size);
        }
        b.build().expect("Theorem 1 witness must be valid")
    }

    /// The cost any Any Fit algorithm incurs: `k · µ∆` bin-ticks.
    pub fn expected_anyfit_cost_ticks(&self) -> u128 {
        self.k as u128 * self.mu as u128 * self.delta as u128
    }

    /// `OPT_total`: `k∆ + (µ−1)∆` bin-ticks.
    pub fn expected_opt_cost_ticks(&self) -> u128 {
        (self.k as u128 + self.mu as u128 - 1) * self.delta as u128
    }

    /// The exact achieved ratio `kµ/(k+µ−1)` (equation (1) of the paper).
    pub fn expected_ratio(&self) -> Ratio {
        theorem1_ratio(self.k, self.mu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::prelude::*;

    #[test]
    fn construction_shape() {
        let t1 = Theorem1::new(4, 10);
        let inst = t1.instance();
        assert_eq!(inst.len(), 16);
        assert_eq!(inst.capacity().raw(), 4);
        assert_eq!(inst.mu().unwrap(), Ratio::from_int(10));
        assert_eq!(inst.span().raw() as u128, 10 * 1000);
    }

    #[test]
    fn closed_form_matches_formula() {
        let t1 = Theorem1::new(4, 10);
        assert_eq!(
            t1.expected_ratio(),
            Ratio::new(
                t1.expected_anyfit_cost_ticks(),
                t1.expected_opt_cost_ticks()
            )
        );
    }

    #[test]
    fn every_any_fit_algorithm_pays_k_mu_delta() {
        let t1 = Theorem1::new(5, 7);
        let inst = t1.instance();
        for mut sel in [
            Box::new(FirstFit::new()) as Box<dyn BinSelector>,
            Box::new(BestFit::new()),
            Box::new(WorstFit::new()),
            Box::new(LastFit::new()),
            Box::new(MostItemsFit::new()),
            Box::new(RandomFit::seeded(99)),
        ] {
            let trace = simulate_validated(&inst, &mut *sel);
            assert_eq!(
                trace.total_cost_ticks(),
                t1.expected_anyfit_cost_ticks(),
                "{} did not pay the forced cost",
                trace.algorithm
            );
            assert_eq!(trace.bins_used(), 5);
            assert_eq!(trace.max_open_bins(), 5);
        }
    }

    #[test]
    fn mu_equal_one_gives_ratio_one() {
        let t1 = Theorem1::new(6, 1);
        assert_eq!(t1.expected_ratio(), Ratio::ONE);
        let inst = t1.instance();
        let trace = simulate_validated(&inst, &mut FirstFit::new());
        assert_eq!(trace.total_cost_ticks(), t1.expected_anyfit_cost_ticks());
    }
}
