//! # dbp-adversary — the paper's adversarial constructions, executable
//!
//! Exact, parameterized generators for the two lower-bound witnesses of the
//! SPAA'14 MinTotal DBP paper:
//!
//! * [`theorem1::Theorem1`] — Figure 2 / Theorem 1: forces *any* Any Fit
//!   algorithm to pay `kµ∆` while the optimum pays `(k+µ−1)∆`, achieving
//!   the ratio `kµ/(k+µ−1) → µ`. (Per the paper's footnote the same idea
//!   lower-bounds any online algorithm; our static instance realizes it for
//!   the whole deterministic Any Fit family at once.)
//! * [`theorem2::Theorem2`] — Figure 3 / Theorem 2: forces Best Fit to keep
//!   `k` bins open forever, achieving a ratio ≥ `k/2` for any fixed µ —
//!   i.e. Best Fit is unboundedly bad.
//!
//! Both constructions are built on integer ticks with both extreme interval
//! lengths attained, so the instances' measured µ equals the target µ and
//! measured costs match the closed forms exactly (asserted in tests and the
//! `fig2_*` / `fig3_*` experiments).

//! ```
//! use dbp_adversary::Theorem1;
//! use dbp_core::prelude::*;
//! use dbp_opt::{opt_total, SolveMode};
//!
//! let witness = Theorem1::new(8, 10);
//! let instance = witness.instance();
//! let trace = simulate_validated(&instance, &mut BestFit::new());
//! let opt = opt_total(&instance, SolveMode::default());
//! // Measured ratio equals kµ/(k+µ−1) = 80/17, exactly.
//! assert_eq!(opt.ratio_of(trace.total_cost_ticks()), witness.expected_ratio());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adaptive;
pub mod search;
pub mod theorem1;
pub mod theorem2;

pub use adaptive::{AdaptiveMuAdversary, AdaptiveOutcome};
pub use search::{best_of_restarts, hill_climb, SearchConfig, SearchResult};
pub use theorem1::Theorem1;
pub use theorem2::Theorem2;

#[cfg(test)]
mod cross_checks {
    use super::*;
    use dbp_core::prelude::*;
    use dbp_opt::{opt_total, SolveMode};

    #[test]
    fn theorem1_opt_total_matches_closed_form() {
        for (k, mu) in [(2, 2), (3, 5), (5, 10), (8, 4)] {
            let t1 = Theorem1::new(k, mu);
            let inst = t1.instance();
            let opt = opt_total(&inst, SolveMode::default());
            assert!(opt.is_exact());
            assert_eq!(
                opt.exact_ticks(),
                t1.expected_opt_cost_ticks(),
                "OPT mismatch at k={k}, mu={mu}"
            );
        }
    }

    #[test]
    fn theorem1_measured_ratio_equals_formula_exactly() {
        for (k, mu) in [(2, 3), (4, 10), (6, 6)] {
            let t1 = Theorem1::new(k, mu);
            let inst = t1.instance();
            let trace = simulate_validated(&inst, &mut FirstFit::new());
            let opt = opt_total(&inst, SolveMode::default());
            let ratio = Ratio::new(trace.total_cost_ticks(), opt.exact_ticks());
            assert_eq!(
                ratio,
                t1.expected_ratio(),
                "ratio mismatch at k={k}, mu={mu}"
            );
        }
    }

    #[test]
    fn theorem2_ratio_exceeds_k_over_2_for_large_n() {
        // With n well past the paper's threshold, BF/OPT must exceed k/2.
        let t2 = Theorem2::new(4, 2, 8);
        let inst = t2.instance();
        let trace = simulate_validated(&inst, &mut BestFit::new());
        let opt = opt_total(&inst, SolveMode::default());
        assert!(opt.is_exact());
        let ratio = Ratio::new(trace.total_cost_ticks(), opt.exact_ticks());
        assert!(
            ratio >= t2.ratio_floor(),
            "BF ratio {ratio} below k/2 = {}",
            t2.ratio_floor()
        );
    }

    #[test]
    fn theorem2_first_fit_stays_within_its_theorem5_bound() {
        let t2 = Theorem2::new(4, 2, 6);
        let inst = t2.instance();
        let trace = simulate_validated(&inst, &mut FirstFit::new());
        let opt = opt_total(&inst, SolveMode::default());
        let ratio = Ratio::new(trace.total_cost_ticks(), opt.exact_ticks());
        let bound = dbp_core::bounds::ff_general_bound(inst.mu().unwrap());
        assert!(ratio <= bound, "FF ratio {ratio} exceeds 2µ+13 = {bound}");
    }
}
