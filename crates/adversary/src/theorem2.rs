//! The Theorem 2 construction (Figure 3): a witness showing Best Fit has
//! **no bounded competitive ratio** for any given µ.
//!
//! All items have unit size against capacity `W = k·B`. At time 0, `k·W`
//! items force `k` full bins; at ∆ each bin `b_i` is reduced to level
//! `B − (i+1)`. Then, in each iteration `j`, `k` groups of items arrive a
//! few ticks apart. Best Fit sends each whole group to the *highest-level*
//! bin, which (by the staircase of levels the construction maintains) is
//! always the bin whose "old" items are about to depart — so all `k` bins
//! stay open forever, while almost all of the time the active items would
//! fit into a single bin.
//!
//! The same instance is harmless for First Fit: FF sends every group to the
//! earliest open bin, so bins `b_1..b_{k−1}` close after their scheduled
//! purges and FF's cost stays near the optimum — run both in the
//! `fig3_bestfit_unbounded` experiment to see the separation.
//!
//! ### Tick layout
//!
//! With iteration spacing `S = µ∆ − 1` and `T_j = j·S − (2k+2)`:
//!
//! * group `(j, m)` (`m = 1..k`, size `B − (jk+m)` items) arrives at
//!   `T_j + 2m`;
//! * the old items of bin `b_{m−1}` depart one tick later (`T_j + 2m + 1`),
//!   strictly after the group is packed (departures precede arrivals at
//!   equal ticks, so the +1 is required and sufficient);
//! * groups of the final iteration depart `∆` after arrival.
//!
//! Every interval length then lies in `[∆, µ∆]` with both endpoints
//! attained, so the instance's measured µ is exact.

use dbp_core::bounds::theorem2_ratio_floor;
use dbp_core::instance::{Instance, InstanceBuilder};
use dbp_core::ratio::Ratio;

/// Parameters of the Theorem 2 witness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Theorem2 {
    /// Number of bins Best Fit is forced to keep open; the achieved ratio
    /// grows like `k/2`.
    pub k: u64,
    /// Target max/min interval-length ratio (µ ≥ 2, integer).
    pub mu: u64,
    /// Number of iterations; the ratio approaches `k` as `n → ∞` (the paper
    /// shows `≥ k/2` once `n ≳ (k−1)/µ`).
    pub n: u64,
    /// Minimum interval length ∆ in ticks.
    pub delta: u64,
}

impl Theorem2 {
    /// Canonical parameters: `∆ = 4(k+1)` (the smallest comfortable value).
    ///
    /// # Panics
    /// Panics unless `k ≥ 2`, `µ ≥ 2`, `n ≥ 1`.
    pub fn new(k: u64, mu: u64, n: u64) -> Theorem2 {
        let t2 = Theorem2 {
            k,
            mu,
            n,
            delta: 4 * (k + 1),
        };
        t2.validate();
        t2
    }

    fn validate(&self) {
        assert!(self.k >= 2, "Theorem 2 needs k >= 2");
        assert!(self.mu >= 2, "Theorem 2 needs mu >= 2");
        assert!(self.n >= 1, "Theorem 2 needs n >= 1");
        // Groups of iteration 1 must arrive after the setup purge at ∆.
        assert!(
            (self.mu - 1) * self.delta >= 2 * self.k + 3,
            "delta too small for k"
        );
    }

    /// Items per level-unit of a bin: `B = W/k`, chosen so the smallest
    /// group (`B − (nk + k)`) still has `k` items.
    pub fn levels_per_bin(&self) -> u64 {
        self.k * (self.n + 2)
    }

    /// Bin capacity `W = k · B`.
    pub fn capacity(&self) -> u64 {
        self.k * self.levels_per_bin()
    }

    /// Iteration spacing `S = µ∆ − 1` (so that group intervals, which span
    /// one iteration plus one purge tick, have length exactly µ∆).
    fn spacing(&self) -> u64 {
        self.mu * self.delta - 1
    }

    /// Start of iteration `j`'s arrival window (`1 ≤ j ≤ n`).
    fn t_j(&self, j: u64) -> u64 {
        j * self.spacing() - (2 * self.k + 2)
    }

    /// Build the witness instance.
    pub fn instance(&self) -> Instance {
        self.validate();
        let b_levels = self.levels_per_bin();
        let w = self.capacity();
        let mut b = InstanceBuilder::new(w);

        // Setup: k·W unit items at time 0. Any Fit fills bins sequentially,
        // so items [i·W, (i+1)·W) land in bin i. The first B−(i+1) items of
        // bin i survive as the staircase; the rest depart at ∆.
        for i in 0..self.k {
            let survivors = b_levels - (i + 1);
            // Setup survivors of bin i are purged in iteration 1, right
            // after group (1, i+1) arrives.
            let survivor_departure = self.t_j(1) + 2 * (i + 1) + 1;
            for slot in 0..w {
                let departure = if slot < survivors {
                    survivor_departure
                } else {
                    self.delta
                };
                b.add(0, departure, 1);
            }
        }

        // Iterations.
        for j in 1..=self.n {
            for m in 1..=self.k {
                let group = b_levels - (j * self.k + m);
                let arrival = self.t_j(j) + 2 * m;
                let departure = if j < self.n {
                    // Purged right after group (j+1, m) arrives.
                    self.t_j(j + 1) + 2 * m + 1
                } else {
                    // Final iteration: minimum-length stay.
                    arrival + self.delta
                };
                for _ in 0..group {
                    b.add(arrival, departure, 1);
                }
            }
        }

        b.build().expect("Theorem 2 witness must be valid")
    }

    /// The exact cost Best Fit incurs: every bin `b_i` stays open from 0
    /// until its final group departs at `T_n + 2(i+1) + ∆`.
    pub fn expected_bf_cost_ticks(&self) -> u128 {
        let t_n = self.t_j(self.n) as u128;
        self.k as u128 * (t_n + self.delta as u128 + self.k as u128 + 1)
    }

    /// The paper's floor on the achieved ratio for large `n`: `k/2`.
    pub fn ratio_floor(&self) -> Ratio {
        theorem2_ratio_floor(self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::prelude::*;

    #[test]
    fn construction_interval_lengths_pin_mu() {
        let t2 = Theorem2::new(3, 4, 2);
        let inst = t2.instance();
        let delta = inst.min_interval_len().unwrap().raw();
        let max = inst.max_interval_len().unwrap().raw();
        assert_eq!(delta, t2.delta);
        assert_eq!(max, t2.mu * t2.delta);
        assert_eq!(inst.mu().unwrap(), Ratio::from_int(t2.mu as u128));
    }

    #[test]
    fn best_fit_pays_exactly_the_predicted_cost() {
        for (k, mu, n) in [(2, 2, 1), (3, 4, 2), (4, 3, 3)] {
            let t2 = Theorem2::new(k, mu, n);
            let inst = t2.instance();
            let trace = simulate_validated(&inst, &mut BestFit::new());
            assert_eq!(
                trace.bins_used() as u64,
                k,
                "BF must never open more than the k setup bins (k={k},mu={mu},n={n})"
            );
            assert_eq!(trace.max_open_bins() as u64, k);
            assert_eq!(
                trace.total_cost_ticks(),
                t2.expected_bf_cost_ticks(),
                "BF cost mismatch at k={k},mu={mu},n={n}"
            );
        }
    }

    #[test]
    fn first_fit_closes_bins_on_the_same_instance() {
        let t2 = Theorem2::new(4, 3, 3);
        let inst = t2.instance();
        let bf = simulate_validated(&inst, &mut BestFit::new());
        let ff = simulate_validated(&inst, &mut FirstFit::new());
        // FF funnels all groups into bin 0, so bins 1..k close after their
        // purges; its cost must be strictly below BF's.
        assert!(ff.total_cost_ticks() < bf.total_cost_ticks());
    }

    #[test]
    fn groups_shrink_but_stay_positive() {
        let t2 = Theorem2::new(2, 2, 4);
        let b = t2.levels_per_bin();
        let smallest = b - (t2.n * t2.k + t2.k);
        assert!(smallest >= t2.k);
        // And the instance builds without panicking.
        let _ = t2.instance();
    }
}
