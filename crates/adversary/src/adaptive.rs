//! The *adaptive* µ-adversary of the paper's footnote 1: "this example and
//! the lower bound µ are applicable to any online packing algorithm."
//!
//! The static [`Theorem1`] instance forces the whole deterministic Any Fit
//! family at once, but an arbitrary online algorithm (randomized, or one
//! that opens bins eagerly) could dodge a fixed departure schedule. The
//! adaptive adversary closes that gap: it releases `k²` items of size `W/k`
//! at time 0, *observes where the algorithm under test places them*, then
//! schedules departures so that exactly one item survives in every bin the
//! algorithm opened — whatever bins those were.
//!
//! Against any algorithm, the resulting ratio is `bins·µ∆ / OPT`, with
//! `OPT = bins·∆ + (µ−1)∆·⌈bins/k⌉`-ish depending on how many bins were
//! opened; for Any Fit algorithms `bins = k` and the ratio matches
//! Theorem 1 exactly. Algorithms that open *more* bins only do worse.
//!
//! [`Theorem1`]: crate::theorem1::Theorem1

use dbp_core::bin::{BinId, OpenBinView};
use dbp_core::instance::{Instance, InstanceBuilder};
use dbp_core::item::{ArrivingItem, ItemId, Size};
use dbp_core::packer::{BinSelector, Decision};
use dbp_core::ratio::Ratio;
use dbp_core::time::Tick;

/// Parameters of the adaptive adversary.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveMuAdversary {
    /// Items per bin under perfect packing (`k² items of size W/k`).
    pub k: u64,
    /// Target µ (integer ≥ 1).
    pub mu: u64,
    /// Minimum interval length ∆ in ticks.
    pub delta: u64,
}

/// The adversary's output: the instance it committed to *after* observing
/// the algorithm, plus placement facts.
#[derive(Debug, Clone)]
pub struct AdaptiveOutcome {
    /// The finalized instance (departures filled in adaptively).
    pub instance: Instance,
    /// Number of bins the observed algorithm opened during the burst.
    pub bins_opened: usize,
    /// Cost the observed algorithm will pay on `instance`, in bin-ticks
    /// (every opened bin is kept alive to `µ∆` by its survivor).
    pub forced_cost_ticks: u128,
}

impl AdaptiveMuAdversary {
    /// Standard parameters (∆ = 1000 ticks).
    pub fn new(k: u64, mu: u64) -> AdaptiveMuAdversary {
        AdaptiveMuAdversary { k, mu, delta: 1000 }
    }

    /// Play the adversary game against `selector`.
    ///
    /// The selector sees exactly what the engine would show it: all `k²`
    /// items arriving at tick 0, one at a time, with the open-bin views
    /// updated after each placement. The adversary then selects one
    /// survivor per opened bin (the first item placed there) to stay until
    /// `µ∆`; everything else departs at ∆.
    ///
    /// # Panics
    /// Panics if the selector makes an illegal placement (bin that does not
    /// fit), on degenerate parameters, and if the selector opens more than
    /// `k²` bins (impossible: there are only `k²` items).
    pub fn play<S: BinSelector + ?Sized>(&self, selector: &mut S) -> AdaptiveOutcome {
        assert!(self.k >= 1 && self.mu >= 1 && self.delta >= 1);
        let capacity = Size(self.k);
        let size = Size(1);
        let n = self.k * self.k;

        // Mini-simulation of the burst at tick 0 only. We track open bins
        // exactly the way the engine does; no departures happen during the
        // burst, so levels only grow.
        struct BurstBin {
            view_id: BinId,
            level: u64,
            n_items: usize,
            first_item: ItemId,
            tag: dbp_core::bin::BinTag,
        }
        let mut bins: Vec<BurstBin> = Vec::new();

        for i in 0..n {
            let item = ArrivingItem {
                id: ItemId(i as u32),
                arrival: Tick::ZERO,
                size,
                region: dbp_core::item::RegionId::GLOBAL,
            };
            let views: Vec<OpenBinView> = bins
                .iter()
                .map(|b| OpenBinView {
                    id: b.view_id,
                    opened_at: Tick::ZERO,
                    level: Size(b.level),
                    capacity,
                    n_items: b.n_items,
                    tag: b.tag,
                })
                .collect();
            match selector.select(&views, &item, capacity) {
                Decision::Use(id) => {
                    let idx = bins
                        .iter()
                        .position(|b| b.view_id == id)
                        .expect("selector picked a bin that is not open");
                    assert!(bins[idx].level < self.k, "selector overfilled a bin");
                    bins[idx].level += 1;
                    bins[idx].n_items += 1;
                }
                Decision::Open { tag } => {
                    let idx = bins.len();
                    bins.push(BurstBin {
                        view_id: BinId(idx as u32),
                        level: 1,
                        n_items: 1,
                        first_item: ItemId(i as u32),
                        tag,
                    });
                }
            }
        }

        // Commit departures: first item of each bin survives to µ∆.
        let survive: Vec<bool> = {
            let mut v = vec![false; n as usize];
            for b in &bins {
                v[b.first_item.index()] = true;
            }
            v
        };
        let mut builder = InstanceBuilder::new(self.k);
        for &lives_long in survive.iter().take(n as usize) {
            let departure = if lives_long {
                self.mu * self.delta
            } else {
                self.delta
            };
            builder.add(0, departure, 1);
        }
        let instance = builder.build().expect("adaptive instance is valid");

        AdaptiveOutcome {
            instance,
            bins_opened: bins.len(),
            forced_cost_ticks: bins.len() as u128 * (self.mu * self.delta) as u128,
        }
    }

    /// The ratio the observed algorithm is forced into, given exact
    /// `OPT_total` for the committed instance.
    pub fn forced_ratio(&self, outcome: &AdaptiveOutcome, opt_ticks: u128) -> Ratio {
        Ratio::new(outcome.forced_cost_ticks, opt_ticks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::prelude::*;

    #[test]
    fn matches_theorem1_for_any_fit_algorithms() {
        let adv = AdaptiveMuAdversary::new(5, 8);
        for mut sel in [
            Box::new(FirstFit::new()) as Box<dyn BinSelector>,
            Box::new(BestFit::new()),
            Box::new(WorstFit::new()),
            Box::new(RandomFit::seeded(123)),
        ] {
            let out = adv.play(&mut *sel);
            assert_eq!(out.bins_opened, 5);
            // Replaying the committed instance with a *fresh* copy of the
            // same deterministic algorithm reproduces the forced cost.
            let t1 = crate::Theorem1::new(5, 8);
            assert_eq!(out.forced_cost_ticks, t1.expected_anyfit_cost_ticks());
        }
    }

    #[test]
    fn replay_on_committed_instance_pays_forced_cost() {
        let adv = AdaptiveMuAdversary::new(4, 6);
        let mut ff = FirstFit::new();
        let out = adv.play(&mut ff);
        let trace = simulate_validated(&out.instance, &mut FirstFit::new());
        assert_eq!(trace.total_cost_ticks(), out.forced_cost_ticks);
    }

    #[test]
    fn eager_openers_do_even_worse() {
        /// Pathological online algorithm: every item gets a fresh bin.
        struct AlwaysOpen;
        impl BinSelector for AlwaysOpen {
            fn name(&self) -> &'static str {
                "ALWAYS-OPEN"
            }
            fn select(
                &mut self,
                _bins: &[dbp_core::bin::OpenBinView],
                _item: &dbp_core::item::ArrivingItem,
                _capacity: dbp_core::item::Size,
            ) -> dbp_core::packer::Decision {
                dbp_core::packer::Decision::OPEN
            }
        }
        let adv = AdaptiveMuAdversary::new(3, 5);
        let out = adv.play(&mut AlwaysOpen);
        // 9 bins instead of 3: adaptivity punishes every opened bin.
        assert_eq!(out.bins_opened, 9);
        let anyfit = adv.play(&mut FirstFit::new());
        assert!(out.forced_cost_ticks > anyfit.forced_cost_ticks);
    }

    #[test]
    fn tagged_algorithms_see_their_own_bins() {
        // Regression: the burst views must echo the tags the algorithm
        // assigned at opening, or class-based packers (MFF, HFF) never find
        // their bins and open one per item.
        let adv = AdaptiveMuAdversary::new(5, 4);
        let mut mff = dbp_core::algorithms::ModifiedFirstFit::new(8);
        let out = adv.play(&mut mff);
        assert_eq!(out.bins_opened, 5);
        let mut hff = dbp_core::algorithms::HarmonicFit::new(4);
        let out = adv.play(&mut hff);
        assert_eq!(out.bins_opened, 5);
    }

    #[test]
    fn randomized_algorithms_cannot_escape() {
        // Whatever RandomFit does, every bin it opens is pinned open.
        let adv = AdaptiveMuAdversary::new(6, 10);
        for seed in 0..10 {
            let mut rf = RandomFit::seeded(seed);
            let out = adv.play(&mut rf);
            // Any Fit forces exactly k bins during an all-at-once burst.
            assert_eq!(out.bins_opened, 6);
            assert_eq!(out.forced_cost_ticks, 6 * (10 * adv.delta) as u128);
        }
    }
}
