//! Randomized adversarial *search*: probing the paper's open gap.
//!
//! Theorem 1 lower-bounds First Fit's MinTotal ratio by µ; Theorem 5
//! upper-bounds it by `2µ + 13`. The paper leaves the gap open. This module
//! hill-climbs over small instances (perturbing arrivals, departures and
//! sizes under a µ cap) to *search* for instances where First Fit's
//! measured ratio beats the Theorem 1 witness — an empirical probe of
//! whether the witness is the worst instance family we can find.
//!
//! The search is seeded and budgeted, uses exact `OPT_total` as the
//! denominator, and keeps every intermediate instance valid (sizes ≤ W,
//! interval lengths within `[∆, µ∆]`, so the µ cap is respected).

use dbp_core::algorithms::FirstFit;
use dbp_core::engine::simulate;
use dbp_core::instance::{Instance, InstanceBuilder};
use dbp_core::ratio::Ratio;
use dbp_opt::{opt_total, SolveMode};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration of one hill-climbing run.
#[derive(Debug, Clone, Copy)]
pub struct SearchConfig {
    /// Bin capacity `W`.
    pub capacity: u64,
    /// Items per candidate instance.
    pub n_items: usize,
    /// µ cap: all interval lengths stay within `[∆, µ∆]`.
    pub mu: u64,
    /// Minimum interval length ∆ in ticks.
    pub delta: u64,
    /// Arrival window `[0, horizon)` in ticks.
    pub horizon: u64,
    /// Mutation steps per restart.
    pub steps: u32,
    /// RNG seed.
    pub seed: u64,
}

impl SearchConfig {
    /// Defaults sized so exact `OPT_total` stays fast per candidate.
    pub fn new(mu: u64, seed: u64) -> SearchConfig {
        SearchConfig {
            capacity: 12,
            n_items: 20,
            mu,
            delta: 10,
            horizon: 30,
            steps: 400,
            seed,
        }
    }
}

/// Best instance found by a search run.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// The instance achieving the best ratio.
    pub instance: Instance,
    /// First Fit's exact ratio on it.
    pub ratio: Ratio,
    /// Candidates evaluated.
    pub evaluated: u32,
}

/// Raw genome: `(arrival, len, size)` per item, always within bounds.
type Genome = Vec<(u64, u64, u64)>;

fn express(genome: &Genome, capacity: u64) -> Instance {
    let mut b = InstanceBuilder::new(capacity);
    for &(a, len, s) in genome {
        b.add(a, a + len, s);
    }
    b.build().expect("genome expresses a valid instance")
}

fn score(instance: &Instance) -> Option<Ratio> {
    let ff = simulate(instance, &mut FirstFit::new());
    let opt = opt_total(
        instance,
        SolveMode::Exact {
            node_budget: 50_000,
        },
    );
    if !opt.is_exact() {
        return None;
    }
    Some(Ratio::new(ff.total_cost_ticks(), opt.exact_ticks()))
}

fn random_genome(cfg: &SearchConfig, rng: &mut StdRng) -> Genome {
    (0..cfg.n_items)
        .map(|_| {
            (
                rng.random_range(0..cfg.horizon),
                rng.random_range(cfg.delta..=cfg.mu * cfg.delta),
                rng.random_range(1..=cfg.capacity),
            )
        })
        .collect()
}

fn mutate(genome: &Genome, cfg: &SearchConfig, rng: &mut StdRng) -> Genome {
    let mut g = genome.clone();
    let idx = rng.random_range(0..g.len());
    match rng.random_range(0..4u8) {
        0 => g[idx].0 = rng.random_range(0..cfg.horizon),
        1 => g[idx].1 = rng.random_range(cfg.delta..=cfg.mu * cfg.delta),
        2 => g[idx].2 = rng.random_range(1..=cfg.capacity),
        _ => {
            // Resample the whole item.
            g[idx] = (
                rng.random_range(0..cfg.horizon),
                rng.random_range(cfg.delta..=cfg.mu * cfg.delta),
                rng.random_range(1..=cfg.capacity),
            );
        }
    }
    g
}

/// One seeded hill-climbing run.
pub fn hill_climb(cfg: &SearchConfig) -> SearchResult {
    assert!(cfg.mu >= 1 && cfg.delta >= 1 && cfg.n_items >= 1 && cfg.capacity >= 1);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut genome = random_genome(cfg, &mut rng);
    let mut best_inst = express(&genome, cfg.capacity);
    let mut best = score(&best_inst).unwrap_or(Ratio::ONE);
    let mut evaluated = 1;
    for _ in 0..cfg.steps {
        let candidate = mutate(&genome, cfg, &mut rng);
        let inst = express(&candidate, cfg.capacity);
        evaluated += 1;
        if let Some(r) = score(&inst) {
            if r > best {
                best = r;
                genome = candidate;
                best_inst = inst;
            }
        }
    }
    SearchResult {
        instance: best_inst,
        ratio: best,
        evaluated,
    }
}

/// Multi-restart search (restarts are independent; callers parallelize).
pub fn best_of_restarts(cfg: &SearchConfig, restarts: u64) -> SearchResult {
    (0..restarts)
        .map(|r| {
            hill_climb(&SearchConfig {
                seed: cfg.seed.wrapping_add(r.wrapping_mul(0x9E3779B97F4A7C15)),
                ..*cfg
            })
        })
        .max_by(|a, b| a.ratio.cmp(&b.ratio))
        .expect("at least one restart")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::bounds::{ff_general_bound, theorem1_ratio};

    #[test]
    fn search_respects_the_mu_cap() {
        let cfg = SearchConfig {
            steps: 60,
            ..SearchConfig::new(5, 7)
        };
        let result = hill_climb(&cfg);
        let mu = result.instance.mu().unwrap();
        assert!(mu <= Ratio::from_int(5));
        assert!(result.evaluated > 0);
    }

    #[test]
    fn found_ratios_never_violate_theorem5() {
        for seed in 0..3 {
            let cfg = SearchConfig {
                steps: 80,
                ..SearchConfig::new(4, seed)
            };
            let result = hill_climb(&cfg);
            let mu = result.instance.mu().unwrap();
            assert!(
                result.ratio <= ff_general_bound(mu),
                "search broke Theorem 5?! ratio {} at µ {}",
                result.ratio,
                mu
            );
        }
    }

    #[test]
    fn search_finds_something_worse_than_random() {
        // Hill climbing must at least improve on its own random start —
        // check monotonicity indirectly via a longer run beating ratio 1.
        let cfg = SearchConfig {
            steps: 200,
            ..SearchConfig::new(6, 11)
        };
        let result = hill_climb(&cfg);
        assert!(
            result.ratio > Ratio::new(11, 10),
            "200 steps found nothing above 1.1: {}",
            result.ratio
        );
    }

    #[test]
    fn witness_remains_hard_to_beat() {
        // The search at small scale should not exceed the *asymptotic*
        // Theorem-1 witness value for its µ (kµ/(k+µ−1) → µ); with k as in
        // our capacity-12 search, the comparable witness achieves
        // 12µ/(11+µ). Give the search a real budget and verify it stays in
        // the plausible band (> 1, ≤ 2µ+13 — and report if it ever beats
        // the witness, which would be a publishable counterexample).
        let mu = 4;
        let cfg = SearchConfig {
            steps: 150,
            ..SearchConfig::new(mu, 3)
        };
        let result = best_of_restarts(&cfg, 3);
        let witness = theorem1_ratio(12, mu);
        // Not an assertion that search ≤ witness (that is the open
        // question); only sanity that values are in the theoretical window.
        assert!(result.ratio > Ratio::ONE);
        assert!(result.ratio <= ff_general_bound(Ratio::from_int(mu as u128)));
        let _ = witness;
    }
}
