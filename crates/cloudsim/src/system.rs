//! The cloud gaming system: dispatch playing requests onto rented game
//! servers and account for the rental bill.
//!
//! This is the motivating system of the paper's introduction, built on the
//! `dbp-core` engine: requests are items, game servers are bins, the
//! dispatcher is a [`BinSelector`], and the bill is the MinTotal objective
//! under a [`Granularity`].

use crate::billing::{billed_ticks, rental_cost_cents, Granularity, ServerType};
use dbp_core::engine::simulate_validated;
use dbp_core::instance::Instance;
use dbp_core::packer::BinSelector;
use dbp_core::ratio::Ratio;
use dbp_core::trace::PackingTrace;
use dbp_obs::RunManifest;
use serde::{Deserialize, Serialize};

/// Why a workload could not be dispatched on this system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DispatchError {
    /// The workload was generated against a different server capacity `W`
    /// than the system's flavor provides.
    CapacityMismatch {
        /// Capacity the workload assumes.
        workload: u64,
        /// Capacity the server flavor provides.
        server: u64,
    },
}

impl std::fmt::Display for DispatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DispatchError::CapacityMismatch { workload, server } => write!(
                f,
                "workload capacity {workload} != server capacity {server}"
            ),
        }
    }
}

impl std::error::Error for DispatchError {}

/// One dispatch run's report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemReport {
    /// Dispatcher name.
    pub algorithm: String,
    /// Play sessions served (always all of them — capacity is on demand).
    pub sessions_served: usize,
    /// Distinct servers ever rented.
    pub servers_rented: usize,
    /// Peak simultaneously-running servers.
    pub peak_servers: u32,
    /// Raw busy time in server-seconds (the paper's `A_total` with C = 1).
    pub busy_ticks: u128,
    /// Billed time after granularity rounding, in server-seconds.
    pub billed_ticks: u128,
    /// Rental bill in cents, exactly.
    pub cost_cents: Ratio,
    /// Mean GPU utilization of rented (busy) time, in `[0, 1]`.
    pub utilization: Ratio,
    /// Provenance of the run: instance digest, wall time, peak RSS.
    pub manifest: Option<RunManifest>,
}

impl SystemReport {
    /// Bill in dollars (lossy, for display).
    pub fn cost_dollars(&self) -> f64 {
        self.cost_cents.to_f64() / 100.0
    }
}

/// The simulated service: a server flavor, a billing granularity, and a
/// dispatch policy applied to a request trace.
#[derive(Debug, Clone, Copy)]
pub struct GamingSystem {
    /// Server flavor rented for every game server.
    pub server: ServerType,
    /// Billing granularity of the provider.
    pub granularity: Granularity,
}

impl GamingSystem {
    /// System with the default GPU VM and the paper's per-tick billing.
    pub fn paper_model() -> GamingSystem {
        GamingSystem {
            server: ServerType::default_gpu_vm(),
            granularity: Granularity::PerTick,
        }
    }

    /// EC2-style hourly billing on the same VM.
    pub fn hourly_model() -> GamingSystem {
        GamingSystem {
            server: ServerType::default_gpu_vm(),
            granularity: Granularity::PerHour,
        }
    }

    /// Dispatch `requests` with `dispatcher` and account the bill.
    ///
    /// # Errors
    /// Returns [`DispatchError::CapacityMismatch`] if the instance's
    /// capacity does not match the server flavor — the workload must be
    /// generated against the same `W`.
    pub fn run<S: BinSelector + ?Sized>(
        &self,
        requests: &Instance,
        dispatcher: &mut S,
    ) -> Result<(SystemReport, PackingTrace), DispatchError> {
        if requests.capacity().raw() != self.server.gpu_capacity {
            return Err(DispatchError::CapacityMismatch {
                workload: requests.capacity().raw(),
                server: self.server.gpu_capacity,
            });
        }
        let started = std::time::Instant::now();
        let trace = simulate_validated(requests, dispatcher);
        let wall = started.elapsed();
        let busy = trace.total_cost_ticks();
        let billed = billed_ticks(&trace, self.granularity);
        let utilization = if busy == 0 {
            Ratio::ZERO
        } else {
            Ratio::new(
                requests.total_demand(),
                requests.capacity().raw() as u128 * busy,
            )
        };
        let report = SystemReport {
            algorithm: trace.algorithm.clone(),
            sessions_served: requests.len(),
            servers_rented: trace.bins_used(),
            peak_servers: trace.max_open_bins(),
            busy_ticks: busy,
            billed_ticks: billed,
            cost_cents: rental_cost_cents(&trace, self.server, self.granularity),
            utilization,
            manifest: Some(RunManifest::capture(&trace.algorithm, None, requests, wall)),
        };
        Ok((report, trace))
    }

    /// [`run`](GamingSystem::run), panicking on [`DispatchError`] — for
    /// tests and examples where the capacity is known to match.
    pub fn run_or_panic<S: BinSelector + ?Sized>(
        &self,
        requests: &Instance,
        dispatcher: &mut S,
    ) -> (SystemReport, PackingTrace) {
        self.run(requests, dispatcher)
            .unwrap_or_else(|e| panic!("dispatch failed: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::prelude::*;
    use dbp_workloads::{generate, CloudGamingConfig};

    #[test]
    fn per_tick_bill_equals_busy_time() {
        let cfg = CloudGamingConfig {
            horizon: 1800,
            seed: 5,
            ..CloudGamingConfig::default()
        };
        let inst = generate(&cfg);
        let sys = GamingSystem::paper_model();
        let (report, trace) = sys.run_or_panic(&inst, &mut FirstFit::new());
        assert_eq!(report.busy_ticks, trace.total_cost_ticks());
        assert_eq!(report.billed_ticks, report.busy_ticks);
        assert_eq!(report.sessions_served, inst.len());
        assert!(report.utilization > Ratio::ZERO);
        assert!(report.utilization <= Ratio::ONE);
        let manifest = report.manifest.expect("run attaches a manifest");
        assert_eq!(manifest.algorithm, "FF");
        assert_eq!(manifest.n_items, inst.len() as u64);
        assert_eq!(
            manifest.instance_digest,
            dbp_obs::manifest::instance_digest(&inst)
        );
    }

    #[test]
    fn hourly_bill_dominates_per_tick() {
        let cfg = CloudGamingConfig {
            horizon: 1800,
            seed: 6,
            ..CloudGamingConfig::default()
        };
        let inst = generate(&cfg);
        let (tick_report, _) =
            GamingSystem::paper_model().run_or_panic(&inst, &mut FirstFit::new());
        let (hour_report, _) =
            GamingSystem::hourly_model().run_or_panic(&inst, &mut FirstFit::new());
        assert!(hour_report.billed_ticks >= tick_report.billed_ticks);
        assert!(hour_report.cost_cents >= tick_report.cost_cents);
        // Hourly bill is a whole number of server-hours.
        assert_eq!(hour_report.billed_ticks % 3600, 0);
    }

    #[test]
    fn capacity_mismatch_is_rejected() {
        let mut b = InstanceBuilder::new(10); // != 1000
        b.add(0, 100, 5);
        let inst = b.build().unwrap();
        let err = GamingSystem::paper_model()
            .run(&inst, &mut FirstFit::new())
            .unwrap_err();
        assert_eq!(
            err,
            DispatchError::CapacityMismatch {
                workload: 10,
                server: 1000
            }
        );
        assert!(err.to_string().contains("capacity"));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn run_or_panic_still_panics_on_mismatch() {
        let mut b = InstanceBuilder::new(10); // != 1000
        b.add(0, 100, 5);
        let inst = b.build().unwrap();
        let _ = GamingSystem::paper_model().run_or_panic(&inst, &mut FirstFit::new());
    }

    #[test]
    fn dispatcher_choice_changes_the_bill() {
        let cfg = CloudGamingConfig {
            horizon: 3600,
            seed: 7,
            ..CloudGamingConfig::default()
        };
        let inst = generate(&cfg);
        let sys = GamingSystem::paper_model();
        let (ff, _) = sys.run_or_panic(&inst, &mut FirstFit::new());
        let (nf, _) = sys.run_or_panic(&inst, &mut NextFit::new());
        // Next Fit opens servers eagerly; it should never beat FF here and
        // typically loses clearly.
        assert!(nf.cost_cents >= ff.cost_cents);
    }
}
