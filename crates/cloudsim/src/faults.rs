//! Seeded, fully deterministic fault injection and resilient dispatch.
//!
//! The paper's model assumes servers never fail and provisioning is instant
//! and infallible. This module drops that assumption while keeping every
//! run exactly reproducible:
//!
//! * [`FaultPlan`] — a declarative fault schedule: server crashes at given
//!   ticks, flaky provisioning (per-attempt boot failures and boot delays),
//!   and transient dispatch rejections. Plans are generated from a seeded
//!   RNG ([`FaultPlan::generate`]) or loaded from JSON (the plan is plain
//!   serde data), and a zero-fault plan ([`FaultPlan::none`]) reproduces
//!   the fault-free [`GamingSystem`] bill *exactly* — same decisions, same
//!   integers.
//! * [`ResilientSystem`] — a wrapper around [`GamingSystem`] that retries
//!   failed provisioning with capped exponential backoff plus deterministic
//!   jitter, re-dispatches sessions orphaned by a crash through the same
//!   [`BinSelector`] (the one event where the no-migration rule is forcibly
//!   broken — re-placements are tagged [`ProbeEvent::ItemRedispatched`] and
//!   counted separately), and bounds admission with a queue + timeout so
//!   overload degrades to *accounted* session drops, never a panic.
//!
//! Determinism does not come from sharing one RNG across the run (that
//! would entangle outcome streams); every per-attempt outcome is a pure
//! hash of `(plan seed, stream tag, attempt counter)`, so two runs with the
//! same plan take byte-identical fault decisions regardless of timing.
//!
//! Accounting rules, chosen so the SLA numbers always conserve:
//!
//! * a session is **served** if its full duration completed, **dropped** if
//!   it never received any service (queue full, queue timeout, or retries
//!   exhausted before first placement), and **lost** if it was placed at
//!   least once but a crash prevented completion;
//!   `served + dropped + lost == total` always holds;
//! * a server is billed from the tick its provisioning was *committed*
//!   (boot start) to the tick it closed or crashed — you pay for booting
//!   VMs, not for failed provision attempts;
//! * crashes in the plan name a fleet slot, resolved at crash time against
//!   the open fleet in id order (`open[slot % n]`); a crash against an
//!   empty fleet is a deterministic no-op.

use crate::billing::{Granularity, ServerType, TICKS_PER_HOUR};
use crate::system::{DispatchError, GamingSystem};
use dbp_core::bin::{BinId, BinTag, OpenBinView};
use dbp_core::instance::Instance;
use dbp_core::item::{ArrivingItem, ItemId, RegionId, Size};
use dbp_core::packer::{BinSelector, Decision};
use dbp_core::probe::{DropReason, NoProbe, Probe, ProbeEvent};
use dbp_core::ratio::Ratio;
use dbp_core::span::{stage, NoSpans, SpanRecorder};
use dbp_core::time::Tick;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One scheduled server crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashEvent {
    /// Tick the crash fires at.
    pub at: u64,
    /// Fleet slot the crash targets: resolved at crash time as
    /// `open[slot % open.len()]` over the open fleet in id order, so a
    /// generated plan always hits *some* server while any are running.
    pub server: u32,
}

/// Tick-based exponential backoff for failed provisioning and rejected
/// dispatches. Attempt `k` (1-based) that fails is retried after
/// `min(base · 2^(k-1), cap) + hash % (jitter + 1)` ticks (at least 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// First backoff in ticks.
    pub base: u64,
    /// Backoff ceiling in ticks.
    pub cap: u64,
    /// Maximum deterministic jitter added on top, in ticks.
    pub jitter: u64,
    /// Total dispatch attempts per session (first try included) before the
    /// session is dropped with [`DropReason::RetriesExhausted`].
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            base: 4,
            cap: 64,
            jitter: 3,
            max_attempts: 5,
        }
    }
}

impl RetryPolicy {
    /// Deterministic backoff (without jitter) after `failed_attempts`
    /// attempts have failed.
    pub fn backoff_ticks(&self, failed_attempts: u32) -> u64 {
        if self.base == 0 {
            return 0;
        }
        // Cap the exponent *before* shifting: `1u64 << exp` is only defined
        // for exp < 64, and any exponent that large is already past every
        // representable cap.
        let exp = failed_attempts.saturating_sub(1);
        if exp >= 64 {
            return self.cap;
        }
        self.base.saturating_mul(1u64 << exp).min(self.cap)
    }
}

/// Bounded admission: sessions waiting for their first placement occupy a
/// queue slot; overload degrades to accounted drops, not unbounded fleets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionPolicy {
    /// Maximum sessions simultaneously waiting (arrived, never yet placed).
    /// An arrival finding the queue full is dropped with
    /// [`DropReason::QueueFull`].
    pub queue_capacity: u32,
    /// Maximum ticks a session may wait for its first placement, measured
    /// in **event time** against the injected clock: a session that has
    /// waited `queue_timeout` ticks or more when its retry fires (i.e.
    /// `now - arrival >= queue_timeout`; the boundary `wait == timeout` is
    /// a drop) leaves with [`DropReason::QueueTimeout`].
    pub queue_timeout: u64,
}

impl Default for AdmissionPolicy {
    fn default() -> AdmissionPolicy {
        AdmissionPolicy {
            queue_capacity: 64,
            queue_timeout: 300,
        }
    }
}

impl AdmissionPolicy {
    /// No admission control at all (the fault-free limit).
    pub fn unbounded() -> AdmissionPolicy {
        AdmissionPolicy {
            queue_capacity: u32::MAX,
            queue_timeout: u64::MAX,
        }
    }
}

/// Knobs for [`FaultPlan::generate`]: the *rates* of each fault class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Expected server crashes per simulated hour.
    pub crash_rate_per_hour: f64,
    /// Probability each provisioning attempt fails outright.
    pub boot_fail_prob: f64,
    /// Maximum boot delay in ticks (each successful boot is delayed by
    /// `hash % (max + 1)` ticks).
    pub boot_delay_max: u64,
    /// Probability each `Use` dispatch is transiently rejected.
    pub reject_prob: f64,
}

impl FaultConfig {
    /// No faults of any kind.
    pub fn none() -> FaultConfig {
        FaultConfig {
            crash_rate_per_hour: 0.0,
            boot_fail_prob: 0.0,
            boot_delay_max: 0,
            reject_prob: 0.0,
        }
    }

    /// A moderately hostile cloud: occasional crashes, 10% flaky boots
    /// with up to 30 s delay, 5% transient rejections.
    pub fn moderate() -> FaultConfig {
        FaultConfig {
            crash_rate_per_hour: 2.0,
            boot_fail_prob: 0.10,
            boot_delay_max: 30,
            reject_prob: 0.05,
        }
    }
}

/// A complete, self-describing fault schedule. Serializable as JSON so a
/// run's faults are reproducible artifacts, not ambient randomness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed of every per-attempt outcome stream (boot failures, boot
    /// delays, rejections, retry jitter).
    pub seed: u64,
    /// Scheduled crashes, sorted by `(at, server)`.
    pub crashes: Vec<CrashEvent>,
    /// Per-attempt provisioning failure probability in `[0, 1]`.
    pub boot_fail_prob: f64,
    /// Maximum boot delay in ticks.
    pub boot_delay_max: u64,
    /// Per-attempt transient dispatch rejection probability in `[0, 1]`.
    pub reject_prob: f64,
    /// Backoff policy for failed attempts.
    pub retry: RetryPolicy,
    /// Admission queue bounds.
    pub admission: AdmissionPolicy,
}

impl FaultPlan {
    /// The zero-fault plan: reproduces the fault-free [`GamingSystem`] run
    /// exactly (identical decisions, identical bill integers).
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            crashes: Vec::new(),
            boot_fail_prob: 0.0,
            boot_delay_max: 0,
            reject_prob: 0.0,
            retry: RetryPolicy::default(),
            admission: AdmissionPolicy::unbounded(),
        }
    }

    /// Whether the plan can never inject a fault.
    pub fn is_fault_free(&self) -> bool {
        self.crashes.is_empty()
            && self.boot_fail_prob <= 0.0
            && self.boot_delay_max == 0
            && self.reject_prob <= 0.0
    }

    /// Generate a plan from a seed: crash count drawn from
    /// `crash_rate_per_hour · horizon / 3600` (fractional part resolved by
    /// one Bernoulli draw), crash ticks uniform over `[1, horizon)`, fleet
    /// slots uniform over `[0, fleet_hint)`.
    pub fn generate(seed: u64, horizon: u64, fleet_hint: u32, cfg: &FaultConfig) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed);
        let expected = cfg.crash_rate_per_hour.max(0.0) * horizon as f64 / TICKS_PER_HOUR as f64;
        let mut n = expected.floor() as u64;
        if rng.random_bool(expected - expected.floor()) {
            n += 1;
        }
        let mut crashes = Vec::with_capacity(n as usize);
        if horizon > 1 {
            for _ in 0..n {
                crashes.push(CrashEvent {
                    at: rng.random_range(1..horizon),
                    server: rng.random_range(0..fleet_hint.max(1)),
                });
            }
        }
        crashes.sort_by_key(|c| (c.at, c.server));
        FaultPlan {
            seed,
            crashes,
            boot_fail_prob: cfg.boot_fail_prob.clamp(0.0, 1.0),
            boot_delay_max: cfg.boot_delay_max,
            reject_prob: cfg.reject_prob.clamp(0.0, 1.0),
            retry: RetryPolicy::default(),
            admission: AdmissionPolicy::default(),
        }
    }

    /// Shorthand for the CLI: a [`FaultConfig::moderate`] plan over a
    /// horizon, from a bare seed.
    pub fn from_seed(seed: u64, horizon: u64) -> FaultPlan {
        FaultPlan::generate(seed, horizon, 16, &FaultConfig::moderate())
    }
}

/// Outcome report of one [`ResilientSystem`] run. All counts are exact;
/// `sessions_served + sessions_dropped + sessions_lost == sessions_total`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilientReport {
    /// Dispatcher name.
    pub algorithm: String,
    /// Total play sessions in the workload.
    pub sessions_total: u64,
    /// Sessions that completed their full duration.
    pub sessions_served: u64,
    /// Sessions that never received service (queue full / timeout /
    /// retries exhausted before first placement).
    pub sessions_dropped: u64,
    /// Sessions interrupted by a crash and never completed.
    pub sessions_lost: u64,
    /// Successful re-placements of crash orphans (no-migration broken).
    pub redispatches: u64,
    /// Crashes that actually hit an open server.
    pub crashes: u64,
    /// Provisioning attempts that failed outright.
    pub provision_failures: u64,
    /// Retries scheduled (after failed provisions or rejections).
    pub retries_scheduled: u64,
    /// Transient dispatch rejections.
    pub dispatch_rejections: u64,
    /// Summed ticks from each crash to its last orphan's terminal state.
    pub recovery_ticks: u64,
    /// Peak sessions simultaneously waiting in the admission queue.
    pub queue_peak: u64,
    /// Servers actually booted (failed provisions excluded).
    pub servers_rented: u64,
    /// Peak simultaneously-open servers.
    pub peak_servers: u64,
    /// Total rented ticks (boot start to close/crash, per server).
    pub busy_ticks: u128,
    /// Busy ticks after per-server granularity rounding.
    pub billed_ticks: u128,
    /// Exact rental bill in cents (duration + per-server setup fees).
    pub cost_cents: Ratio,
}

impl ResilientReport {
    /// The conservation invariant every run must satisfy.
    pub fn conserved(&self) -> bool {
        self.sessions_served + self.sessions_dropped + self.sessions_lost == self.sessions_total
    }

    /// Fraction of sessions that completed, in `[0, 1]` (1 on empty input).
    pub fn service_rate(&self) -> f64 {
        if self.sessions_total == 0 {
            1.0
        } else {
            self.sessions_served as f64 / self.sessions_total as f64
        }
    }
}

/// [`GamingSystem`] plus a [`FaultPlan`]: dispatch under injected faults
/// with retry, re-dispatch, and bounded admission.
#[derive(Debug, Clone)]
pub struct ResilientSystem {
    /// The underlying billing model.
    pub system: GamingSystem,
    /// The fault schedule for this run.
    pub plan: FaultPlan,
}

impl ResilientSystem {
    /// Wrap a system with a fault plan.
    pub fn new(system: GamingSystem, plan: FaultPlan) -> ResilientSystem {
        ResilientSystem { system, plan }
    }

    /// Run without a probe.
    ///
    /// # Errors
    /// [`DispatchError::CapacityMismatch`] when the workload was generated
    /// against a different server capacity.
    pub fn run<S: BinSelector + ?Sized>(
        &self,
        requests: &Instance,
        dispatcher: &mut S,
    ) -> Result<ResilientReport, DispatchError> {
        self.run_probed(requests, dispatcher, &mut NoProbe)
    }

    /// Run, reporting every engine and fault event to `probe`.
    ///
    /// # Errors
    /// [`DispatchError::CapacityMismatch`] when the workload was generated
    /// against a different server capacity.
    pub fn run_probed<S: BinSelector + ?Sized, P: Probe>(
        &self,
        requests: &Instance,
        dispatcher: &mut S,
        probe: &mut P,
    ) -> Result<ResilientReport, DispatchError> {
        self.run_traced(requests, dispatcher, probe, &mut NoSpans)
    }

    /// [`run_probed`](Self::run_probed) plus a [`SpanRecorder`]: every
    /// retry dispatch attempt gets a `retry` span and every crash's orphan
    /// re-placement sweep gets a `redispatch` span, so fault-handling cost
    /// shows up in the stage breakdown next to the engine stages. With
    /// [`NoSpans`] this is exactly the probed run.
    ///
    /// # Errors
    /// [`DispatchError::CapacityMismatch`] when the workload was generated
    /// against a different server capacity.
    pub fn run_traced<S: BinSelector + ?Sized, P: Probe, R: SpanRecorder>(
        &self,
        requests: &Instance,
        dispatcher: &mut S,
        probe: &mut P,
        spans: &mut R,
    ) -> Result<ResilientReport, DispatchError> {
        if requests.capacity().raw() != self.system.server.gpu_capacity {
            return Err(DispatchError::CapacityMismatch {
                workload: requests.capacity().raw(),
                server: self.system.server.gpu_capacity,
            });
        }
        let mut sim = Sim::new(requests, &self.plan, dispatcher, probe, spans);
        sim.run();
        Ok(sim.into_report(
            self.system.server,
            self.system.granularity,
            requests.len() as u64,
        ))
    }
}

// Hash streams: each per-attempt outcome is `mix(seed, STREAM, counter)`,
// so outcome sequences are independent of each other and of wall time.
const STREAM_BOOT: u64 = 0xB007_FA11;
const STREAM_DELAY: u64 = 0xDE1A_90A7;
const STREAM_REJECT: u64 = 0x8E7E_C700;
const STREAM_JITTER: u64 = 0x717E_8ACC;

/// splitmix64-style avalanche over (seed, stream, counter).
fn mix(seed: u64, stream: u64, counter: u64) -> u64 {
    let mut z = seed
        ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ counter.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map 64 hash bits to a uniform `[0, 1)` double (53 mantissa bits).
fn hash_prob(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / 9007199254740992.0)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ItemState {
    /// Not yet arrived.
    Pending,
    /// Arrived, waiting for first placement (occupies a queue slot).
    Waiting,
    /// Committed to a server that is still booting.
    Booting,
    /// Running on a server.
    Placed,
    /// Orphaned by a crash, awaiting re-placement.
    Orphaned,
    /// Completed its full duration.
    Served,
    /// Terminal without any service.
    Dropped,
    /// Terminal after partial service (crash interrupted).
    Lost,
}

enum AttemptOutcome {
    Committed,
    Failed,
}

#[derive(Debug)]
struct Server {
    id: BinId,
    tag: BinTag,
    /// Boot decision tick — rental is billed from here.
    rental_start: u64,
    /// Tick the server became usable (== rental_start unless boot-delayed).
    opened_at: u64,
    level: Size,
    items: Vec<ItemId>,
}

impl Server {
    fn view(&self, capacity: Size) -> OpenBinView {
        OpenBinView {
            id: self.id,
            opened_at: Tick(self.opened_at),
            level: self.level,
            capacity,
            n_items: self.items.len(),
            tag: self.tag,
        }
    }
}

struct Recovery {
    bin: BinId,
    started: u64,
    outstanding: u32,
    redispatched: u32,
    lost: u32,
}

/// Pending boot, min-ordered by `(ready, seq)`: bin id, tag and the item
/// committed to it, plus the rental-start tick the bill runs from.
type PendingBoot = Reverse<(u64, u64, u32, u32, u32, u64)>;

struct Sim<'a, S: BinSelector + ?Sized, P: Probe, R: SpanRecorder> {
    plan: &'a FaultPlan,
    selector: &'a mut S,
    probe: &'a mut P,
    spans: &'a mut R,
    capacity: Size,
    // Per-item workload data, indexed by ItemId.
    arrival: Vec<u64>,
    duration: Vec<u64>,
    size: Vec<Size>,
    region: Vec<RegionId>,
    // Per-item mutable state.
    state: Vec<ItemState>,
    /// Whether the item currently occupies an admission-queue slot.
    queued: Vec<bool>,
    attempts: Vec<u32>,
    end: Vec<u64>,
    current_bin: Vec<Option<BinId>>,
    orphaned_from: Vec<Option<BinId>>,
    recovery_of: Vec<Option<usize>>,
    // Event sources.
    arrivals: Vec<(u64, ItemId)>,
    arrival_ptr: usize,
    departures: BinaryHeap<Reverse<(u64, u32)>>,
    boots: BinaryHeap<PendingBoot>,
    retries: BinaryHeap<Reverse<(u64, u64, u32)>>,
    seq: u64,
    crash_ptr: usize,
    // Fleet.
    open: Vec<Server>,
    next_bin_id: u32,
    recoveries: Vec<Recovery>,
    // Hash-stream counters.
    boot_ctr: u64,
    delay_ctr: u64,
    reject_ctr: u64,
    jitter_ctr: u64,
    // Accounting.
    served: u64,
    dropped: u64,
    lost: u64,
    redispatches: u64,
    crashes: u64,
    provision_failures: u64,
    retries_scheduled: u64,
    dispatch_rejections: u64,
    recovery_ticks: u64,
    waiting_now: u64,
    queue_peak: u64,
    servers_rented: u64,
    peak_servers: u64,
    server_busy: Vec<u64>,
}

impl<'a, S: BinSelector + ?Sized, P: Probe, R: SpanRecorder> Sim<'a, S, P, R> {
    fn new(
        instance: &Instance,
        plan: &'a FaultPlan,
        selector: &'a mut S,
        probe: &'a mut P,
        spans: &'a mut R,
    ) -> Sim<'a, S, P, R> {
        let n = instance.len();
        let mut arrival = Vec::with_capacity(n);
        let mut duration = Vec::with_capacity(n);
        let mut size = Vec::with_capacity(n);
        let mut region = Vec::with_capacity(n);
        let mut arrivals: Vec<(u64, ItemId)> = Vec::with_capacity(n);
        for item in instance.items() {
            arrival.push(item.arrival.0);
            duration.push(item.departure.0 - item.arrival.0);
            size.push(item.size);
            region.push(item.region);
            arrivals.push((item.arrival.0, item.id));
        }
        // Same-tick arrivals in item order, matching the engine's schedule.
        arrivals.sort_by_key(|&(at, id)| (at, id));
        debug_assert!(plan.crashes.windows(2).all(|w| w[0].at <= w[1].at));
        Sim {
            plan,
            selector,
            probe,
            spans,
            capacity: instance.capacity(),
            arrival,
            duration,
            size,
            region,
            state: vec![ItemState::Pending; n],
            queued: vec![false; n],
            attempts: vec![0; n],
            end: vec![0; n],
            current_bin: vec![None; n],
            orphaned_from: vec![None; n],
            recovery_of: vec![None; n],
            arrivals,
            arrival_ptr: 0,
            departures: BinaryHeap::new(),
            boots: BinaryHeap::new(),
            retries: BinaryHeap::new(),
            seq: 0,
            crash_ptr: 0,
            open: Vec::new(),
            next_bin_id: 0,
            recoveries: Vec::new(),
            boot_ctr: 0,
            delay_ctr: 0,
            reject_ctr: 0,
            jitter_ctr: 0,
            served: 0,
            dropped: 0,
            lost: 0,
            redispatches: 0,
            crashes: 0,
            provision_failures: 0,
            retries_scheduled: 0,
            dispatch_rejections: 0,
            recovery_ticks: 0,
            waiting_now: 0,
            queue_peak: 0,
            servers_rented: 0,
            peak_servers: 0,
            server_busy: Vec::new(),
        }
    }

    fn run(&mut self) {
        loop {
            if self.arrival_ptr >= self.arrivals.len()
                && self.departures.is_empty()
                && self.boots.is_empty()
                && self.retries.is_empty()
            {
                // Nothing in flight: the fleet is empty and any remaining
                // scheduled crashes are no-ops.
                debug_assert!(self.open.is_empty(), "open servers with nothing in flight");
                break;
            }
            let mut t = u64::MAX;
            if let Some(&(at, _)) = self.arrivals.get(self.arrival_ptr) {
                t = t.min(at);
            }
            if let Some(&Reverse((at, _))) = self.departures.peek() {
                t = t.min(at);
            }
            if let Some(&Reverse((at, ..))) = self.boots.peek() {
                t = t.min(at);
            }
            if let Some(&Reverse((at, _, _))) = self.retries.peek() {
                t = t.min(at);
            }
            if let Some(c) = self.plan.crashes.get(self.crash_ptr) {
                t = t.min(c.at.max(1));
            }
            // Phase order at one tick mirrors the engine (departures before
            // arrivals) with the fault phases slotted in between.
            self.run_departures(t);
            self.run_crashes(t);
            self.run_boots(t);
            self.run_retries(t);
            self.run_arrivals(t);
        }
    }

    fn run_departures(&mut self, t: u64) {
        while let Some(&Reverse((at, raw))) = self.departures.peek() {
            if at != t {
                break;
            }
            self.departures.pop();
            let item = ItemId(raw);
            if self.state[item.index()] != ItemState::Placed {
                // The session was lost to a crash after this departure was
                // scheduled; its terminal state already happened.
                continue;
            }
            let bin = self.current_bin[item.index()].expect("placed item without a bin");
            let pos = self
                .open
                .binary_search_by_key(&bin, |s| s.id)
                .expect("departure from a closed server");
            let server = &mut self.open[pos];
            server.level -= self.size[item.index()];
            let ipos = server
                .items
                .iter()
                .position(|&id| id == item)
                .expect("item not present in its server");
            server.items.swap_remove(ipos);
            self.state[item.index()] = ItemState::Served;
            self.current_bin[item.index()] = None;
            self.served += 1;
            if P::ENABLED {
                self.probe.record(ProbeEvent::ItemDeparted {
                    at: Tick(t),
                    item,
                    bin,
                    level: self.open[pos].level,
                });
            }
            let level_after = self.open[pos].level;
            self.selector.on_item_departed(bin, level_after);
            if self.open[pos].items.is_empty() {
                self.close_server(t, pos);
            }
        }
    }

    fn close_server(&mut self, t: u64, pos: usize) {
        let server = self.open.remove(pos);
        debug_assert_eq!(server.level.raw(), 0, "closing a non-empty server");
        self.server_busy.push(t - server.rental_start);
        if P::ENABLED {
            self.probe.record(ProbeEvent::BinClosed {
                at: Tick(t),
                bin: server.id,
                open_ticks: t - server.opened_at,
            });
        }
        self.selector.on_bin_closed(server.id);
    }

    fn run_crashes(&mut self, t: u64) {
        while let Some(&crash) = self.plan.crashes.get(self.crash_ptr) {
            if crash.at.max(1) != t {
                break;
            }
            self.crash_ptr += 1;
            if self.open.is_empty() {
                continue; // deterministic no-op
            }
            let pos = crash.server as usize % self.open.len();
            let server = self.open.remove(pos);
            self.crashes += 1;
            self.server_busy.push(t - server.rental_start);
            if P::ENABLED {
                self.probe.record(ProbeEvent::BinCrashed {
                    at: Tick(t),
                    bin: server.id,
                    orphans: server.items.len() as u32,
                });
            }
            self.selector.on_bin_closed(server.id);
            let rec_idx = self.recoveries.len();
            self.recoveries.push(Recovery {
                bin: server.id,
                started: t,
                outstanding: server.items.len() as u32,
                redispatched: 0,
                lost: 0,
            });
            if server.items.is_empty() {
                // No orphans: recovery is instantly complete.
                self.finish_recovery(t, rec_idx);
                continue;
            }
            for &item in &server.items {
                debug_assert_eq!(self.state[item.index()], ItemState::Placed);
                self.state[item.index()] = ItemState::Orphaned;
                self.current_bin[item.index()] = None;
                self.orphaned_from[item.index()] = Some(server.id);
                self.recovery_of[item.index()] = Some(rec_idx);
            }
            // Re-dispatch orphans immediately, in the server's item order.
            if R::ENABLED {
                self.spans.enter(stage::REDISPATCH);
            }
            for item in server.items {
                if let AttemptOutcome::Failed = self.dispatch_attempt(t, item) {
                    self.schedule_retry_or_drop(t, item);
                }
            }
            if R::ENABLED {
                self.spans.exit();
            }
        }
    }

    fn run_boots(&mut self, t: u64) {
        while let Some(&Reverse((at, ..))) = self.boots.peek() {
            if at != t {
                break;
            }
            let Reverse((_, _, bin_raw, tag_raw, item_raw, rental_start)) =
                self.boots.pop().expect("peeked boot");
            let item = ItemId(item_raw);
            let id = BinId(bin_raw);
            let tag = BinTag(tag_raw);
            let dead = self.end[item.index()] > 0 && self.end[item.index()] <= t;
            if P::ENABLED {
                self.probe.record(ProbeEvent::BinOpened {
                    at: Tick(t),
                    bin: id,
                    tag,
                    item,
                });
            }
            self.servers_rented += 1;
            if dead {
                // An orphan committed to this boot, but its session ended
                // before the server came up: the server opens empty and
                // closes at once; the session is lost.
                self.server_busy.push(t - rental_start);
                if P::ENABLED {
                    self.probe.record(ProbeEvent::BinClosed {
                        at: Tick(t),
                        bin: id,
                        open_ticks: 0,
                    });
                }
                self.selector.on_bin_closed(id);
                self.terminal_drop(t, item, DropReason::CrashLost);
                continue;
            }
            let server = Server {
                id,
                tag,
                rental_start,
                opened_at: t,
                level: self.size[item.index()],
                items: vec![item],
            };
            let pos = self
                .open
                .binary_search_by_key(&id, |s| s.id)
                .expect_err("duplicate server id");
            self.open.insert(pos, server);
            self.peak_servers = self.peak_servers.max(self.open.len() as u64);
            self.commit_placement(t, item, id, self.size[item.index()]);
            self.selector
                .on_bin_opened(id, tag, self.size[item.index()]);
        }
    }

    fn run_retries(&mut self, t: u64) {
        while let Some(&Reverse((at, _, _))) = self.retries.peek() {
            if at != t {
                break;
            }
            let Reverse((_, _, raw)) = self.retries.pop().expect("peeked retry");
            let item = ItemId(raw);
            match self.state[item.index()] {
                ItemState::Waiting => {
                    // Event-time wait, boundary inclusive: a session whose
                    // wait *equals* the timeout is already out of budget.
                    if t - self.arrival[item.index()] >= self.plan.admission.queue_timeout {
                        self.terminal_drop(t, item, DropReason::QueueTimeout);
                        continue;
                    }
                }
                ItemState::Orphaned => {
                    if self.end[item.index()] <= t {
                        // The interrupted session's scheduled end passed
                        // while it waited: nothing left to serve.
                        self.terminal_drop(t, item, DropReason::CrashLost);
                        continue;
                    }
                }
                // Terminal while the retry was in flight (e.g. timed out).
                _ => continue,
            }
            if R::ENABLED {
                self.spans.enter(stage::RETRY);
            }
            let outcome = self.dispatch_attempt(t, item);
            if R::ENABLED {
                self.spans.exit();
            }
            if let AttemptOutcome::Failed = outcome {
                self.schedule_retry_or_drop(t, item);
            }
        }
    }

    fn run_arrivals(&mut self, t: u64) {
        while let Some(&(at, item)) = self.arrivals.get(self.arrival_ptr) {
            if at != t {
                break;
            }
            self.arrival_ptr += 1;
            if P::ENABLED {
                self.probe.record(ProbeEvent::ItemArrived {
                    at: Tick(t),
                    item,
                    size: self.size[item.index()],
                });
            }
            if self.waiting_now >= self.plan.admission.queue_capacity as u64 {
                self.state[item.index()] = ItemState::Waiting;
                self.terminal_drop(t, item, DropReason::QueueFull);
                continue;
            }
            self.state[item.index()] = ItemState::Waiting;
            match self.dispatch_attempt(t, item) {
                AttemptOutcome::Committed => {}
                AttemptOutcome::Failed => {
                    self.queued[item.index()] = true;
                    self.waiting_now += 1;
                    self.queue_peak = self.queue_peak.max(self.waiting_now);
                    self.schedule_retry_or_drop(t, item);
                }
            }
        }
    }

    /// One dispatch attempt for `item` at tick `t`: consult the selector,
    /// apply rejection/boot faults, and either commit (placement or boot)
    /// or fail (caller schedules the retry).
    fn dispatch_attempt(&mut self, t: u64, item: ItemId) -> AttemptOutcome {
        self.attempts[item.index()] += 1;
        let attempt = self.attempts[item.index()];
        let arriving = ArrivingItem {
            id: item,
            arrival: Tick(t),
            size: self.size[item.index()],
            region: self.region[item.index()],
        };
        let views: Vec<OpenBinView> = self.open.iter().map(|s| s.view(self.capacity)).collect();
        let decision = self.selector.select(&views, &arriving, self.capacity);
        match decision {
            Decision::Use(id) => {
                let pos = self
                    .open
                    .binary_search_by_key(&id, |s| s.id)
                    .unwrap_or_else(|_| {
                        panic!("{}: selected server {id} is not open", self.selector.name())
                    });
                assert!(
                    self.open[pos]
                        .view(self.capacity)
                        .fits(self.size[item.index()]),
                    "{}: item {} does not fit server {}",
                    self.selector.name(),
                    item,
                    id
                );
                if self.plan.reject_prob > 0.0 {
                    let h = mix(self.plan.seed, STREAM_REJECT, self.reject_ctr);
                    self.reject_ctr += 1;
                    if hash_prob(h) < self.plan.reject_prob {
                        self.dispatch_rejections += 1;
                        if P::ENABLED {
                            self.probe.record(ProbeEvent::DispatchRejected {
                                at: Tick(t),
                                item,
                                bin: id,
                            });
                        }
                        return AttemptOutcome::Failed;
                    }
                }
                if P::ENABLED {
                    self.probe.record(ProbeEvent::FitAttempt {
                        at: Tick(t),
                        item,
                        bins_scanned: pos as u32 + 1,
                        open_bins: views.len() as u32,
                    });
                }
                let server = &mut self.open[pos];
                server.level += self.size[item.index()];
                server.items.push(item);
                let level_after = self.open[pos].level;
                self.commit_placement(t, item, id, level_after);
                self.selector.on_item_placed(id, level_after);
                AttemptOutcome::Committed
            }
            Decision::Open { tag } => {
                // The id is burned even if the boot fails: stateful
                // selectors (Next Fit) predict engine id assignment by
                // counting their own Open decisions.
                let id = BinId(self.next_bin_id);
                self.next_bin_id += 1;
                if self.plan.boot_fail_prob > 0.0 {
                    let h = mix(self.plan.seed, STREAM_BOOT, self.boot_ctr);
                    self.boot_ctr += 1;
                    if hash_prob(h) < self.plan.boot_fail_prob {
                        self.provision_failures += 1;
                        if P::ENABLED {
                            self.probe.record(ProbeEvent::ProvisionFailed {
                                at: Tick(t),
                                item,
                                attempt,
                            });
                        }
                        self.selector.on_bin_closed(id);
                        return AttemptOutcome::Failed;
                    }
                }
                let delay = if self.plan.boot_delay_max > 0 {
                    let h = mix(self.plan.seed, STREAM_DELAY, self.delay_ctr);
                    self.delay_ctr += 1;
                    h % (self.plan.boot_delay_max + 1)
                } else {
                    0
                };
                if P::ENABLED {
                    self.probe.record(ProbeEvent::FitAttempt {
                        at: Tick(t),
                        item,
                        bins_scanned: views.len() as u32,
                        open_bins: views.len() as u32,
                    });
                }
                if delay == 0 {
                    if P::ENABLED {
                        self.probe.record(ProbeEvent::BinOpened {
                            at: Tick(t),
                            bin: id,
                            tag,
                            item,
                        });
                    }
                    self.servers_rented += 1;
                    let server = Server {
                        id,
                        tag,
                        rental_start: t,
                        opened_at: t,
                        level: self.size[item.index()],
                        items: vec![item],
                    };
                    let pos = self
                        .open
                        .binary_search_by_key(&id, |s| s.id)
                        .expect_err("duplicate server id");
                    self.open.insert(pos, server);
                    self.peak_servers = self.peak_servers.max(self.open.len() as u64);
                    self.commit_placement(t, item, id, self.size[item.index()]);
                    self.selector
                        .on_bin_opened(id, tag, self.size[item.index()]);
                } else {
                    let ready = t + delay;
                    self.seq += 1;
                    self.boots
                        .push(Reverse((ready, self.seq, id.0, tag.0, item.0, t)));
                    // Committing to a boot admits the session: it no longer
                    // holds a queue slot while the server comes up.
                    self.leave_queue(item);
                    if self.state[item.index()] == ItemState::Waiting {
                        self.state[item.index()] = ItemState::Booting;
                    }
                }
                AttemptOutcome::Committed
            }
        }
    }

    /// Record a successful placement: set the session end on first service,
    /// emit the placement (or re-dispatch) event, leave the queue.
    fn commit_placement(&mut self, t: u64, item: ItemId, bin: BinId, level: Size) {
        let i = item.index();
        self.leave_queue(item);
        self.state[i] = ItemState::Placed;
        self.current_bin[i] = Some(bin);
        if let Some(from) = self.orphaned_from[i].take() {
            self.redispatches += 1;
            if P::ENABLED {
                self.probe.record(ProbeEvent::ItemRedispatched {
                    at: Tick(t),
                    item,
                    from,
                    to: bin,
                    level,
                });
            }
            if let Some(rec) = self.recovery_of[i].take() {
                self.recoveries[rec].redispatched += 1;
                self.recoveries[rec].outstanding -= 1;
                if self.recoveries[rec].outstanding == 0 {
                    self.finish_recovery(t, rec);
                }
            }
        } else {
            self.end[i] = t + self.duration[i];
            self.departures.push(Reverse((self.end[i], item.0)));
            if P::ENABLED {
                self.probe.record(ProbeEvent::ItemPlaced {
                    at: Tick(t),
                    item,
                    bin,
                    level,
                });
            }
        }
    }

    /// Terminal state without (further) service: dropped if never placed,
    /// lost if a crash interrupted it.
    fn terminal_drop(&mut self, t: u64, item: ItemId, reason: DropReason) {
        let i = item.index();
        let had_service = self.orphaned_from[i].is_some();
        self.leave_queue(item);
        self.state[i] = if had_service {
            self.lost += 1;
            ItemState::Lost
        } else {
            self.dropped += 1;
            ItemState::Dropped
        };
        self.orphaned_from[i] = None;
        if P::ENABLED {
            self.probe.record(ProbeEvent::ItemDropped {
                at: Tick(t),
                item,
                reason,
            });
        }
        if let Some(rec) = self.recovery_of[i].take() {
            self.recoveries[rec].lost += 1;
            self.recoveries[rec].outstanding -= 1;
            if self.recoveries[rec].outstanding == 0 {
                self.finish_recovery(t, rec);
            }
        }
    }

    fn leave_queue(&mut self, item: ItemId) {
        if std::mem::replace(&mut self.queued[item.index()], false) {
            self.waiting_now -= 1;
        }
    }

    fn finish_recovery(&mut self, t: u64, rec: usize) {
        let r = &self.recoveries[rec];
        self.recovery_ticks += t - r.started;
        if P::ENABLED {
            self.probe.record(ProbeEvent::RecoveryEnded {
                at: Tick(t),
                bin: r.bin,
                redispatched: r.redispatched,
                lost: r.lost,
            });
        }
    }

    fn schedule_retry_or_drop(&mut self, t: u64, item: ItemId) {
        let i = item.index();
        if self.attempts[i] >= self.plan.retry.max_attempts {
            let reason = if self.orphaned_from[i].is_some() {
                DropReason::CrashLost
            } else {
                DropReason::RetriesExhausted
            };
            self.terminal_drop(t, item, reason);
            return;
        }
        let jitter = if self.plan.retry.jitter > 0 {
            let h = mix(self.plan.seed, STREAM_JITTER, self.jitter_ctr);
            self.jitter_ctr += 1;
            h % (self.plan.retry.jitter + 1)
        } else {
            0
        };
        let delay = (self.plan.retry.backoff_ticks(self.attempts[i]) + jitter).max(1);
        let next = t + delay;
        self.seq += 1;
        self.retries.push(Reverse((next, self.seq, item.0)));
        self.retries_scheduled += 1;
        if P::ENABLED {
            self.probe.record(ProbeEvent::RetryScheduled {
                at: Tick(t),
                item,
                attempt: self.attempts[i] + 1,
                next: Tick(next),
            });
        }
    }

    fn into_report(
        self,
        server: ServerType,
        granularity: Granularity,
        total: u64,
    ) -> ResilientReport {
        let busy: u128 = self.server_busy.iter().map(|&b| b as u128).sum();
        let billed: u128 = self
            .server_busy
            .iter()
            .map(|&b| granularity.billed_ticks(b) as u128)
            .sum();
        let cost = Ratio::new(
            billed * server.cents_per_hour as u128,
            TICKS_PER_HOUR as u128,
        ) + Ratio::from_int(self.servers_rented as u128 * server.setup_cents as u128);
        ResilientReport {
            algorithm: self.selector.name().to_string(),
            sessions_total: total,
            sessions_served: self.served,
            sessions_dropped: self.dropped,
            sessions_lost: self.lost,
            redispatches: self.redispatches,
            crashes: self.crashes,
            provision_failures: self.provision_failures,
            retries_scheduled: self.retries_scheduled,
            dispatch_rejections: self.dispatch_rejections,
            recovery_ticks: self.recovery_ticks,
            queue_peak: self.queue_peak,
            servers_rented: self.servers_rented,
            peak_servers: self.peak_servers,
            busy_ticks: busy,
            billed_ticks: billed,
            cost_cents: cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::prelude::*;
    use dbp_core::probe::FnProbe;
    use dbp_obs::export::events_to_jsonl;
    use dbp_obs::EventLog;
    use dbp_workloads::{generate, CloudGamingConfig};

    fn workload(seed: u64, horizon: u64) -> Instance {
        generate(&CloudGamingConfig {
            horizon,
            seed,
            ..CloudGamingConfig::default()
        })
    }

    #[test]
    fn zero_fault_plan_reproduces_fault_free_bill_exactly() {
        let inst = workload(11, 3600);
        for sys in [GamingSystem::paper_model(), GamingSystem::hourly_model()] {
            let (baseline, _) = sys.run_or_panic(&inst, &mut FirstFit::new());
            let resilient = ResilientSystem::new(sys, FaultPlan::none())
                .run(&inst, &mut FirstFit::new())
                .unwrap();
            assert_eq!(resilient.sessions_served, inst.len() as u64);
            assert_eq!(resilient.sessions_dropped + resilient.sessions_lost, 0);
            assert_eq!(resilient.busy_ticks, baseline.busy_ticks);
            assert_eq!(resilient.billed_ticks, baseline.billed_ticks);
            assert_eq!(resilient.cost_cents, baseline.cost_cents);
            assert_eq!(resilient.servers_rented as usize, baseline.servers_rented);
            assert_eq!(resilient.peak_servers as u32, baseline.peak_servers);
        }
    }

    #[test]
    fn zero_fault_plan_matches_every_dispatcher() {
        let inst = workload(12, 2400);
        let sys = GamingSystem::paper_model();
        let selectors: Vec<(&str, Box<dyn BinSelector>)> = vec![
            ("FF", Box::new(FirstFit::new())),
            ("BF", Box::new(BestFit::new())),
            ("NF", Box::new(NextFit::new())),
            ("MFF", Box::new(ModifiedFirstFit::for_known_mu(3600))),
        ];
        for (name, mut sel) in selectors {
            let (baseline, _) = sys.run_or_panic(&inst, &mut *factory_clone(name));
            let resilient = ResilientSystem::new(sys, FaultPlan::none())
                .run(&inst, &mut *sel)
                .unwrap();
            assert_eq!(resilient.cost_cents, baseline.cost_cents, "{name}");
            assert_eq!(resilient.busy_ticks, baseline.busy_ticks, "{name}");
        }
    }

    fn factory_clone(name: &str) -> Box<dyn BinSelector> {
        match name {
            "FF" => Box::new(FirstFit::new()),
            "BF" => Box::new(BestFit::new()),
            "NF" => Box::new(NextFit::new()),
            "MFF" => Box::new(ModifiedFirstFit::for_known_mu(3600)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn identical_seeds_give_identical_reports_and_event_logs() {
        let inst = workload(13, 3600);
        let plan = FaultPlan::generate(99, 3600, 8, &FaultConfig::moderate());
        let sys = ResilientSystem::new(GamingSystem::paper_model(), plan);
        let mut log_a = EventLog::new();
        let mut log_b = EventLog::new();
        let a = sys
            .run_probed(&inst, &mut BestFit::new(), &mut log_a)
            .unwrap();
        let b = sys
            .run_probed(&inst, &mut BestFit::new(), &mut log_b)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(
            events_to_jsonl(log_a.events()),
            events_to_jsonl(log_b.events())
        );
    }

    #[test]
    fn conservation_holds_under_heavy_faults() {
        let inst = workload(14, 3600);
        let cfg = FaultConfig {
            crash_rate_per_hour: 20.0,
            boot_fail_prob: 0.4,
            boot_delay_max: 60,
            reject_prob: 0.3,
        };
        let plan = FaultPlan::generate(7, 3600, 8, &cfg);
        let report = ResilientSystem::new(GamingSystem::paper_model(), plan)
            .run(&inst, &mut FirstFit::new())
            .unwrap();
        assert!(report.conserved(), "{report:?}");
        assert!(report.crashes > 0);
        assert!(report.provision_failures > 0);
        assert!(report.dispatch_rejections > 0);
    }

    #[test]
    fn crash_orphans_are_redispatched() {
        // Two long sessions on one server; crash it mid-flight.
        let mut b = InstanceBuilder::new(1000);
        b.add(0, 1000, 400);
        b.add(0, 1000, 400);
        let inst = b.build().unwrap();
        let mut plan = FaultPlan::none();
        plan.crashes.push(CrashEvent { at: 500, server: 0 });
        let mut log = EventLog::new();
        let report = ResilientSystem::new(GamingSystem::paper_model(), plan)
            .run_probed(&inst, &mut FirstFit::new(), &mut log)
            .unwrap();
        assert_eq!(report.crashes, 1);
        assert_eq!(report.redispatches, 2);
        assert_eq!(report.sessions_served, 2);
        assert_eq!(report.sessions_lost, 0);
        assert_eq!(report.servers_rented, 2); // original + replacement
        let kinds: Vec<&str> = log.events().iter().map(|e| e.kind()).collect();
        assert!(kinds.contains(&"BinCrashed"));
        assert!(kinds.contains(&"ItemRedispatched"));
        assert!(kinds.contains(&"RecoveryEnded"));
        // Redispatched sessions keep their original end: still 1000 ticks
        // of service each, but the replacement server is billed from 500.
        assert_eq!(report.busy_ticks, 500 + 500);
    }

    #[test]
    fn faulted_runs_record_retry_and_redispatch_spans() {
        use dbp_obs::SpanCollector;
        // One crash with two orphans: exactly one redispatch sweep span,
        // and the span seam must not perturb the ledger.
        let mut b = InstanceBuilder::new(1000);
        b.add(0, 1000, 400);
        b.add(0, 1000, 400);
        let inst = b.build().unwrap();
        let mut plan = FaultPlan::none();
        plan.crashes.push(CrashEvent { at: 500, server: 0 });
        let sys = ResilientSystem::new(GamingSystem::paper_model(), plan);
        let plain = sys.run(&inst, &mut FirstFit::new()).unwrap();
        let mut spans = SpanCollector::new(0);
        let traced = sys
            .run_traced(&inst, &mut FirstFit::new(), &mut NoProbe, &mut spans)
            .unwrap();
        assert_eq!(traced, plain);
        let sweeps = spans
            .spans()
            .iter()
            .filter(|s| s.name == stage::REDISPATCH)
            .count();
        assert_eq!(sweeps, 1);

        // Flaky provisioning: every fired retry attempt gets its own span.
        let inst = workload(15, 2400);
        let cfg = FaultConfig {
            crash_rate_per_hour: 0.0,
            boot_fail_prob: 0.5,
            boot_delay_max: 0,
            reject_prob: 0.0,
        };
        let plan = FaultPlan::generate(21, 2400, 8, &cfg);
        let mut spans = SpanCollector::new(0);
        let report = ResilientSystem::new(GamingSystem::paper_model(), plan)
            .run_traced(&inst, &mut FirstFit::new(), &mut NoProbe, &mut spans)
            .unwrap();
        assert!(report.retries_scheduled > 0);
        let retries = spans
            .spans()
            .iter()
            .filter(|s| s.name == stage::RETRY)
            .count() as u64;
        assert!(retries > 0, "retry attempts must be visible as spans");
        assert!(retries <= report.retries_scheduled);
    }

    #[test]
    fn queue_full_drops_are_accounted() {
        let mut b = InstanceBuilder::new(1000);
        for _ in 0..4 {
            b.add(0, 100, 600); // only one fits per server
        }
        let inst = b.build().unwrap();
        let mut plan = FaultPlan::none();
        plan.boot_fail_prob = 1.0; // nothing ever provisions
        plan.admission = AdmissionPolicy {
            queue_capacity: 2,
            queue_timeout: 1000,
        };
        let report = ResilientSystem::new(GamingSystem::paper_model(), plan)
            .run(&inst, &mut FirstFit::new())
            .unwrap();
        assert!(report.conserved());
        assert_eq!(report.sessions_served, 0);
        assert_eq!(report.sessions_dropped, 4);
        assert!(report.provision_failures > 0);
        assert_eq!(report.servers_rented, 0);
        assert_eq!(report.cost_cents, Ratio::ZERO);
        assert_eq!(report.queue_peak, 2);
    }

    #[test]
    fn queue_timeout_boundary_wait_equal_to_timeout_drops() {
        // One oversized session that can never provision, retrying on a
        // jitter-free fixed cadence: retries fire at event-time waits of
        // exactly 4, 8, 12, … ticks after arrival. With `queue_timeout: 8`
        // the wait-8 retry sits exactly on the boundary — and the boundary
        // is a drop (`wait >= timeout`), so the session must leave with
        // `QueueTimeout` at tick arrival + 8, not survive to wait 12.
        let mut b = InstanceBuilder::new(1000);
        b.add(10, 500, 600);
        let inst = b.build().unwrap();
        let mut plan = FaultPlan::none();
        plan.boot_fail_prob = 1.0;
        plan.retry = RetryPolicy {
            base: 4,
            cap: 4,
            jitter: 0,
            max_attempts: 100,
        };
        plan.admission = AdmissionPolicy {
            queue_capacity: 64,
            queue_timeout: 8,
        };
        let mut events = Vec::new();
        let report = ResilientSystem::new(GamingSystem::paper_model(), plan)
            .run_probed(
                &inst,
                &mut FirstFit::new(),
                &mut FnProbe::new(|ev| events.push(ev)),
            )
            .unwrap();
        assert!(report.conserved());
        assert_eq!(report.sessions_served, 0);
        assert_eq!(report.sessions_dropped, 1);
        let drops: Vec<_> = events
            .iter()
            .filter_map(|ev| match ev {
                ProbeEvent::ItemDropped { at, reason, .. } => Some((*at, *reason)),
                _ => None,
            })
            .collect();
        assert_eq!(drops, vec![(Tick(18), DropReason::QueueTimeout)]);
    }

    #[test]
    fn fault_plan_json_round_trips() {
        let plan = FaultPlan::generate(42, 7200, 8, &FaultConfig::moderate());
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn generate_is_deterministic_and_scales_with_rate() {
        let cfg = FaultConfig {
            crash_rate_per_hour: 6.0,
            ..FaultConfig::none()
        };
        let a = FaultPlan::generate(5, 7200, 8, &cfg);
        let b = FaultPlan::generate(5, 7200, 8, &cfg);
        assert_eq!(a, b);
        assert!(a.crashes.len() >= 11 && a.crashes.len() <= 13);
        assert!(a.crashes.windows(2).all(|w| w[0].at <= w[1].at));
        let zero = FaultPlan::generate(5, 7200, 8, &FaultConfig::none());
        assert!(zero.is_fault_free());
    }

    #[test]
    fn backoff_is_capped_and_monotone() {
        let p = RetryPolicy::default();
        let seq: Vec<u64> = (1..8).map(|k| p.backoff_ticks(k)).collect();
        assert_eq!(seq, vec![4, 8, 16, 32, 64, 64, 64]);
    }

    #[test]
    fn backoff_never_overflows_at_extreme_attempt_counts() {
        let p = RetryPolicy::default();
        // Exponents at and past the shift-width boundary stay at the cap.
        for k in [63, 64, 65, 66, 1_000, u32::MAX] {
            assert_eq!(p.backoff_ticks(k), p.cap, "attempt {k}");
        }
        // A zero base backs off by zero no matter the attempt count.
        let zero = RetryPolicy {
            base: 0,
            ..RetryPolicy::default()
        };
        assert_eq!(zero.backoff_ticks(u32::MAX), 0);
        // A huge base is still capped from the first retry.
        let huge = RetryPolicy {
            base: u64::MAX,
            cap: 100,
            ..RetryPolicy::default()
        };
        assert_eq!(huge.backoff_ticks(1), 100);
        assert_eq!(huge.backoff_ticks(u32::MAX), 100);
    }
}
