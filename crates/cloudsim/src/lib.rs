//! # dbp-cloudsim — the motivating system, simulated
//!
//! The paper's introduction frames MinTotal DBP as *request dispatching in
//! cloud gaming*: playing requests must be dispatched to rented game-server
//! VMs, game instances never migrate, and the provider pays for VM rental
//! time. This crate closes the loop from the abstract problem back to that
//! system:
//!
//! * [`billing`] — EC2-style rental billing with per-tick / per-minute /
//!   per-hour granularity (the paper's cost model is the per-tick limit);
//! * [`system`] — [`GamingSystem`]: dispatch a request trace with any
//!   [`BinSelector`] policy and get the exact rental bill, peak fleet size,
//!   and utilization;
//! * [`faults`] — seeded, fully deterministic fault injection:
//!   [`FaultPlan`] (crashes, flaky provisioning, dispatch rejections) and
//!   [`ResilientSystem`], which retries, re-dispatches orphans, and
//!   accounts every dropped or interrupted session;
//! * [`recover`] — dispatcher crash recovery: verified deterministic
//!   re-execution from a journaled event prefix
//!   ([`ResilientSystem::recover_probed`](faults::ResilientSystem::recover_probed)).
//!
//! [`BinSelector`]: dbp_core::packer::BinSelector

//! ```
//! use dbp_cloudsim::GamingSystem;
//! use dbp_core::prelude::*;
//! use dbp_workloads::{generate, CloudGamingConfig};
//!
//! let requests = generate(&CloudGamingConfig { horizon: 1800, ..Default::default() });
//! let (report, _) = GamingSystem::hourly_model()
//!     .run(&requests, &mut FirstFit::new())
//!     .unwrap();
//! assert_eq!(report.sessions_served, requests.len());
//! assert!(report.billed_ticks % 3600 == 0); // whole server-hours
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod billing;
pub mod faults;
pub mod recover;
pub mod system;

pub use billing::{billed_ticks, rental_cost_cents, Granularity, ServerType, TICKS_PER_HOUR};
pub use faults::{
    AdmissionPolicy, CrashEvent, FaultConfig, FaultPlan, ResilientReport, ResilientSystem,
    RetryPolicy,
};
pub use recover::{RecoveryOutcome, VerifyProbe};
pub use system::{DispatchError, GamingSystem, SystemReport};
