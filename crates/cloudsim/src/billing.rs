//! Rental billing: how raw server busy-time turns into money.
//!
//! The paper's cost model is the per-tick limit (`cost ∝ usage duration`);
//! real providers the introduction cites (EC2 circa the paper) billed by
//! the *hour*, rounding each server's rental up. The granularity knob lets
//! the `billing_granularity` experiment test whether the algorithm ranking
//! is stable under realistic rounding.

use dbp_core::ratio::Ratio;
use dbp_core::trace::PackingTrace;
use serde::{Deserialize, Serialize};

/// Ticks are seconds in the cloudsim layer.
pub const TICKS_PER_HOUR: u64 = 3600;

/// Billing granularity: each server's rental duration is rounded up to a
/// multiple of the unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Granularity {
    /// Exact per-tick billing (the paper's model).
    PerTick,
    /// Per-minute billing (60-tick units).
    PerMinute,
    /// Per-hour billing (3600-tick units) — classic EC2.
    PerHour,
    /// Custom unit in ticks.
    PerUnit(u64),
}

impl Granularity {
    /// The rounding unit in ticks.
    pub fn unit_ticks(self) -> u64 {
        match self {
            Granularity::PerTick => 1,
            Granularity::PerMinute => 60,
            Granularity::PerHour => TICKS_PER_HOUR,
            Granularity::PerUnit(u) => {
                assert!(u > 0, "billing unit must be positive");
                u
            }
        }
    }

    /// Round one server's busy duration up to the billing unit.
    pub fn billed_ticks(self, busy_ticks: u64) -> u64 {
        let unit = self.unit_ticks();
        busy_ticks.div_ceil(unit) * unit
    }
}

/// A server (bin) flavor with a rental price.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerType {
    /// GPU capacity in units (`W`).
    pub gpu_capacity: u64,
    /// Rental price in cents per hour.
    pub cents_per_hour: u64,
    /// One-time provisioning cost per server rental, in cents (VM boot,
    /// game-image pull). Penalizes bin churn — Next Fit's hundreds of
    /// short-lived servers suddenly matter.
    pub setup_cents: u64,
}

impl ServerType {
    /// A GPU VM comparable to the paper-era `g2`-class instance against the
    /// default catalog: capacity 1000 GPU units at $0.65/hour, no setup fee
    /// (the paper's pure duration-cost model).
    pub fn default_gpu_vm() -> ServerType {
        ServerType {
            gpu_capacity: 1000,
            cents_per_hour: 65,
            setup_cents: 0,
        }
    }

    /// The same VM with a provisioning fee.
    pub fn with_setup_fee(cents: u64) -> ServerType {
        ServerType {
            setup_cents: cents,
            ..ServerType::default_gpu_vm()
        }
    }
}

/// Total billed ticks of a trace under a granularity: each bin's usage
/// period is rounded up independently (servers are rented per-instance).
pub fn billed_ticks(trace: &PackingTrace, granularity: Granularity) -> u128 {
    trace
        .bins
        .iter()
        .map(|b| granularity.billed_ticks(b.usage_len().raw()) as u128)
        .sum()
}

/// Exact rental cost in cents:
/// `billed_ticks · cents_per_hour / 3600 + servers · setup_cents`.
pub fn rental_cost_cents(
    trace: &PackingTrace,
    server: ServerType,
    granularity: Granularity,
) -> Ratio {
    let duration = Ratio::new(
        billed_ticks(trace, granularity) * server.cents_per_hour as u128,
        TICKS_PER_HOUR as u128,
    );
    let setup = Ratio::from_int(trace.bins_used() as u128 * server.setup_cents as u128);
    duration + setup
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::prelude::*;

    fn one_bin_trace(len: u64) -> PackingTrace {
        let mut b = InstanceBuilder::new(10);
        b.add(0, len, 5);
        let inst = b.build().unwrap();
        simulate_validated(&inst, &mut FirstFit::new())
    }

    #[test]
    fn per_tick_is_exact() {
        let t = one_bin_trace(5000);
        assert_eq!(billed_ticks(&t, Granularity::PerTick), 5000);
    }

    #[test]
    fn per_hour_rounds_up() {
        let t = one_bin_trace(3601);
        assert_eq!(billed_ticks(&t, Granularity::PerHour), 7200);
        assert_eq!(billed_ticks(&t, Granularity::PerMinute), 3660);
        let t = one_bin_trace(3600);
        assert_eq!(billed_ticks(&t, Granularity::PerHour), 3600);
    }

    #[test]
    fn rounding_is_per_server_not_aggregate() {
        // Two bins of 30 min each: per-hour billing charges 2 hours, not 1.
        let mut b = InstanceBuilder::new(10);
        b.add(0, 1800, 9);
        b.add(0, 1800, 9); // does not fit -> second bin
        let inst = b.build().unwrap();
        let t = simulate_validated(&inst, &mut FirstFit::new());
        assert_eq!(t.bins_used(), 2);
        assert_eq!(billed_ticks(&t, Granularity::PerHour), 2 * 3600);
    }

    #[test]
    fn rental_cost_is_exact_rational() {
        let t = one_bin_trace(1800); // half an hour
        let server = ServerType {
            gpu_capacity: 10,
            cents_per_hour: 65,
            setup_cents: 0,
        };
        assert_eq!(
            rental_cost_cents(&t, server, Granularity::PerTick),
            Ratio::new(65, 2)
        );
        assert_eq!(
            rental_cost_cents(&t, server, Granularity::PerHour),
            Ratio::from_int(65)
        );
    }

    #[test]
    fn setup_fee_charges_per_server() {
        let mut b = InstanceBuilder::new(10);
        b.add(0, 3600, 9);
        b.add(0, 3600, 9); // second server
        let inst = b.build().unwrap();
        let t = simulate_validated(&inst, &mut FirstFit::new());
        let server = ServerType {
            gpu_capacity: 10,
            cents_per_hour: 65,
            setup_cents: 30,
        };
        // 2 server-hours + 2 setups.
        assert_eq!(
            rental_cost_cents(&t, server, Granularity::PerHour),
            Ratio::from_int(2 * 65 + 2 * 30)
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_custom_unit_panics() {
        let _ = Granularity::PerUnit(0).unit_ticks();
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Rounding invariants for every granularity: billed ≥ busy, billed
        /// is a unit multiple, and overhead is strictly under one unit.
        #[test]
        fn billed_ticks_rounding_invariants(busy in 0u64..100_000, unit in 1u64..10_000) {
            let g = Granularity::PerUnit(unit);
            let billed = g.billed_ticks(busy);
            prop_assert!(billed >= busy);
            prop_assert_eq!(billed % unit, 0);
            prop_assert!(billed - busy < unit);
        }

        /// Coarser units never bill less.
        #[test]
        fn coarser_units_dominate(busy in 1u64..50_000, unit in 1u64..500, factor in 2u64..10) {
            let fine = Granularity::PerUnit(unit).billed_ticks(busy);
            let coarse = Granularity::PerUnit(unit * factor).billed_ticks(busy);
            prop_assert!(coarse >= fine);
        }
    }
}
