//! Dispatcher crash recovery for [`ResilientSystem`] runs.
//!
//! A resilient run is *fully deterministic*: given the same workload, fault
//! plan, and dispatcher, it takes byte-identical decisions and emits a
//! byte-identical event stream (see the determinism notes in
//! [`faults`](crate::faults)). That turns crash recovery into replayed
//! re-execution: when the dispatcher process dies mid-run with a journaled
//! event prefix on disk, [`ResilientSystem::recover_probed`] re-executes
//! the run from scratch and *verifies* each emitted event against the
//! journal — any divergence means the journal belongs to a different plan,
//! workload, or dispatcher and recovery refuses to continue — while
//! forwarding only the **post-prefix** events to the caller's probe. The
//! journal prefix plus the forwarded continuation is byte-identical to an
//! uninterrupted run's stream, and orphaned sessions are re-dispatched
//! exactly as the original run would have (the re-execution takes the same
//! decisions, so no orphan's fate can change).

use crate::faults::{ResilientReport, ResilientSystem};
use dbp_core::instance::Instance;
use dbp_core::packer::BinSelector;
use dbp_core::probe::{Probe, ProbeEvent};

/// Result of a successful [`ResilientSystem::recover_probed`] call.
#[derive(Debug)]
pub struct RecoveryOutcome {
    /// The full-run report, identical to an uninterrupted run's.
    pub report: ResilientReport,
    /// Journaled events verified against the re-execution.
    pub events_replayed: usize,
    /// Post-prefix events forwarded to the caller's probe.
    pub events_appended: u64,
}

/// A probe that checks a re-executed event stream against a journaled
/// prefix and forwards only the continuation to an inner probe.
///
/// The first divergence is latched (the simulation cannot be aborted from
/// inside a probe) and surfaced by [`finish`](VerifyProbe::finish); after
/// it, nothing further is forwarded, so a corrupt recovery never emits a
/// partially-wrong continuation.
#[derive(Debug)]
pub struct VerifyProbe<'a, P: Probe> {
    prefix: &'a [ProbeEvent],
    inner: &'a mut P,
    pos: usize,
    appended: u64,
    error: Option<String>,
}

impl<'a, P: Probe> VerifyProbe<'a, P> {
    /// Verify against `prefix`, forwarding post-prefix events to `inner`.
    pub fn new(prefix: &'a [ProbeEvent], inner: &'a mut P) -> VerifyProbe<'a, P> {
        VerifyProbe {
            prefix,
            inner,
            pos: 0,
            appended: 0,
            error: None,
        }
    }

    /// Finish verification: `(replayed, appended)` counts on success, the
    /// first divergence otherwise. Errors if the journal is *longer* than
    /// the re-execution — a journal from a different configuration.
    pub fn finish(self) -> Result<(usize, u64), String> {
        if let Some(e) = self.error {
            return Err(e);
        }
        if self.pos < self.prefix.len() {
            return Err(format!(
                "journal has {} events but re-execution produced only {}: \
                 the journal belongs to a different plan, workload, or dispatcher",
                self.prefix.len(),
                self.pos
            ));
        }
        Ok((self.pos, self.appended))
    }
}

impl<P: Probe> Probe for VerifyProbe<'_, P> {
    fn record(&mut self, event: ProbeEvent) {
        if self.error.is_some() {
            return;
        }
        if self.pos < self.prefix.len() {
            if self.prefix[self.pos] != event {
                self.error = Some(format!(
                    "journal diverges from re-execution at event {}: journal has {:?}, \
                     re-execution produced {:?} — wrong plan, workload, or dispatcher",
                    self.pos, self.prefix[self.pos], event
                ));
                return;
            }
            self.pos += 1;
        } else {
            self.appended += 1;
            self.inner.record(event);
        }
    }
}

impl ResilientSystem {
    /// Recover a crashed resilient run from its journaled event prefix.
    ///
    /// Re-executes the run deterministically, verifying every emitted
    /// event against `journaled` and forwarding only the continuation to
    /// `probe` — so appending the forwarded events to the journal yields a
    /// stream byte-identical to an uninterrupted run, and every session
    /// orphaned by in-plan crashes is re-dispatched exactly as the
    /// original run would have.
    ///
    /// # Errors
    /// A capacity mismatch, or any divergence between the journal and the
    /// re-execution (a journal from a different plan, workload, or
    /// dispatcher). Never panics on foreign journals.
    pub fn recover_probed<S: BinSelector + ?Sized, P: Probe>(
        &self,
        requests: &Instance,
        dispatcher: &mut S,
        probe: &mut P,
        journaled: &[ProbeEvent],
    ) -> Result<RecoveryOutcome, String> {
        let mut verify = VerifyProbe::new(journaled, probe);
        let report = self
            .run_probed(requests, dispatcher, &mut verify)
            .map_err(|e| e.to_string())?;
        let (events_replayed, events_appended) = verify.finish()?;
        Ok(RecoveryOutcome {
            report,
            events_replayed,
            events_appended,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultConfig, FaultPlan};
    use crate::system::GamingSystem;
    use dbp_core::prelude::*;
    use dbp_obs::EventLog;
    use dbp_workloads::{generate, CloudGamingConfig};

    fn setup() -> (Instance, ResilientSystem) {
        let inst = generate(&CloudGamingConfig {
            horizon: 2400,
            seed: 21,
            ..CloudGamingConfig::default()
        });
        let plan = FaultPlan::generate(77, 2400, 8, &FaultConfig::moderate());
        (
            inst,
            ResilientSystem::new(GamingSystem::paper_model(), plan),
        )
    }

    #[test]
    fn recovery_from_any_prefix_reproduces_report_and_stream() {
        let (inst, sys) = setup();
        let mut full_log = EventLog::new();
        let full = sys
            .run_probed(&inst, &mut FirstFit::new(), &mut full_log)
            .unwrap();
        let events = full_log.into_events();
        assert!(full.crashes > 0, "fault plan must exercise recovery");
        for cut in [0, 1, events.len() / 3, events.len() / 2, events.len()] {
            let mut cont = EventLog::new();
            let out = sys
                .recover_probed(&inst, &mut FirstFit::new(), &mut cont, &events[..cut])
                .unwrap_or_else(|e| panic!("cut {cut}: {e}"));
            assert_eq!(out.report, full, "cut {cut}");
            assert_eq!(out.events_replayed, cut);
            assert_eq!(out.events_appended as usize, events.len() - cut);
            let mut combined = events[..cut].to_vec();
            combined.extend(cont.into_events());
            assert_eq!(combined, events, "cut {cut}");
        }
    }

    #[test]
    fn recovery_rejects_foreign_journals() {
        let (inst, sys) = setup();
        let mut log = EventLog::new();
        sys.run_probed(&inst, &mut FirstFit::new(), &mut log)
            .unwrap();
        let events = log.into_events();

        // A journal from a different dispatcher diverges, never panics.
        let err = sys
            .recover_probed(&inst, &mut BestFit::new(), &mut EventLog::new(), &events)
            .unwrap_err();
        assert!(err.contains("diverges"), "{err}");

        // A journal from a different fault plan diverges too.
        let other = ResilientSystem::new(
            GamingSystem::paper_model(),
            FaultPlan::generate(78, 2400, 8, &FaultConfig::moderate()),
        );
        let err = other
            .recover_probed(&inst, &mut FirstFit::new(), &mut EventLog::new(), &events)
            .unwrap_err();
        assert!(err.contains("diverges"), "{err}");

        // A journal longer than the run is caught by finish().
        let mut long = events.clone();
        long.extend(events.iter().cloned());
        let err = sys
            .recover_probed(&inst, &mut FirstFit::new(), &mut EventLog::new(), &long)
            .unwrap_err();
        assert!(err.contains("different plan"), "{err}");
    }
}
