//! # dbp — MinTotal Dynamic Bin Packing (SPAA 2014), reproduced in Rust
//!
//! Umbrella crate for the workspace reproducing *"On Dynamic Bin Packing
//! for Resource Allocation in the Cloud"* (Li, Tang, Cai — SPAA 2014):
//!
//! * [`core`] ([`dbp_core`]) — the problem model, online packing engine,
//!   First/Best/Any Fit family, Modified First Fit, the paper's bounds, and
//!   the §4.3 proof machinery as executable analysis;
//! * [`opt`] ([`dbp_opt`]) — the clairvoyant baseline `OPT_total(R)`;
//! * [`adversary`] ([`dbp_adversary`]) — the Theorem 1/2 witnesses;
//! * [`workloads`] ([`dbp_workloads`]) — synthetic cloud-gaming traces;
//! * [`cloudsim`] ([`dbp_cloudsim`]) — the motivating dispatch system with
//!   EC2-style billing.
//!
//! See README.md for a tour, DESIGN.md for the system inventory, and
//! EXPERIMENTS.md for paper-vs-measured results.
//!
//! ```
//! use dbp::prelude::*;
//!
//! let mut b = InstanceBuilder::new(10);
//! b.add(0, 60, 4);
//! b.add(10, 90, 7);
//! let instance = b.build().unwrap();
//! let trace = simulate_validated(&instance, &mut FirstFit::new());
//! assert_eq!(trace.bins_used(), 2); // 4 + 7 > 10
//! ```

pub use dbp_adversary as adversary;
pub use dbp_cloudsim as cloudsim;
pub use dbp_core as core;
pub use dbp_opt as opt;
pub use dbp_workloads as workloads;

/// One-stop prelude: `dbp-core`'s prelude plus the most used items of the
/// satellite crates.
pub mod prelude {
    pub use dbp_adversary::{Theorem1, Theorem2};
    pub use dbp_cloudsim::{GamingSystem, Granularity, ServerType};
    pub use dbp_core::prelude::*;
    pub use dbp_opt::{opt_total, SolveMode};
    pub use dbp_workloads::{
        generate, generate_mu_controlled, CloudGamingConfig, MuControlledConfig,
    };
}
