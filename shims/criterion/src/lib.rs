//! Offline stand-in for `criterion`.
//!
//! Mirrors the macro and type surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, throughput, bench_function,
//! bench_with_input, finish}`, `BenchmarkId`, `Throughput`, `Bencher::iter`
//! — with a simple wall-clock measurement loop instead of criterion's
//! statistical machinery:
//!
//! * `cargo bench -- --test` (what CI's bench-smoke job runs) executes every
//!   benchmark body exactly once, as a correctness smoke test;
//! * plain `cargo bench` warms each benchmark up, sizes iteration batches to
//!   ~5 ms, takes `sample_size`-bounded samples, and prints mean ± spread in
//!   ns/iter (plus throughput when configured).
//!
//! Positional command-line arguments act as substring filters on benchmark
//! ids, like real criterion; unknown `--flags` are ignored.

use std::time::{Duration, Instant};

/// Benchmark harness entry point; holds mode and filters parsed from argv.
pub struct Criterion {
    test_mode: bool,
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let mut test_mode = false;
        let mut filters = Vec::new();
        for arg in std::env::args().skip(1) {
            if arg == "--test" {
                test_mode = true;
            } else if arg.starts_with('-') {
                // Accept-and-ignore criterion flags we don't implement
                // (--bench, --save-baseline, ...), so cargo's harness
                // plumbing never errors out.
            } else {
                filters.push(arg);
            }
        }
        Criterion { test_mode, filters }
    }
}

impl Criterion {
    /// Match real criterion's builder spelling; argv is already parsed.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 30,
            throughput: None,
        }
    }

    /// Printed once all groups ran; a no-op here.
    pub fn final_summary(&self) {}
}

/// How many "units" one iteration processes, for derived throughput rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Bound the number of measurement samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Record per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Declare measurement time; accepted for compatibility, unused.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run a benchmark with no per-benchmark input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        self.run(&full, |b| f(b));
        self
    }

    /// Run a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        self.run(&full, |b| f(b, input));
        self
    }

    fn run(&self, full_id: &str, mut body: impl FnMut(&mut Bencher)) {
        if !self.criterion.filters.is_empty()
            && !self.criterion.filters.iter().any(|f| full_id.contains(f))
        {
            return;
        }
        let mut bencher = Bencher {
            test_mode: self.criterion.test_mode,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        body(&mut bencher);
        bencher.report(full_id, self.throughput);
    }

    /// End the group (reports are printed as benchmarks run).
    pub fn finish(self) {}
}

/// Drives the measured closure; passed to each benchmark body.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    /// (iterations, elapsed) per sample.
    samples: Vec<(u64, Duration)>,
}

impl Bencher {
    /// Measure `f`, called in timed batches (or exactly once in `--test`).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            std::hint::black_box(f());
            self.samples.push((1, Duration::ZERO));
            return;
        }
        // Warm-up: run until ~20 ms elapsed (at least once) to estimate the
        // per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        loop {
            std::hint::black_box(f());
            warm_iters += 1;
            if warm_start.elapsed() >= Duration::from_millis(20) {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / warm_iters as u128;
        // Size batches to ~5 ms and keep total measurement around 250 ms.
        let batch = (5_000_000 / per_iter).clamp(1, 1_000_000) as u64;
        let samples = self
            .sample_size
            .min((250_000_000 / (per_iter * batch as u128).max(1)).max(2) as usize);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            self.samples.push((batch, start.elapsed()));
        }
    }

    fn report(&self, full_id: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            return; // filtered out or body never called iter()
        }
        if self.test_mode {
            println!("test {full_id} ... ok (ran once, --test mode)");
            return;
        }
        let per_sample: Vec<f64> = self
            .samples
            .iter()
            .map(|(iters, d)| d.as_nanos() as f64 / *iters as f64)
            .collect();
        let mean = per_sample.iter().sum::<f64>() / per_sample.len() as f64;
        let min = per_sample.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = per_sample.iter().cloned().fold(0.0f64, f64::max);
        let rate = throughput.map(|t| match t {
            Throughput::Elements(n) => format!(" ({} elem/s)", si(n as f64 * 1e9 / mean)),
            Throughput::Bytes(n) => format!(" ({}B/s)", si(n as f64 * 1e9 / mean)),
        });
        println!(
            "bench {full_id:<55} {:>12} ns/iter (min {}, max {}){}",
            format_ns(mean),
            format_ns(min),
            format_ns(max),
            rate.unwrap_or_default()
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1_000_000.0 {
        format!("{:.2}M", ns / 1_000_000.0)
    } else if ns >= 1_000.0 {
        format!("{:.2}k", ns / 1_000.0)
    } else {
        format!("{ns:.1}")
    }
}

fn si(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2} G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} k", rate / 1e3)
    } else {
        format!("{rate:.1} ")
    }
}

/// Group benchmark functions under one registration function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::Criterion::default().configure_from_args().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("ff", 1000).id, "ff/1000");
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
    }

    #[test]
    fn bencher_runs_once_in_test_mode() {
        let mut b = Bencher {
            test_mode: true,
            sample_size: 10,
            samples: Vec::new(),
        };
        let mut count = 0;
        b.iter(|| count += 1);
        assert_eq!(count, 1);
        assert_eq!(b.samples.len(), 1);
    }
}
