//! Offline stand-in for `serde_json`.
//!
//! Works against the shim `serde`'s [`Value`] tree: serialization renders
//! the tree as JSON text, deserialization parses JSON text into a tree and
//! hands it to `Deserialize::from_value`. Covers the subset this workspace
//! uses: `to_string`, `to_string_pretty`, `to_writer`, `from_str`,
//! `from_reader`, and the `Value` type itself.

use serde::{Deserialize, Serialize};

pub use serde::Value;

/// Error produced while rendering or parsing JSON.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error(e.to_string())
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Error {
        Error(e.to_string())
    }
}

/// `Result` alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------- writing

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serialize `value` as compact JSON into `writer`.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    writer.write_all(to_string(value)?.as_bytes())?;
    Ok(())
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(x) => write_f64(out, *x),
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        let s = x.to_string();
        out.push_str(&s);
        // Keep floats recognisable as floats on re-parse.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    } else {
        // Real serde_json emits null for non-finite floats.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

/// Deserialize a value of type `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value_complete(s)?;
    Ok(T::from_value(&value)?)
}

/// Deserialize a value of type `T` from an IO reader.
pub fn from_reader<R: std::io::Read, T: Deserialize>(mut reader: R) -> Result<T> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    from_str(&buf)
}

fn parse_value_complete(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {} of JSON input",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            Some(got) => Err(Error::new(format!(
                "expected `{}` at byte {}, got `{}`",
                b as char,
                self.pos - 1,
                got as char
            ))),
            None => Err(Error::new(format!(
                "expected `{}`, got end of input",
                b as char
            ))),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::new(format!("invalid JSON at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of JSON input")),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Seq(items)),
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Map(entries)),
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(Error::new("unterminated string in JSON input")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = self.parse_hex4()?;
                        // Surrogate pairs: a high surrogate must be followed
                        // by an escaped low surrogate.
                        let c = if (0xD800..0xDC00).contains(&code) {
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let low = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(Error::new("invalid surrogate pair in JSON string"));
                            }
                            let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(combined)
                                .ok_or_else(|| Error::new("invalid unicode escape"))?
                        } else {
                            char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid unicode escape"))?
                        };
                        out.push(c);
                    }
                    _ => return Err(Error::new("invalid escape in JSON string")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: the input came from a &str, so the
                    // sequence is valid; re-decode it.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    if end > self.bytes.len() {
                        return Err(Error::new("truncated UTF-8 in JSON string"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::new("invalid UTF-8 in JSON string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| Error::new("truncated \\u escape in JSON string"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::new("invalid \\u escape in JSON string"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number in JSON input"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}` in JSON input")))
        } else if text.starts_with('-') {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("integer `{text}` out of range")))
        } else {
            text.parse::<u128>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("integer `{text}` out of range")))
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips() {
        let v = Value::Map(vec![
            ("a".into(), Value::UInt(7)),
            (
                "b".into(),
                Value::Seq(vec![Value::Int(-3), Value::Float(1.5)]),
            ),
            ("c".into(), Value::Str("x \"y\"\nz".into())),
            ("d".into(), Value::Null),
            ("e".into(), Value::Bool(true)),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(back2, v);
    }

    #[test]
    fn floats_stay_floats() {
        let text = to_string(&2.0f64).unwrap();
        assert_eq!(text, "2.0");
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, Value::Float(2.0));
    }

    #[test]
    fn unicode_escapes() {
        let s: String = from_str("\"\\u0041\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(s, "Aé😀");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("1 2").is_err());
    }
}
