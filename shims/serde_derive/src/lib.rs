//! `#[derive(Serialize, Deserialize)]` for the offline serde shim.
//!
//! The real `serde_derive` is built on `syn`/`quote`; neither is available
//! offline, so this is a small hand-rolled parser over `proc_macro` token
//! trees. It supports exactly the shapes this workspace derives on:
//!
//! * structs with named fields (per-field `#[serde(default)]` and
//!   `#[serde(skip_serializing_if = "path")]` honored);
//! * tuple structs (including `#[serde(transparent)]` newtypes);
//! * enums with unit, tuple, and struct variants (externally tagged);
//! * generic items (type, const, and lifetime parameters): every type
//!   parameter is bounded by `::serde::Serialize` / `::serde::Deserialize`
//!   in the generated impl, on top of any bounds declared on the item.
//!
//! Where-clauses remain unsupported and the macro panics with a clear
//! message if it meets a shape it cannot handle, so failures are loud,
//! not silent.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Item {
    name: String,
    generics: Vec<GenParam>,
    transparent: bool,
    shape: Shape,
}

/// One generic parameter of the deriving item.
struct GenParam {
    /// Name as it appears in the type path (`Sz`, `D`, `'a`).
    name: String,
    /// Declaration text minus any default (`Sz: Demand`, `const D: usize`).
    decl: String,
    /// Type parameters get the serde trait bound; const/lifetime ones don't.
    is_type: bool,
}

enum Shape {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

/// One named field plus the serde attributes this shim honors.
struct Field {
    name: String,
    /// `#[serde(default)]`: absent keys deserialize to `Default::default()`.
    default: bool,
    /// `#[serde(skip_serializing_if = "path")]`: the entry is omitted when
    /// `path(&self.field)` is true.
    skip_if: Option<String>,
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

/// Derive `serde::Serialize` (value-tree based).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde shim: generated Serialize impl did not parse")
}

/// Derive `serde::Deserialize` (value-tree based).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde shim: generated Deserialize impl did not parse")
}

// ---------------------------------------------------------------- parsing

fn is_punct(t: Option<&TokenTree>, c: char) -> bool {
    matches!(t, Some(TokenTree::Punct(p)) if p.as_char() == c)
}

fn ident_of(t: Option<&TokenTree>) -> Option<String> {
    match t {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

/// Serde attributes recognized by this shim, at item or field level.
#[derive(Default)]
struct Attrs {
    transparent: bool,
    default: bool,
    skip_if: Option<String>,
}

/// Fold one `#[serde(...)]` bracket group into `attrs`; other attributes
/// are ignored.
fn parse_serde_attr(group: &proc_macro::Group, attrs: &mut Attrs) {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    if ident_of(toks.first()).as_deref() != Some("serde") {
        return;
    }
    let inner: Vec<TokenTree> = match toks.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            g.stream().into_iter().collect()
        }
        _ => return,
    };
    let mut i = 0;
    while i < inner.len() {
        match ident_of(inner.get(i)).as_deref() {
            Some("transparent") => attrs.transparent = true,
            Some("default") => attrs.default = true,
            Some("skip_serializing_if") if is_punct(inner.get(i + 1), '=') => {
                if let Some(TokenTree::Literal(lit)) = inner.get(i + 2) {
                    let raw = lit.to_string();
                    attrs.skip_if = Some(raw.trim_matches('"').to_string());
                    i += 2;
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// Skip attributes starting at `i`; returns the new index and the serde
/// attributes seen across them.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> (usize, Attrs) {
    let mut attrs = Attrs::default();
    while is_punct(tokens.get(i), '#') {
        match tokens.get(i + 1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                parse_serde_attr(g, &mut attrs);
                i += 2;
            }
            _ => break,
        }
    }
    (i, attrs)
}

/// Skip a visibility modifier (`pub`, `pub(crate)`, ...) at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if ident_of(tokens.get(i)).as_deref() == Some("pub") {
        i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            if g.delimiter() == Delimiter::Parenthesis {
                i += 1;
            }
        }
    }
    i
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (mut i, item_attrs) = skip_attrs(&tokens, 0);
    let transparent = item_attrs.transparent;
    i = skip_vis(&tokens, i);
    let kw = ident_of(tokens.get(i)).unwrap_or_else(|| {
        panic!(
            "serde shim derive: expected `struct` or `enum`, got {:?}",
            tokens.get(i)
        )
    });
    i += 1;
    let name = ident_of(tokens.get(i))
        .unwrap_or_else(|| panic!("serde shim derive: expected type name after `{kw}`"));
    i += 1;
    let mut generics = Vec::new();
    if is_punct(tokens.get(i), '<') {
        i += 1;
        let mut depth = 1i32;
        let mut seg: Vec<TokenTree> = Vec::new();
        loop {
            let t = tokens
                .get(i)
                .unwrap_or_else(|| panic!("serde shim derive: unclosed generics on `{name}`"))
                .clone();
            i += 1;
            match &t {
                TokenTree::Punct(p) if p.as_char() == '<' => {
                    depth += 1;
                    seg.push(t);
                }
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    depth -= 1;
                    if depth == 0 {
                        if !seg.is_empty() {
                            generics.push(parse_gen_param(&name, &seg));
                        }
                        break;
                    }
                    seg.push(t);
                }
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                    if !seg.is_empty() {
                        generics.push(parse_gen_param(&name, &seg));
                    }
                    seg.clear();
                }
                _ => seg.push(t),
            }
        }
    }
    if ident_of(tokens.get(i)).as_deref() == Some("where") {
        panic!("serde shim derive: where-clause on `{name}` is not supported");
    }
    let shape = match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            other => panic!("serde shim derive: unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde shim derive: unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("serde shim derive: expected `struct` or `enum`, got `{other}`"),
    };
    Item {
        name,
        generics,
        transparent,
        shape,
    }
}

/// Render a token slice back to source text. Tokens are space-joined except
/// after a lifetime tick, so `'a` stays one token of text.
fn tokens_text(tokens: &[TokenTree]) -> String {
    let mut out = String::new();
    for t in tokens {
        out.push_str(&t.to_string());
        if !matches!(t, TokenTree::Punct(p) if p.as_char() == '\'') {
            out.push(' ');
        }
    }
    out.trim_end().to_string()
}

/// Parse one comma-separated generic parameter (`Sz`, `Sz: Demand`,
/// `const D: usize`, `'a`), dropping any `= default`.
fn parse_gen_param(owner: &str, seg: &[TokenTree]) -> GenParam {
    let mut depth = 0i32;
    let mut cut = seg.len();
    for (j, t) in seg.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == '=' && depth == 0 => {
                cut = j;
                break;
            }
            _ => {}
        }
    }
    let seg = &seg[..cut];
    let decl = tokens_text(seg);
    match seg.first() {
        Some(TokenTree::Punct(p)) if p.as_char() == '\'' => GenParam {
            name: tokens_text(&seg[..2.min(seg.len())]),
            decl,
            is_type: false,
        },
        Some(TokenTree::Ident(id)) if id.to_string() == "const" => GenParam {
            name: ident_of(seg.get(1))
                .unwrap_or_else(|| panic!("serde shim derive: bad const parameter on `{owner}`")),
            decl,
            is_type: false,
        },
        Some(TokenTree::Ident(id)) => GenParam {
            name: id.to_string(),
            decl,
            is_type: true,
        },
        other => panic!("serde shim derive: bad generic parameter on `{owner}`: {other:?}"),
    }
}

/// `impl<...>` and `Name<...>` generic argument text for the generated
/// impl, bounding every type parameter by `bound`.
fn generics_strings(item: &Item, bound: &str) -> (String, String) {
    if item.generics.is_empty() {
        return (String::new(), String::new());
    }
    let impl_params: Vec<String> = item
        .generics
        .iter()
        .map(|p| {
            if !p.is_type {
                p.decl.clone()
            } else if p.decl.contains(':') {
                format!("{} + {bound}", p.decl)
            } else {
                format!("{}: {bound}", p.decl)
            }
        })
        .collect();
    let ty_params: Vec<String> = item.generics.iter().map(|p| p.name.clone()).collect();
    (
        format!("<{}>", impl_params.join(", ")),
        format!("<{}>", ty_params.join(", ")),
    )
}

/// Fields of a named-field body (names + serde attrs), in declaration
/// order.
fn parse_named_fields(ts: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = ts.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let attrs;
        (i, attrs) = skip_attrs(&tokens, i);
        i = skip_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let field = ident_of(tokens.get(i)).unwrap_or_else(|| {
            panic!(
                "serde shim derive: expected field name, got {:?}",
                tokens[i]
            )
        });
        i += 1;
        assert!(
            is_punct(tokens.get(i), ':'),
            "serde shim derive: expected `:` after field `{field}`"
        );
        i += 1;
        // Consume the type: everything until a comma at angle-bracket depth 0.
        // Parenthesised/bracketed sub-parts are single Group tokens, so only
        // `<`/`>` need explicit depth tracking.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        i += 1; // past the comma (or end)
        fields.push(Field {
            name: field,
            default: attrs.default,
            skip_if: attrs.skip_if,
        });
    }
    fields
}

/// Number of fields in a tuple-struct/tuple-variant body.
fn count_tuple_fields(ts: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = ts.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => count += 1,
            _ => {}
        }
    }
    // A trailing comma does not add a field.
    if is_punct(tokens.last(), ',') {
        count -= 1;
    }
    count
}

fn parse_variants(ts: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = ts.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        (i, _) = skip_attrs(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = ident_of(tokens.get(i)).unwrap_or_else(|| {
            panic!(
                "serde shim derive: expected variant name, got {:?}",
                tokens[i]
            )
        });
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Named(parse_named_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        if is_punct(tokens.get(i), ',') {
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------- codegen

/// `("name".to_string(), <expr>)` map-entry expression.
fn map_entry(key: &str, value_expr: &str) -> String {
    format!("(::std::string::String::from(\"{key}\"), {value_expr})")
}

fn missing_field(owner: &str, field: &str) -> String {
    format!(
        "__v.get(\"{field}\").ok_or_else(|| ::serde::Error::custom(\
         \"missing field `{field}` in {owner}\"))?"
    )
}

/// Initializer expression for one named struct field. `#[serde(default)]`
/// fields tolerate an absent key (and a `null`, so omitted `Option`s
/// round-trip) instead of erroring.
fn named_field_init(owner: &str, f: &Field) -> String {
    let n = &f.name;
    if f.default {
        format!(
            "{n}: match __v.get(\"{n}\") {{\
             ::std::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?,\
             ::std::option::Option::None => ::std::default::Default::default() }}"
        )
    } else {
        format!(
            "{n}: ::serde::Deserialize::from_value({})?",
            missing_field(owner, n)
        )
    }
}

/// Same as [`named_field_init`], against the enum payload `__inner`.
fn variant_field_init(owner: &str, f: &Field) -> String {
    let n = &f.name;
    if f.default {
        format!(
            "{n}: match __inner.get(\"{n}\") {{\
             ::std::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?,\
             ::std::option::Option::None => ::std::default::Default::default() }}"
        )
    } else {
        format!(
            "{n}: ::serde::Deserialize::from_value(\
             __inner.get(\"{n}\").ok_or_else(|| ::serde::Error::custom(\
             \"missing field `{n}` in {owner}\"))?)?"
        )
    }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) if item.transparent && fields.len() == 1 => {
            format!("::serde::Serialize::to_value(&self.{})", fields[0].name)
        }
        Shape::Tuple(1) if item.transparent => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Named(fields) if fields.iter().any(|f| f.skip_if.is_some()) => {
            let mut pushes = String::new();
            for f in fields {
                let n = &f.name;
                let entry = map_entry(n, &format!("::serde::Serialize::to_value(&self.{n})"));
                match &f.skip_if {
                    Some(pred) => pushes
                        .push_str(&format!("if !{pred}(&self.{n}) {{ __m.push({entry}); }}\n")),
                    None => pushes.push_str(&format!("__m.push({entry});\n")),
                }
            }
            format!(
                "{{\nlet mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n{pushes}::serde::Value::Map(__m)\n}}"
            )
        }
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    map_entry(
                        &f.name,
                        &format!("::serde::Serialize::to_value(&self.{})", f.name),
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Shape::Unit => format!("::serde::Value::Str(::std::string::String::from(\"{name}\"))"),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vn} => ::serde::Value::Str(\
                             ::std::string::String::from(\"{vn}\")),\n"
                        ));
                    }
                    VariantShape::Tuple(1) => {
                        arms.push_str(&format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Map(::std::vec![{}]),\n",
                            map_entry(vn, "::serde::Serialize::to_value(__f0)")
                        ));
                    }
                    VariantShape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Map(::std::vec![{}]),\n",
                            binders.join(", "),
                            map_entry(
                                vn,
                                &format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                            )
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                map_entry(
                                    &f.name,
                                    &format!("::serde::Serialize::to_value({})", f.name),
                                )
                            })
                            .collect();
                        let binders: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Value::Map(::std::vec![{}]),\n",
                            binders.join(", "),
                            map_entry(
                                vn,
                                &format!(
                                    "::serde::Value::Map(::std::vec![{}])",
                                    entries.join(", ")
                                )
                            )
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}\n}}")
        }
    };
    let (ig, tg) = generics_strings(item, "::serde::Serialize");
    format!(
        "impl{ig} ::serde::Serialize for {name}{tg} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) if item.transparent && fields.len() == 1 => {
            format!(
                "::std::result::Result::Ok({name} {{ {}: ::serde::Deserialize::from_value(__v)? }})",
                fields[0].name
            )
        }
        Shape::Tuple(1) if item.transparent => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::Named(fields) => {
            let inits: Vec<String> = fields.iter().map(|f| named_field_init(name, f)).collect();
            format!(
                "if !__v.is_object() {{\n\
                 return ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"expected object for {name}, got {{}}\", __v.kind())));\n\
                 }}\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "match __v {{\n\
                 ::serde::Value::Seq(__items) if __items.len() == {n} => \
                 ::std::result::Result::Ok({name}({})),\n\
                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"expected array of length {n} for {name}, got {{}}\", __other.kind()))),\n\
                 }}",
                inits.join(", ")
            )
        }
        Shape::Unit => {
            format!(
                "match __v.as_str() {{\n\
                 ::std::option::Option::Some(\"{name}\") => ::std::result::Result::Ok({name}),\n\
                 _ => ::std::result::Result::Err(::serde::Error::custom(\"expected \\\"{name}\\\"\")),\n\
                 }}"
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                    }
                    VariantShape::Tuple(1) => {
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok(\
                             {name}::{vn}(::serde::Deserialize::from_value(__inner)?)),\n"
                        ));
                    }
                    VariantShape::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect();
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => match __inner {{\n\
                             ::serde::Value::Seq(__items) if __items.len() == {n} => \
                             ::std::result::Result::Ok({name}::{vn}({})),\n\
                             _ => ::std::result::Result::Err(::serde::Error::custom(\
                             \"bad payload for variant `{vn}` of {name}\")),\n\
                             }},\n",
                            inits.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let owner = format!("{name}::{vn}");
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| variant_field_init(&owner, f))
                            .collect();
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{ {} }}),\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"unknown variant `{{}}` of {name}\", __other))),\n\
                 }},\n\
                 ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__key, __inner) = &__entries[0];\n\
                 match __key.as_str() {{\n\
                 {payload_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"unknown variant `{{}}` of {name}\", __other))),\n\
                 }}\n\
                 }},\n\
                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"expected {name} variant, got {{}}\", __other.kind()))),\n\
                 }}"
            )
        }
    };
    let (ig, tg) = generics_strings(item, "::serde::Deserialize");
    format!(
        "impl{ig} ::serde::Deserialize for {name}{tg} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}
