//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this crate provides a
//! simplified serialization framework with the same *spelling* as serde —
//! `#[derive(Serialize, Deserialize)]`, `use serde::{Serialize, Deserialize}`
//! — but a much smaller core: types convert to and from an owned JSON-like
//! [`value::Value`] tree instead of driving a streaming Serializer. The
//! only consumer in this workspace is `serde_json`, for which a value tree
//! is a perfectly good intermediate representation.
//!
//! Supported derive shapes (everything this workspace uses):
//! * structs with named fields → JSON object;
//! * `#[serde(transparent)]` newtype structs → the inner value;
//! * tuple structs → JSON array;
//! * enums with unit / newtype / struct variants → externally tagged,
//!   exactly like real serde (`"Unit"`, `{"Newtype": v}`, `{"Struct": {..}}`).

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub use value::Value;

/// Compatibility mirror of `serde::de` for code written against real serde.
pub mod de {
    /// Owned deserialization. The shim's [`Deserialize`](crate::Deserialize)
    /// already produces owned values from a borrowed [`Value`](crate::Value)
    /// tree, so this is a blanket-satisfied marker trait with the same
    /// spelling as real serde's `de::DeserializeOwned`.
    pub trait DeserializeOwned: crate::Deserialize {}

    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

/// Serialization/deserialization error: a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Build an error from a message.
    pub fn custom(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can render itself as a [`Value`] tree.
pub trait Serialize {
    /// Convert to a value tree.
    fn to_value(&self) -> Value;
}

/// A type that can rebuild itself from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Convert from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                let raw: u128 = match v {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u128,
                    other => {
                        return Err(Error::custom(format!(
                            "expected unsigned integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("integer {raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                let raw: i128 = match v {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i128::try_from(*u)
                        .map_err(|_| Error::custom("unsigned integer out of i128 range"))?,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("integer {raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, i128, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<f64, Error> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::UInt(u) => Ok(*u as f64),
            Value::Int(i) => Ok(*i as f64),
            other => Err(Error::custom(format!(
                "expected number, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<f32, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Box<T>, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match v {
                    Value::Seq(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    Value::Seq(items) => Err(Error::custom(format!(
                        "expected array of length {LEN}, got length {}",
                        items.len()
                    ))),
                    other => Err(Error::custom(format!("expected array, got {}", other.kind()))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            Vec::<u32>::from_value(&vec![1u32, 2].to_value()).unwrap(),
            vec![1, 2]
        );
        let pair = (3u64, "x".to_string());
        assert_eq!(<(u64, String)>::from_value(&pair.to_value()).unwrap(), pair);
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u8>::from_value(&5u8.to_value()).unwrap(), Some(5));
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(u8::from_value(&300u64.to_value()).is_err());
        assert!(u64::from_value(&(-1i64).to_value()).is_err());
    }
}
