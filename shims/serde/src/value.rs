//! The JSON-shaped value tree all (de)serialization goes through.

/// A JSON-shaped dynamic value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer (covers u128).
    UInt(u128),
    /// Negative (or explicitly signed) integer.
    Int(i128),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, as ordered key/value pairs (insertion order preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Human name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }

    /// The object entries, if this is an object.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Unsigned integer view (accepts non-negative `Int` too).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => u64::try_from(*u).ok(),
            Value::Int(i) if *i >= 0 => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// Float view (accepts integers too, like `serde_json::Value::as_f64`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::UInt(u) => Some(*u as f64),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Object field lookup by key (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// Whether this is an object.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Map(_))
    }
}
