//! Offline stand-in for `rayon`.
//!
//! The build environment has no crates.io access, so this crate provides the
//! `par_iter` surface the workspace uses. Execution is **sequential**:
//! [`prelude::Par`] wraps a std iterator and exposes rayon-spelled adapters
//! (`map`, `flat_map_iter`, `reduce(identity, op)`, `with_min_len`, ...) as
//! inherent methods, so chains compile unchanged and stay deterministic.
//! When real rayon is available again, swapping the workspace dependency
//! back restores parallelism with zero source changes.

/// The `use rayon::prelude::*` surface.
pub mod prelude {
    /// `.par_iter()` on slice-backed collections.
    pub trait IntoParallelRefIterator<'data> {
        /// Element type (a shared reference).
        type Item: 'data;
        /// The underlying sequential iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Iterate "in parallel" (sequentially here).
        fn par_iter(&'data self) -> Par<Self::Iter>;
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = &'data T;
        type Iter = core::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Par<Self::Iter> {
            Par(self.iter())
        }
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = &'data T;
        type Iter = core::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Par<Self::Iter> {
            Par(self.as_slice().iter())
        }
    }

    impl<'data, T: 'data, const N: usize> IntoParallelRefIterator<'data> for [T; N] {
        type Item = &'data T;
        type Iter = core::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Par<Self::Iter> {
            Par(self.iter())
        }
    }

    /// A "parallel" iterator: a plain iterator behind rayon's method
    /// spelling. Deliberately *not* an [`Iterator`] itself — rayon's
    /// two-argument `reduce(identity, op)` would otherwise collide with
    /// `Iterator::reduce` at every call site.
    pub struct Par<I>(I);

    impl<I: Iterator> Par<I> {
        /// Map each element.
        pub fn map<O, F: FnMut(I::Item) -> O>(self, f: F) -> Par<core::iter::Map<I, F>> {
            Par(self.0.map(f))
        }

        /// Keep elements satisfying the predicate.
        pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> Par<core::iter::Filter<I, F>> {
            Par(self.0.filter(f))
        }

        /// Flat-map through anything iterable.
        pub fn flat_map<U, F>(self, f: F) -> Par<core::iter::FlatMap<I, U, F>>
        where
            U: IntoIterator,
            F: FnMut(I::Item) -> U,
        {
            Par(self.0.flat_map(f))
        }

        /// Rayon's `flat_map_iter`: flat-map through a serial iterator.
        pub fn flat_map_iter<U, F>(self, f: F) -> Par<core::iter::FlatMap<I, U, F>>
        where
            U: IntoIterator,
            F: FnMut(I::Item) -> U,
        {
            Par(self.0.flat_map(f))
        }

        /// Rayon's splitting hint: a no-op sequentially.
        pub fn with_min_len(self, _min: usize) -> Self {
            self
        }

        /// Rayon's splitting hint: a no-op sequentially.
        pub fn with_max_len(self, _max: usize) -> Self {
            self
        }

        /// Collect into any `FromIterator` collection.
        pub fn collect<C: FromIterator<I::Item>>(self) -> C {
            self.0.collect()
        }

        /// Largest element.
        pub fn max(self) -> Option<I::Item>
        where
            I::Item: Ord,
        {
            self.0.max()
        }

        /// Smallest element.
        pub fn min(self) -> Option<I::Item>
        where
            I::Item: Ord,
        {
            self.0.min()
        }

        /// Sum of all elements.
        pub fn sum<S: core::iter::Sum<I::Item>>(self) -> S {
            self.0.sum()
        }

        /// Number of elements.
        pub fn count(self) -> usize {
            self.0.count()
        }

        /// Run `f` on every element.
        pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
            self.0.for_each(f)
        }

        /// Rayon's reduce: fold from `identity()`, combining with `op`.
        pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
        where
            ID: Fn() -> I::Item,
            OP: Fn(I::Item, I::Item) -> I::Item,
        {
            self.0.fold(identity(), op)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_chains_compile_and_run() {
        let v = vec![1u64, 2, 3];
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let arr = [1u64, 2, 3];
        assert_eq!(arr.par_iter().max(), Some(&3));
        let flat: Vec<u64> = v.par_iter().flat_map_iter(|&x| vec![x, x]).collect();
        assert_eq!(flat.len(), 6);
        let total = v
            .par_iter()
            .map(|&x| (x, x))
            .reduce(|| (0, 0), |a, b| (a.0 + b.0, a.1 + b.1));
        assert_eq!(total, (6, 6));
        let capped: Vec<&u64> = v.par_iter().with_min_len(64).filter(|&&x| x > 1).collect();
        assert_eq!(capped, vec![&2, &3]);
    }
}
