//! The default deterministic generator: xoshiro256** seeded via SplitMix64.

use crate::{Rng, SeedableRng};

/// A deterministic, fast, reasonable-quality PRNG (xoshiro256**).
///
/// Not cryptographically secure — none of this workspace's uses need that;
/// they need speed and reproducibility.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // Guard against the (unreachable via SplitMix64, but cheap to rule
        // out) all-zero state, which is a fixed point of xoshiro.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E3779B97F4A7C15;
        }
        StdRng { s }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}
