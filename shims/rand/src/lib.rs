//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this crate provides the
//! exact API subset the workspace uses, with the same module layout:
//!
//! * [`Rng`] — the object-safe core trait (`next_u32`/`next_u64`);
//! * [`RngExt`] — `random_range` over integer and float ranges;
//! * [`SeedableRng`] — `seed_from_u64`;
//! * [`rngs::StdRng`] — a deterministic xoshiro256** generator.
//!
//! Everything is deterministic per seed; there is no OS entropy source, by
//! design — every experiment in this repository must be reproducible.

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::std_rng::StdRng;
}

mod std_rng;

/// The object-safe core of a random generator: a source of uniform bits.
pub trait Rng {
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniform bits (top half of [`Rng::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed, expanding it to full state.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling, as an extension over any [`Rng`].
pub trait RngExt: Rng {
    /// Uniform sample from a range (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A uniformly random `bool` with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        uniform01(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// A `[0, 1)` double from 53 uniform bits.
fn uniform01<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / 9007199254740992.0)
}

/// A range that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    /// Draw one sample using `rng`'s bits.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Types uniform ranges can sample. The generic `SampleRange` impls below
/// go through this trait (mirroring real rand's `SampleUniform`) so that
/// `rng.random_range(0..5)` unifies the literal's type with the use site.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in random_range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range in random_range");
        T::sample_uniform(rng, lo, hi, true)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t, inclusive: bool) -> $t {
                let width = (hi as u128)
                    .wrapping_sub(lo as u128)
                    .wrapping_add(inclusive as u128);
                if width == 0 {
                    // Full-domain inclusive range; direct draw.
                    return (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) as $t;
                }
                let draw = (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) % width;
                (lo as u128).wrapping_add(draw) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl SampleUniform for f64 {
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64, _inclusive: bool) -> f64 {
        lo + (hi - lo) * uniform01(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.random_range(3u64..10);
            assert!((3..10).contains(&x));
            let y = rng.random_range(5i32..=5);
            assert_eq!(y, 5);
            let z = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&z));
            let w = rng.random_range(0..4u8);
            assert!(w < 4);
        }
    }

    #[test]
    fn dyn_rng_is_usable() {
        let mut rng = StdRng::seed_from_u64(2);
        let dynref: &mut dyn Rng = &mut rng;
        let _ = dynref.next_u64();
        let _ = dynref.next_u32();
    }
}
