//! Offline stand-in for `proptest`.
//!
//! Same spelling as the real crate for the subset this workspace uses —
//! `proptest! { #![proptest_config(..)] fn prop(x in strat) {..} }`,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`/`prop_assume!`,
//! range and tuple strategies, `prop_map`, `collection::vec`, `Just` —
//! but with a much simpler engine:
//!
//! * cases are drawn from a [`rand::rngs::StdRng`] seeded by a hash of the
//!   test name, so every run is deterministic and reproducible;
//! * there is **no shrinking** — a failing case reports the assertion
//!   message (include the inputs in your assertion text, as the existing
//!   tests already do);
//! * `prop_assume!` rejects the case and draws a fresh one, with a cap on
//!   consecutive rejections.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Everything a property-test module needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// Assertion failure — the property is falsified; the runner panics.
    Fail(String),
    /// `prop_assume!` rejection — the runner draws a replacement case.
    Reject(String),
}

/// Per-case result type produced by the generated test body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A source of random values of one type.
///
/// The shim strategy model is generate-only (`sample`); there is no value
/// tree and no shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adaptor produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{RngExt, StdRng, Strategy};

    /// Length specification for collection strategies (half-open), converted
    /// from the same range spellings real proptest's `SizeRange` accepts.
    /// Going through a dedicated conversion (instead of `Strategy<Value =
    /// usize>`) is what lets unsuffixed literals like `0..9` infer `usize`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end.max(r.start),
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: r.end().saturating_add(1).max(*r.start()),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    /// Strategy for `Vec`s with element strategy `S`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// `Vec` strategy: lengths drawn uniformly from `len`, elements drawn
    /// independently from `element`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.len.lo >= self.len.hi_exclusive {
                self.len.lo
            } else {
                rng.random_range(self.len.lo..self.len.hi_exclusive)
            };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// FNV-1a over the test name: a stable per-test seed.
fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Drive one property: draw cases until `config.cases` are accepted,
/// panicking on the first failure. Used by the `proptest!` expansion.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut StdRng) -> TestCaseResult,
{
    let mut rng = StdRng::seed_from_u64(seed_for(name));
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    let max_rejected = config.cases.saturating_mul(16).max(1024);
    while accepted < config.cases {
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(why)) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejected,
                    "property `{name}`: too many rejected cases ({rejected}); last: {why}"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property `{name}` falsified after {accepted} passing cases: {msg}")
            }
        }
    }
}

/// Define deterministic property tests. See the crate docs for the
/// differences from real proptest (no shrinking; name-seeded RNG).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expand each `fn name(bindings) { body }` into a `#[test]`-able
/// function driving [`run_cases`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($bindings:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(&__config, stringify!($name), |__rng| {
                $crate::__proptest_bind!(__rng; $($bindings)*);
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Internal: expand `x in strat, mut y in strat, ...` parameter bindings.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; mut $name:ident in $strat:expr) => {
        #[allow(unused_mut)]
        let mut $name = $crate::Strategy::sample(&($strat), $rng);
    };
    ($rng:ident; $name:ident in $strat:expr) => {
        let $name = $crate::Strategy::sample(&($strat), $rng);
    };
    ($rng:ident; mut $name:ident in $strat:expr, $($rest:tt)*) => {
        #[allow(unused_mut)]
        let mut $name = $crate::Strategy::sample(&($strat), $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::sample(&($strat), $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: `{:?} == {:?}`",
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: `{:?} == {:?}`: {}",
                __l,
                __r,
                ::std::format!($($fmt)+)
            )));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: `{:?} != {:?}`",
                __l,
                __r
            )));
        }
    }};
}

/// Reject the current case (draw a replacement) unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in 0usize..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4, "y = {}", y);
        }

        #[test]
        fn tuples_and_vec_compose(
            mut v in crate::collection::vec((0u64..100, 1u64..5), 0..12),
            flag in 1u8..3,
        ) {
            v.push((0, 1));
            prop_assert!(v.iter().all(|(a, b)| *a < 100 && *b < 5 || (*a, *b) == (0, 1)));
            prop_assert_ne!(flag, 0);
        }

        #[test]
        fn prop_map_applies(n in (1u32..5).prop_map(|x| x * 2)) {
            prop_assert!(n % 2 == 0);
            prop_assert!((2..10).contains(&n));
            prop_assume!(n != 4);
            prop_assert_ne!(n, 4);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        use rand::{Rng, SeedableRng};
        let mut a = rand::rngs::StdRng::seed_from_u64(super::seed_for("t"));
        let mut b = rand::rngs::StdRng::seed_from_u64(super::seed_for("t"));
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
